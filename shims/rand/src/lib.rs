//! Offline stand-in for `rand`, covering the subset the workload generators
//! use: `StdRng::seed_from_u64`, `RngExt::{random_range, random_bool}` over
//! integer ranges. Determinism per seed is all the callers rely on; the
//! underlying generator is xoshiro256++ seeded through splitmix64.

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (`StdRng::seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling support for [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Half-open or inclusive bounds as `(low, high_inclusive)`.
    fn bounds(&self) -> (T, T);
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start < self.end, "empty range");
                (self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start() <= self.end(), "empty range");
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_sample_range!(i64, i32, u64, u32, usize, i128);

/// The ergonomic sampling methods (`rand` 0.9 naming).
pub trait RngExt: RngCore {
    /// A uniform sample from an integer range (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: RangeSampler,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.bounds();
        T::sample(self.next_u64(), lo, hi)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniform f64 in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore> RngExt for T {}

/// Helper trait mapping a raw 64-bit word into `[lo, hi]`.
pub trait RangeSampler: Copy {
    fn sample(word: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_sampler {
    ($($t:ty => $wide:ty),*) => {$(
        impl RangeSampler for $t {
            fn sample(word: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                let offset = (word as u128) % span;
                ((lo as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}

impl_range_sampler!(i64 => i128, i32 => i64, u64 => u128, u32 => u64, usize => u128, i128 => i128);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic PRNG (xoshiro256++), API-compatible stand-in for
    /// `rand::rngs::StdRng` for the purposes of this workspace.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<i64> = (0..32).map(|_| a.random_range(0..1000)).collect();
        let sb: Vec<i64> = (0..32).map(|_| b.random_range(0..1000)).collect();
        let sc: Vec<i64> = (0..32).map(|_| c.random_range(0..1000)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-50..=50);
            assert!((-50..=50).contains(&v));
            let w: usize = rng.random_range(0..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "{hits}");
    }
}
