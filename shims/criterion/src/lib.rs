//! Offline stand-in for `criterion`: a minimal wall-clock benchmark harness
//! exposing the API surface the `dbtoaster-bench` targets use. Each benchmark
//! is warmed up briefly, then timed for the configured measurement window, and
//! a `name ... time/iter` line is printed. No statistics beyond the mean are
//! computed — the goal is a runnable `cargo bench` without network access.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation (recorded, reported as elements/sec when present).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched` (ignored: every batch has size 1).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The per-benchmark timing driver.
pub struct Bencher<'a> {
    warm_up: Duration,
    measurement: Duration,
    result: &'a mut Option<BenchResult>,
}

/// Mean time per iteration and iteration count of one benchmark run.
#[derive(Clone, Copy, Debug)]
pub struct BenchResult {
    pub ns_per_iter: f64,
    pub iters: u64,
}

impl Bencher<'_> {
    /// Time a routine: run it repeatedly for the measurement window.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up.
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
        }
        // Measurement.
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measurement {
                break;
            }
        }
        let elapsed = start.elapsed();
        *self.result = Some(BenchResult {
            ns_per_iter: elapsed.as_nanos() as f64 / iters as f64,
            iters,
        });
    }

    /// Time a routine with a per-iteration setup whose cost is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup())); // warm-up: one batch
        let mut iters = 0u64;
        let mut busy = Duration::ZERO;
        let started = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            busy += t0.elapsed();
            iters += 1;
            if busy >= self.measurement || started.elapsed() >= 4 * self.measurement {
                break;
            }
        }
        *self.result = Some(BenchResult {
            ns_per_iter: busy.as_nanos() as f64 / iters as f64,
            iters,
        });
    }
}

fn report(name: &str, result: Option<BenchResult>, throughput: Option<Throughput>) {
    match result {
        Some(r) => {
            let per_iter = format_ns(r.ns_per_iter);
            match throughput {
                Some(Throughput::Elements(n)) => {
                    let rate = n as f64 / (r.ns_per_iter / 1e9);
                    println!("{name:<50} {per_iter:>14}/iter {rate:>14.0} elem/s");
                }
                _ => println!("{name:<50} {per_iter:>14}/iter"),
            }
        }
        None => println!("{name:<50} (no measurement)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The top-level benchmark context.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher<'_>),
    ) -> &mut Self {
        let name = id.into_id();
        let mut result = None;
        f(&mut Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: &mut result,
        });
        report(&name, result, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("-- group {name} --");
        BenchmarkGroup {
            prefix: name.to_string(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher<'_>),
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id.into_id());
        let mut result = None;
        f(&mut Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: &mut result,
        });
        report(&name, result, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id.id);
        let mut result = None;
        f(
            &mut Bencher {
                warm_up: self.warm_up,
                measurement: self.measurement,
                result: &mut result,
            },
            input,
        );
        report(&name, result, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favour of
/// `std::hint::black_box`, which callers here already use).
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
