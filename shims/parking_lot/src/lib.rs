//! Offline stand-in for `parking_lot`: thin non-poisoning wrappers over the
//! std synchronization primitives, exposing the subset of the API the
//! workspace uses (`RwLock::{new, read, write, get_mut, into_inner}`).

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}
