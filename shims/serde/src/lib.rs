//! Offline stand-in for `serde`: re-exports the (no-op) derive macros and
//! declares empty marker traits so `use serde::{Serialize, Deserialize}`
//! resolves. Nothing in-tree serializes through serde at runtime.

pub use serde_derive::{Deserialize, Serialize};
