//! Offline stand-in for `proptest`: deterministic random-input testing with
//! the subset of the API the property tests use — integer-range strategies,
//! tuple strategies, `prop::collection::vec`, `prop_map`, `any::<bool>()`, a
//! simple `[a-z]{m,n}` string strategy, the `proptest!` macro and the
//! `prop_assert*` macros. No shrinking is performed: failures report the
//! case number, and reruns are deterministic per test name.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic RNG used to generate test cases.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed deterministically from the test name, so failures reproduce.
    pub fn from_name(name: &str) -> Self {
        let mut seed = 0xDB70_A57E_u64;
        for b in name.bytes() {
            seed = seed.wrapping_mul(31).wrapping_add(b as u64);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    pub fn random_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    pub fn random_usize(&mut self, lo: usize, hi_inclusive: usize) -> usize {
        self.inner.random_range(lo..=hi_inclusive)
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { strategy: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.random_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = (rng.random_u64() as u128) % span;
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize);

// i128 ranges (used by the rational-number tests) need a wider intermediate.
impl Strategy for std::ops::Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end - self.start) as u128;
        let offset = (rng.random_u64() as u128) % span;
        self.start + offset as i128
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Simple pattern strategy: `&'static str` patterns of the form
/// `[<lo>-<hi>]{m,n}` generate strings of `m..=n` chars drawn from the char
/// range; any other pattern generates itself literally.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some(v) = generate_from_pattern(self, rng) {
            v
        } else {
            (*self).to_string()
        }
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> Option<String> {
    // Parse `[a-z]{1,3}`-style patterns.
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let (lo, dash, hi) = (chars.next()?, chars.next()?, chars.next()?);
    if dash != '-' || chars.next().is_some() {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((m, n)) => (m.parse().ok()?, n.parse().ok()?),
        None => {
            let n: usize = counts.parse().ok()?;
            (n, n)
        }
    };
    let len = rng.random_usize(min, max);
    let span = (hi as u32).checked_sub(lo as u32)? + 1;
    Some(
        (0..len)
            .map(|_| char::from_u32(lo as u32 + rng.random_u64() as u32 % span).unwrap())
            .collect(),
    )
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.random_u64() as u8
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.random_u64() as i64
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// The `prop::` module namespace.
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Size bound: an exact count or a half-open range.
        pub trait IntoSizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                rng.random_usize(self.start, self.end - 1)
            }
        }

        /// Strategy producing `Vec`s of values from an element strategy.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::generate(&$strat, &mut rng); )*
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || $body));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest {}: failed at case {}/{}",
                        stringify!($name), case + 1, config.cases
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}
