//! Offline stand-in for `serde_derive`: the derives are accepted and expand to
//! nothing. The codebase only uses `#[derive(Serialize, Deserialize)]` as an
//! annotation; no serializer is ever instantiated in-tree.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
