//! Workspace root package: hosts the repository-level integration tests under
//! `tests/` and the runnable examples under `examples/`. The actual library
//! code lives in the `crates/` workspace members; see `crates/core` for the
//! public facade.

pub use dbtoaster::*;
