//! # DBToaster benchmark workloads
//!
//! Deterministic, seeded generators for the three workload families of the paper's
//! evaluation (Section 8) plus the SQL text of the benchmark queries:
//!
//! * [`schema`] — catalogs of the TPC-H-like, financial and MDDB schemas;
//! * [`queries`] — the query set with the structural features of Figure 2;
//! * [`tpch`] — a DBGEN-like generator and the FK-preserving agenda/stream synthesizer
//!   with working-set deletions;
//! * [`finance`] — a synthetic order-book stream (random-walk prices);
//! * [`mddb`] — a synthetic molecular-dynamics position stream;
//! * [`dataset`] — the common `static tables + update stream` container.

pub mod dataset;
pub mod finance;
pub mod mddb;
pub mod queries;
pub mod schema;
pub mod tpch;

pub use dataset::Dataset;
pub use finance::FinanceConfig;
pub use mddb::MddbConfig;
pub use queries::{all_queries, queries_of, query, Family, WorkloadQuery};
pub use schema::{finance_catalog, full_catalog, mddb_catalog, tpch_catalog};
pub use tpch::TpchConfig;

/// Generate the dataset (static tables + stream) appropriate for a query's family.
pub fn dataset_for(family: Family, size_hint: usize, seed: u64) -> Dataset {
    match family {
        Family::Tpch => {
            let scale = (size_hint as f64 / 50_000.0).clamp(0.001, 10.0) * 0.01;
            let mut d = tpch::generate(&TpchConfig::scaled(scale, seed));
            d.truncate(size_hint);
            d
        }
        Family::Finance => finance::generate(&FinanceConfig {
            events: size_hint,
            seed,
            ..Default::default()
        }),
        Family::Scientific => {
            let steps = (size_hint / 100).max(1);
            let mut d = mddb::generate(&MddbConfig {
                atoms: 100,
                steps,
                seed,
            });
            d.truncate(size_hint);
            d
        }
    }
}
