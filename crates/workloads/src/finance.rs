//! Synthetic order-book stream (the paper's financial workload).
//!
//! The original experiments replay 2.63 million order-book updates for one day of MSFT
//! trading. That trace is proprietary, so this module generates a synthetic equivalent:
//! bid and ask orders whose prices follow a bounded random walk around a mid price,
//! with volumes drawn uniformly and a fraction of orders later removed (executed or
//! revoked), so that the book contains long-lived state — exactly the property that
//! rules out window semantics and motivates the paper's approach.

use crate::dataset::Dataset;
use dbtoaster_agca::UpdateEvent;
use dbtoaster_gmr::Value;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Order-book generator parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct FinanceConfig {
    /// Total number of stream events to generate.
    pub events: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of distinct brokers.
    pub brokers: i64,
    /// Probability that an event removes an existing order instead of adding one.
    pub delete_probability: f64,
}

impl Default for FinanceConfig {
    fn default() -> Self {
        FinanceConfig {
            events: 50_000,
            seed: 42,
            brokers: 10,
            delete_probability: 0.25,
        }
    }
}

/// Generate the order-book stream over the `Bids` and `Asks` relations.
pub fn generate(config: &FinanceConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut dataset = Dataset::default();
    let mut events = Vec::with_capacity(config.events);

    let mut mid_price: f64 = 10_000.0;
    let mut next_id: i64 = 0;
    let mut live_bids: Vec<Vec<Value>> = Vec::new();
    let mut live_asks: Vec<Vec<Value>> = Vec::new();

    for t in 0..config.events as i64 {
        if events.len() >= config.events {
            break;
        }
        // Random walk of the mid price.
        mid_price = (mid_price + rng.random_range(-50..=50) as f64).max(1_000.0);

        let is_bid = rng.random_bool(0.5);
        let deleting = rng.random_bool(config.delete_probability);
        let (book, relation) = if is_bid {
            (&mut live_bids, "Bids")
        } else {
            (&mut live_asks, "Asks")
        };

        if deleting && !book.is_empty() {
            let idx = rng.random_range(0..book.len());
            let tuple = book.swap_remove(idx);
            events.push(UpdateEvent::delete(relation, tuple));
            continue;
        }

        next_id += 1;
        let spread = rng.random_range(0..200) as f64;
        let price = if is_bid {
            mid_price - spread
        } else {
            mid_price + spread
        };
        let tuple = vec![
            Value::long(t),
            Value::long(next_id),
            Value::long(rng.random_range(0..config.brokers)),
            Value::double(price),
            Value::double(rng.random_range(1..1_000) as f64),
        ];
        book.push(tuple.clone());
        events.push(UpdateEvent::insert(relation, tuple));
    }

    dataset.events = events;
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_agca::UpdateSign;

    #[test]
    fn generates_requested_number_of_events() {
        let d = generate(&FinanceConfig {
            events: 1_000,
            ..Default::default()
        });
        assert_eq!(d.len(), 1_000);
        let counts = d.events_per_relation();
        assert!(counts.contains_key("Bids") && counts.contains_key("Asks"));
    }

    #[test]
    fn deletions_only_remove_previously_inserted_orders() {
        let d = generate(&FinanceConfig {
            events: 5_000,
            seed: 9,
            ..Default::default()
        });
        let mut live: std::collections::HashSet<(String, i64)> = Default::default();
        for e in &d.events {
            let id = e.tuple[1].as_i64().unwrap();
            match e.sign {
                UpdateSign::Insert => {
                    live.insert((e.relation.clone(), id));
                }
                UpdateSign::Delete => {
                    assert!(
                        live.remove(&(e.relation.clone(), id)),
                        "deleted unknown order"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&FinanceConfig {
            events: 500,
            seed: 1,
            ..Default::default()
        });
        let b = generate(&FinanceConfig {
            events: 500,
            seed: 1,
            ..Default::default()
        });
        let c = generate(&FinanceConfig {
            events: 500,
            seed: 2,
            ..Default::default()
        });
        assert_eq!(a.events, b.events);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn prices_stay_positive() {
        let d = generate(&FinanceConfig {
            events: 2_000,
            seed: 4,
            ..Default::default()
        });
        for e in &d.events {
            assert!(e.tuple[3].as_f64().unwrap() > 0.0);
            assert!(e.tuple[4].as_f64().unwrap() > 0.0);
        }
    }
}
