//! Synthetic MDDB molecular-dynamics trace.
//!
//! The paper's scientific workload replays 3.6 million atom-position insertions from a
//! molecular-dynamics simulation, joined against static atom metadata. The original
//! trace is not redistributable, so this module generates a synthetic equivalent: a set
//! of atoms with residue/atom names drawn from a small dictionary (so the selections of
//! MDDB1 have comparable selectivity) whose positions follow a random walk, emitted one
//! snapshot (time step) at a time.

use crate::dataset::Dataset;
use dbtoaster_agca::UpdateEvent;
use dbtoaster_gmr::Value;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// MDDB generator parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct MddbConfig {
    /// Number of atoms in the simulation.
    pub atoms: usize,
    /// Number of time steps to emit (each step inserts one position row per atom).
    pub steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MddbConfig {
    fn default() -> Self {
        MddbConfig {
            atoms: 100,
            steps: 200,
            seed: 42,
        }
    }
}

const RESIDUES: &[&str] = &["LYS", "TIP3", "ALA", "GLY", "SER"];
const ATOM_NAMES: &[&str] = &["NZ", "OH2", "CA", "C", "N"];

/// Generate the MDDB workload: the static `AtomMeta` table plus the `AtomPositions`
/// insert stream.
pub fn generate(config: &MddbConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut dataset = Dataset::default();

    let meta: Vec<Vec<Value>> = (0..config.atoms as i64)
        .map(|atom_id| {
            vec![
                Value::long(atom_id),
                Value::str(RESIDUES[rng.random_range(0..RESIDUES.len())]),
                Value::str(ATOM_NAMES[rng.random_range(0..ATOM_NAMES.len())]),
            ]
        })
        .collect();
    dataset.tables.insert("AtomMeta".into(), meta);

    let mut positions: Vec<(f64, f64, f64)> = (0..config.atoms)
        .map(|_| {
            (
                rng.random_range(-100..100) as f64 / 10.0,
                rng.random_range(-100..100) as f64 / 10.0,
                rng.random_range(-100..100) as f64 / 10.0,
            )
        })
        .collect();

    let mut events = Vec::with_capacity(config.atoms * config.steps);
    for t in 0..config.steps as i64 {
        for (atom_id, pos) in positions.iter_mut().enumerate() {
            pos.0 += rng.random_range(-10..=10) as f64 / 100.0;
            pos.1 += rng.random_range(-10..=10) as f64 / 100.0;
            pos.2 += rng.random_range(-10..=10) as f64 / 100.0;
            events.push(UpdateEvent::insert(
                "AtomPositions",
                vec![
                    Value::long(0), // single trajectory
                    Value::long(t),
                    Value::long(atom_id as i64),
                    Value::double(pos.0),
                    Value::double(pos.1),
                    Value::double(pos.2),
                ],
            ));
        }
    }
    dataset.events = events;
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_one_row_per_atom_per_step() {
        let cfg = MddbConfig {
            atoms: 10,
            steps: 5,
            seed: 1,
        };
        let d = generate(&cfg);
        assert_eq!(d.len(), 50);
        assert_eq!(d.tables["AtomMeta"].len(), 10);
    }

    #[test]
    fn insert_only_stream() {
        let d = generate(&MddbConfig {
            atoms: 5,
            steps: 3,
            seed: 2,
        });
        assert!(d
            .events
            .iter()
            .all(|e| e.sign == dbtoaster_agca::UpdateSign::Insert));
        assert!(d.events.iter().all(|e| e.relation == "AtomPositions"));
    }

    #[test]
    fn residues_cover_the_selected_classes() {
        let d = generate(&MddbConfig {
            atoms: 200,
            steps: 1,
            seed: 3,
        });
        let meta = &d.tables["AtomMeta"];
        let lys = meta.iter().filter(|m| m[1] == Value::str("LYS")).count();
        let tip = meta.iter().filter(|m| m[1] == Value::str("TIP3")).count();
        assert!(
            lys > 0 && tip > 0,
            "both selected residue classes must appear"
        );
    }
}
