//! A seeded TPC-H-like data and stream generator.
//!
//! The paper's TPC-H experiments replay a stream synthesized from a DBGEN database:
//! insertions of all relations are randomly interleaved (preserving foreign keys) and
//! random deletions of `Orders` / `Lineitem` rows keep those two relations at a bounded
//! working-set size (about 30 000 orders and 120 000 line items at scale factor 0.1).
//! This module reproduces that construction with a from-scratch generator whose row
//! counts scale linearly with the scale factor.

use crate::dataset::Dataset;
use dbtoaster_agca::UpdateEvent;
use dbtoaster_gmr::Value;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generation parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct TpchConfig {
    /// Scale factor; 1.0 corresponds to the row counts below.
    pub scale: f64,
    /// RNG seed (the generator is fully deterministic given the seed).
    pub seed: u64,
    /// Orders working-set target (rows kept live before deletions start).
    pub orders_working_set: usize,
    /// Lineitem working-set target.
    pub lineitem_working_set: usize,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 0.01,
            seed: 42,
            orders_working_set: 3_000,
            lineitem_working_set: 12_000,
        }
    }
}

impl TpchConfig {
    /// A configuration with the given scale factor and proportional working sets
    /// (the paper keeps the working set constant across scale factors; use
    /// [`TpchConfig::with_fixed_working_set`] for that behaviour).
    pub fn scaled(scale: f64, seed: u64) -> Self {
        TpchConfig {
            scale,
            seed,
            orders_working_set: ((30_000.0 * scale / 0.1) as usize).max(200),
            lineitem_working_set: ((120_000.0 * scale / 0.1) as usize).max(800),
        }
    }

    /// Fixed working set independent of scale (Figure 11's scaling experiment).
    pub fn with_fixed_working_set(scale: f64, seed: u64, orders: usize, lineitems: usize) -> Self {
        TpchConfig {
            scale,
            seed,
            orders_working_set: orders,
            lineitem_working_set: lineitems,
        }
    }

    fn customers(&self) -> usize {
        ((1_500.0 * self.scale / 0.01) as usize).max(50)
    }
    fn orders(&self) -> usize {
        ((15_000.0 * self.scale / 0.01) as usize).max(200)
    }
    fn parts(&self) -> usize {
        ((2_000.0 * self.scale / 0.01) as usize).max(50)
    }
    fn suppliers(&self) -> usize {
        ((100.0 * self.scale / 0.01) as usize).max(10)
    }
}

const SEGMENTS: &[&str] = &[
    "BUILDING",
    "AUTOMOBILE",
    "MACHINERY",
    "HOUSEHOLD",
    "FURNITURE",
];
const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const RETURN_FLAGS: &[&str] = &["A", "N", "R"];
const BRANDS: &[&str] = &["Brand#12", "Brand#23", "Brand#34", "Brand#45", "Brand#55"];
const TYPES: &[&str] = &[
    "ECONOMY ANODIZED STEEL",
    "SMALL BRASS",
    "MEDIUM POLISHED COPPER",
    "PROMO BURNISHED NICKEL",
    "STANDARD PLATED TIN",
];
const CONTAINERS: &[&str] = &["SM CASE", "MED BOX", "LG PACK", "JUMBO JAR"];
const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: &[(&str, i64)] = &[
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

fn random_date(rng: &mut StdRng) -> i64 {
    let year: i64 = rng.random_range(1992..=1998);
    let month: i64 = rng.random_range(1..=12);
    let day: i64 = rng.random_range(1..=28);
    year * 10_000 + month * 100 + day
}

/// Generate the TPC-H-like workload: the static `Nation`/`Region` tables plus the
/// FK-preserving update stream over the six stream relations.
pub fn generate(config: &TpchConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut dataset = Dataset::default();

    // ----------------------------------------------------------- static tables
    dataset.tables.insert(
        "Region".into(),
        REGIONS
            .iter()
            .enumerate()
            .map(|(i, name)| vec![Value::long(i as i64), Value::str(*name)])
            .collect(),
    );
    dataset.tables.insert(
        "Nation".into(),
        NATIONS
            .iter()
            .enumerate()
            .map(|(i, (name, region))| {
                vec![
                    Value::long(i as i64),
                    Value::long(*region),
                    Value::str(*name),
                ]
            })
            .collect(),
    );

    // ----------------------------------------------------------- dimension rows
    let n_customers = config.customers();
    let n_parts = config.parts();
    let n_suppliers = config.suppliers();
    let n_orders = config.orders();

    let customers: Vec<Vec<Value>> = (1..=n_customers as i64)
        .map(|ck| {
            vec![
                Value::long(ck),
                Value::long(rng.random_range(0..NATIONS.len() as i64)),
                Value::str(SEGMENTS[rng.random_range(0..SEGMENTS.len())]),
                Value::double((rng.random_range(-99_999..999_999) as f64) / 100.0),
            ]
        })
        .collect();
    let parts: Vec<Vec<Value>> = (1..=n_parts as i64)
        .map(|pk| {
            vec![
                Value::long(pk),
                Value::str(BRANDS[rng.random_range(0..BRANDS.len())]),
                Value::str(TYPES[rng.random_range(0..TYPES.len())]),
                Value::long(rng.random_range(1..=50)),
                Value::str(CONTAINERS[rng.random_range(0..CONTAINERS.len())]),
                Value::double(rng.random_range(900..2_000) as f64 / 1.0),
            ]
        })
        .collect();
    let suppliers: Vec<Vec<Value>> = (1..=n_suppliers as i64)
        .map(|sk| {
            vec![
                Value::long(sk),
                Value::long(rng.random_range(0..NATIONS.len() as i64)),
                Value::double(rng.random_range(-99_999..999_999) as f64 / 100.0),
            ]
        })
        .collect();
    let mut partsupps: Vec<Vec<Value>> = Vec::with_capacity(n_parts * 4);
    for pk in 1..=n_parts as i64 {
        for _ in 0..4 {
            partsupps.push(vec![
                Value::long(pk),
                Value::long(rng.random_range(1..=n_suppliers as i64)),
                Value::long(rng.random_range(1..10_000)),
                Value::double(rng.random_range(100..100_000) as f64 / 100.0),
            ]);
        }
    }

    // ----------------------------------------------------------- stream synthesis
    // Customers, parts, suppliers and partsupp rows are interleaved with the order
    // stream; foreign keys are preserved by inserting a referenced row immediately
    // before its first use. Orders and their line items are deleted once the working
    // set exceeds its target, oldest first.
    let mut events = Vec::new();
    let mut customer_inserted = vec![false; n_customers + 1];
    let mut part_inserted = vec![false; n_parts + 1];
    let mut supplier_inserted = vec![false; n_suppliers + 1];
    let mut partsupp_queue = partsupps.into_iter();
    // Each live order keeps its full tuple and its line items so deletions can replay
    // the exact inserted tuples.
    let mut live_orders: std::collections::VecDeque<(Vec<Value>, Vec<Vec<Value>>)> =
        Default::default();
    let mut live_lineitems = 0usize;

    for ok in 1..=n_orders as i64 {
        // Interleave a few dimension inserts to mimic the randomly mixed agenda.
        for _ in 0..rng.random_range(0..2) {
            if let Some(ps) = partsupp_queue.next() {
                let pk = ps[0].as_i64().unwrap() as usize;
                let sk = ps[1].as_i64().unwrap() as usize;
                if !part_inserted[pk] {
                    part_inserted[pk] = true;
                    events.push(UpdateEvent::insert("Part", parts[pk - 1].clone()));
                }
                if !supplier_inserted[sk] {
                    supplier_inserted[sk] = true;
                    events.push(UpdateEvent::insert("Supplier", suppliers[sk - 1].clone()));
                }
                events.push(UpdateEvent::insert("Partsupp", ps));
            }
        }

        let ck = rng.random_range(1..=n_customers as i64);
        if !customer_inserted[ck as usize] {
            customer_inserted[ck as usize] = true;
            events.push(UpdateEvent::insert(
                "Customer",
                customers[ck as usize - 1].clone(),
            ));
        }
        let order = vec![
            Value::long(ok),
            Value::long(ck),
            Value::long(random_date(&mut rng)),
            Value::str(PRIORITIES[rng.random_range(0..PRIORITIES.len())]),
            Value::double(rng.random_range(1_000..500_000) as f64 / 1.0),
        ];
        events.push(UpdateEvent::insert("Orders", order.clone()));

        let n_items = rng.random_range(1..=7);
        let mut items = Vec::with_capacity(n_items);
        for _ in 0..n_items {
            let pk = rng.random_range(1..=n_parts as i64);
            let sk = rng.random_range(1..=n_suppliers as i64);
            if !part_inserted[pk as usize] {
                part_inserted[pk as usize] = true;
                events.push(UpdateEvent::insert("Part", parts[pk as usize - 1].clone()));
            }
            if !supplier_inserted[sk as usize] {
                supplier_inserted[sk as usize] = true;
                events.push(UpdateEvent::insert(
                    "Supplier",
                    suppliers[sk as usize - 1].clone(),
                ));
            }
            let item = vec![
                Value::long(ok),
                Value::long(pk),
                Value::long(sk),
                Value::long(rng.random_range(1..=50)),
                Value::double(rng.random_range(1_000..100_000) as f64 / 100.0),
                Value::double(rng.random_range(0..11) as f64 / 100.0),
                Value::long(random_date(&mut rng)),
                Value::str(RETURN_FLAGS[rng.random_range(0..RETURN_FLAGS.len())]),
            ];
            events.push(UpdateEvent::insert("Lineitem", item.clone()));
            items.push(item);
        }
        live_lineitems += items.len();
        live_orders.push_back((order, items));

        // Working-set maintenance: delete the oldest orders (and their line items).
        while live_orders.len() > config.orders_working_set
            || live_lineitems > config.lineitem_working_set
        {
            match live_orders.pop_front() {
                Some((old_order, old_items)) => {
                    live_lineitems -= old_items.len();
                    for item in old_items {
                        events.push(UpdateEvent::delete("Lineitem", item));
                    }
                    events.push(UpdateEvent::delete("Orders", old_order));
                }
                None => break,
            }
        }
    }

    dataset.events = events;
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_agca::UpdateSign;
    use std::collections::HashSet;

    #[test]
    fn generator_is_deterministic() {
        let cfg = TpchConfig {
            scale: 0.001,
            seed: 7,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events.first(), b.events.first());
        assert_eq!(a.events.last(), b.events.last());
    }

    #[test]
    fn foreign_keys_are_preserved() {
        let cfg = TpchConfig {
            scale: 0.002,
            seed: 1,
            ..Default::default()
        };
        let d = generate(&cfg);
        let mut customers = HashSet::new();
        let mut orders = HashSet::new();
        let mut parts = HashSet::new();
        let mut suppliers = HashSet::new();
        for e in &d.events {
            if e.sign != UpdateSign::Insert {
                continue;
            }
            match e.relation.as_str() {
                "Customer" => {
                    customers.insert(e.tuple[0].as_i64().unwrap());
                }
                "Part" => {
                    parts.insert(e.tuple[0].as_i64().unwrap());
                }
                "Supplier" => {
                    suppliers.insert(e.tuple[0].as_i64().unwrap());
                }
                "Orders" => {
                    assert!(
                        customers.contains(&e.tuple[1].as_i64().unwrap()),
                        "order before customer"
                    );
                    orders.insert(e.tuple[0].as_i64().unwrap());
                }
                "Lineitem" => {
                    assert!(
                        orders.contains(&e.tuple[0].as_i64().unwrap()),
                        "lineitem before order"
                    );
                    assert!(
                        parts.contains(&e.tuple[1].as_i64().unwrap()),
                        "lineitem before part"
                    );
                    assert!(
                        suppliers.contains(&e.tuple[2].as_i64().unwrap()),
                        "lineitem before supplier"
                    );
                }
                "Partsupp" => {
                    assert!(parts.contains(&e.tuple[0].as_i64().unwrap()));
                    assert!(suppliers.contains(&e.tuple[1].as_i64().unwrap()));
                }
                other => panic!("unexpected stream relation {other}"),
            }
        }
    }

    #[test]
    fn deletions_keep_working_set_bounded() {
        let cfg = TpchConfig {
            scale: 0.01,
            seed: 3,
            orders_working_set: 100,
            lineitem_working_set: 400,
        };
        let d = generate(&cfg);
        let mut live_orders: i64 = 0;
        let mut max_live = 0;
        for e in &d.events {
            if e.relation == "Orders" {
                match e.sign {
                    UpdateSign::Insert => live_orders += 1,
                    UpdateSign::Delete => live_orders -= 1,
                }
                max_live = max_live.max(live_orders);
            }
        }
        assert!(
            max_live <= 102,
            "working set should stay near the target, got {max_live}"
        );
        // Deletions actually occur.
        assert!(d.events.iter().any(|e| e.sign == UpdateSign::Delete));
    }

    #[test]
    fn static_tables_present() {
        let d = generate(&TpchConfig {
            scale: 0.001,
            seed: 5,
            ..Default::default()
        });
        assert_eq!(d.tables["Region"].len(), 5);
        assert_eq!(d.tables["Nation"].len(), 25);
        assert!(!d.is_empty());
    }

    #[test]
    fn order_deletions_carry_the_original_tuple() {
        let cfg = TpchConfig {
            scale: 0.005,
            seed: 11,
            orders_working_set: 20,
            lineitem_working_set: 100,
        };
        let d = generate(&cfg);
        let deleted: Vec<&UpdateEvent> = d
            .events
            .iter()
            .filter(|e| e.relation == "Orders" && e.sign == UpdateSign::Delete)
            .collect();
        assert!(!deleted.is_empty());
        for del in deleted.iter().take(5) {
            assert_eq!(del.tuple.len(), 5, "order delete must carry the full tuple");
        }
    }
}
