//! The benchmark query set (Appendix A of the paper, adapted to the condensed schemas).
//!
//! Each [`WorkloadQuery`] carries the SQL text, the workload family it belongs to and
//! the structural features reported in Figure 2 of the paper (number of joined tables,
//! join type, where-clause features, group-by, nesting depth). Queries outside the
//! supported SQL fragment of this reproduction are listed in EXPERIMENTS.md together
//! with the reason for their exclusion; every structural class of Figure 2 is covered.

use serde::{Deserialize, Serialize};

/// Workload family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Family {
    /// TPC-H-like decision support.
    Tpch,
    /// Algorithmic-trading order-book queries.
    Finance,
    /// MDDB molecular-dynamics queries.
    Scientific,
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Family::Tpch => write!(f, "TPC-H"),
            Family::Finance => write!(f, "Finance"),
            Family::Scientific => write!(f, "Sci."),
        }
    }
}

/// One benchmark query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadQuery {
    /// Short name (e.g. `q3`, `vwap`).
    pub name: &'static str,
    /// Workload family.
    pub family: Family,
    /// SQL text.
    pub sql: &'static str,
    /// Number of relation atoms joined in the outer query (Figure 2, column "T").
    pub tables: usize,
    /// Nesting depth (Figure 2, column "Nst.").
    pub nesting: usize,
    /// Does the query have a GROUP BY clause?
    pub group_by: bool,
    /// Does the query contain inequality joins or inequality-correlated subqueries?
    pub has_inequality: bool,
}

/// The full query set.
pub fn all_queries() -> Vec<WorkloadQuery> {
    vec![
        // ------------------------------------------------------------------ TPC-H
        WorkloadQuery {
            name: "q1",
            family: Family::Tpch,
            sql: "SELECT returnflag, SUM(quantity) AS sum_qty, SUM(extendedprice) AS sum_base_price, \
                  SUM(extendedprice * (1 - discount)) AS sum_disc_price, AVG(quantity) AS avg_qty, \
                  COUNT(*) AS count_order \
                  FROM Lineitem WHERE shipdate <= DATE('1998-09-01') GROUP BY returnflag",
            tables: 1,
            nesting: 0,
            group_by: true,
            has_inequality: true,
        },
        WorkloadQuery {
            name: "q3",
            family: Family::Tpch,
            sql: "SELECT o.orderkey, SUM(l.extendedprice * (1 - l.discount)) AS revenue \
                  FROM Customer c, Orders o, Lineitem l \
                  WHERE c.mktsegment = 'BUILDING' AND o.custkey = c.custkey AND l.orderkey = o.orderkey \
                  AND o.orderdate < DATE('1995-03-15') AND l.shipdate > DATE('1995-03-15') \
                  GROUP BY o.orderkey",
            tables: 3,
            nesting: 0,
            group_by: true,
            has_inequality: true,
        },
        WorkloadQuery {
            name: "q4",
            family: Family::Tpch,
            sql: "SELECT o.orderpriority, COUNT(*) AS order_count FROM Orders o \
                  WHERE o.orderdate >= DATE('1993-07-01') AND o.orderdate < DATE('1993-10-01') \
                  AND EXISTS (SELECT * FROM Lineitem l WHERE l.orderkey = o.orderkey AND l.shipdate > o.orderdate) \
                  GROUP BY o.orderpriority",
            tables: 1,
            nesting: 1,
            group_by: true,
            has_inequality: true,
        },
        WorkloadQuery {
            name: "q5",
            family: Family::Tpch,
            sql: "SELECT n.name, SUM(l.extendedprice * (1 - l.discount)) AS revenue \
                  FROM Customer c, Orders o, Lineitem l, Supplier s, Nation n, Region r \
                  WHERE c.custkey = o.custkey AND l.orderkey = o.orderkey AND l.suppkey = s.suppkey \
                  AND c.nationkey = s.nationkey AND s.nationkey = n.nationkey AND n.regionkey = r.regionkey \
                  AND r.name = 'ASIA' AND o.orderdate >= DATE('1994-01-01') AND o.orderdate < DATE('1995-01-01') \
                  GROUP BY n.name",
            tables: 6,
            nesting: 0,
            group_by: true,
            has_inequality: false,
        },
        WorkloadQuery {
            name: "q6",
            family: Family::Tpch,
            sql: "SELECT SUM(l.extendedprice * l.discount) AS revenue FROM Lineitem l \
                  WHERE l.shipdate >= DATE('1994-01-01') AND l.shipdate < DATE('1995-01-01') \
                  AND (l.discount BETWEEN 0.05 AND 0.07) AND l.quantity < 24",
            tables: 1,
            nesting: 0,
            group_by: false,
            has_inequality: true,
        },
        WorkloadQuery {
            name: "q10",
            family: Family::Tpch,
            sql: "SELECT c.custkey, SUM(l.extendedprice * (1 - l.discount)) AS revenue \
                  FROM Customer c, Orders o, Lineitem l, Nation n \
                  WHERE c.custkey = o.custkey AND l.orderkey = o.orderkey \
                  AND o.orderdate >= DATE('1993-10-01') AND o.orderdate < DATE('1994-01-01') \
                  AND l.returnflag = 'R' AND c.nationkey = n.nationkey \
                  GROUP BY c.custkey",
            tables: 4,
            nesting: 0,
            group_by: true,
            has_inequality: true,
        },
        WorkloadQuery {
            name: "q11a",
            family: Family::Tpch,
            sql: "SELECT ps.partkey, SUM(ps.supplycost * ps.availqty) AS query11a \
                  FROM Partsupp ps, Supplier s WHERE ps.suppkey = s.suppkey GROUP BY ps.partkey",
            tables: 2,
            nesting: 0,
            group_by: true,
            has_inequality: false,
        },
        WorkloadQuery {
            name: "q12",
            family: Family::Tpch,
            sql: "SELECT l.returnflag, SUM(CASE WHEN o.orderpriority IN ('1-URGENT', '2-HIGH') THEN 1 ELSE 0 END) AS high_line_count \
                  FROM Orders o, Lineitem l \
                  WHERE o.orderkey = l.orderkey AND l.shipdate >= DATE('1994-01-01') AND l.shipdate < DATE('1995-01-01') \
                  GROUP BY l.returnflag",
            tables: 2,
            nesting: 0,
            group_by: true,
            has_inequality: true,
        },
        WorkloadQuery {
            name: "q17a",
            family: Family::Tpch,
            sql: "SELECT SUM(l.extendedprice) AS query17a FROM Lineitem l, Part p \
                  WHERE p.partkey = l.partkey AND l.quantity < 0.005 * \
                  (SELECT SUM(l2.quantity) FROM Lineitem l2 WHERE l2.partkey = p.partkey)",
            tables: 2,
            nesting: 1,
            group_by: false,
            has_inequality: true,
        },
        WorkloadQuery {
            name: "q18a",
            family: Family::Tpch,
            sql: "SELECT c.custkey, SUM(l1.quantity) AS query18a \
                  FROM Customer c, Orders o, Lineitem l1 \
                  WHERE 100 < (SELECT SUM(l3.quantity) FROM Lineitem l3 WHERE l1.orderkey = l3.orderkey) \
                  AND c.custkey = o.custkey AND o.orderkey = l1.orderkey \
                  GROUP BY c.custkey",
            tables: 3,
            nesting: 1,
            group_by: true,
            has_inequality: true,
        },
        WorkloadQuery {
            name: "q22a",
            family: Family::Tpch,
            sql: "SELECT c1.nationkey, SUM(c1.acctbal) AS query22a FROM Customer c1 \
                  WHERE c1.acctbal < (SELECT SUM(c2.acctbal) FROM Customer c2 WHERE c2.acctbal > 0) \
                  AND 0 = (SELECT SUM(1) FROM Orders o WHERE o.custkey = c1.custkey) \
                  GROUP BY c1.nationkey",
            tables: 1,
            nesting: 1,
            group_by: true,
            has_inequality: true,
        },
        WorkloadQuery {
            name: "ssb4",
            family: Family::Tpch,
            sql: "SELECT n.regionkey, SUM(l.quantity) AS total \
                  FROM Customer c, Orders o, Lineitem l, Supplier s, Nation n \
                  WHERE c.custkey = o.custkey AND o.orderkey = l.orderkey AND s.suppkey = l.suppkey \
                  AND o.orderdate >= DATE('1997-01-01') AND o.orderdate < DATE('1998-01-01') \
                  AND n.nationkey = s.nationkey \
                  GROUP BY n.regionkey",
            tables: 5,
            nesting: 0,
            group_by: true,
            has_inequality: true,
        },
        // ---------------------------------------------------------------- Finance
        WorkloadQuery {
            name: "vwap",
            family: Family::Finance,
            sql: "SELECT SUM(b1.price * b1.volume) AS vwap FROM Bids b1 \
                  WHERE 0.25 * (SELECT SUM(b3.volume) FROM Bids b3) > \
                  (SELECT SUM(b2.volume) FROM Bids b2 WHERE b2.price > b1.price)",
            tables: 1,
            nesting: 1,
            group_by: false,
            has_inequality: true,
        },
        WorkloadQuery {
            name: "axf",
            family: Family::Finance,
            sql: "SELECT b.broker_id, SUM(a.volume - b.volume) AS axf FROM Bids b, Asks a \
                  WHERE b.broker_id = a.broker_id \
                  AND (a.price - b.price > 1000 OR b.price - a.price > 1000) \
                  GROUP BY b.broker_id",
            tables: 2,
            nesting: 0,
            group_by: true,
            has_inequality: true,
        },
        WorkloadQuery {
            name: "bsp",
            family: Family::Finance,
            sql: "SELECT x.broker_id, SUM(x.volume * x.price - y.volume * y.price) AS bsp \
                  FROM Bids x, Bids y WHERE x.broker_id = y.broker_id AND x.t > y.t \
                  GROUP BY x.broker_id",
            tables: 2,
            nesting: 0,
            group_by: true,
            has_inequality: true,
        },
        WorkloadQuery {
            name: "bsv",
            family: Family::Finance,
            sql: "SELECT x.broker_id, SUM(x.volume * x.price * y.volume * y.price * 0.5) AS bsv \
                  FROM Bids x, Bids y WHERE x.broker_id = y.broker_id GROUP BY x.broker_id",
            tables: 2,
            nesting: 0,
            group_by: true,
            has_inequality: false,
        },
        WorkloadQuery {
            name: "mst",
            family: Family::Finance,
            sql: "SELECT b.broker_id, SUM(a.price * a.volume - b.price * b.volume) AS mst \
                  FROM Bids b, Asks a \
                  WHERE 0.25 * (SELECT SUM(a1.volume) FROM Asks a1) > \
                        (SELECT SUM(a2.volume) FROM Asks a2 WHERE a2.price > a.price) \
                  AND 0.25 * (SELECT SUM(b1.volume) FROM Bids b1) > \
                        (SELECT SUM(b2.volume) FROM Bids b2 WHERE b2.price > b.price) \
                  GROUP BY b.broker_id",
            tables: 2,
            nesting: 1,
            group_by: true,
            has_inequality: true,
        },
        WorkloadQuery {
            name: "psp",
            family: Family::Finance,
            sql: "SELECT SUM(a.price - b.price) AS psp FROM Bids b, Asks a \
                  WHERE b.volume > 0.0001 * (SELECT SUM(b1.volume) FROM Bids b1) \
                  AND a.volume > 0.0001 * (SELECT SUM(a1.volume) FROM Asks a1)",
            tables: 2,
            nesting: 1,
            group_by: false,
            has_inequality: true,
        },
        // -------------------------------------------------------------- Scientific
        WorkloadQuery {
            name: "mddb1",
            family: Family::Scientific,
            sql: "SELECT p.t, SUM((p.x - p2.x) * (p.x - p2.x) + (p.y - p2.y) * (p.y - p2.y) + (p.z - p2.z) * (p.z - p2.z)) AS rdf \
                  FROM AtomPositions p, AtomMeta m, AtomPositions p2, AtomMeta m2 \
                  WHERE p.trj_id = p2.trj_id AND p.t = p2.t \
                  AND p.atom_id = m.atom_id AND p2.atom_id = m2.atom_id \
                  AND m.residue_name = 'LYS' AND m2.residue_name = 'TIP3' \
                  GROUP BY p.t",
            tables: 4,
            nesting: 0,
            group_by: true,
            has_inequality: false,
        },
    ]
}

/// Look up a query by name.
pub fn query(name: &str) -> Option<WorkloadQuery> {
    all_queries().into_iter().find(|q| q.name == name)
}

/// Queries of one family.
pub fn queries_of(family: Family) -> Vec<WorkloadQuery> {
    all_queries()
        .into_iter()
        .filter(|q| q.family == family)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::full_catalog;
    use dbtoaster_sql::{parse_query, translate};

    #[test]
    fn the_query_set_covers_every_family() {
        let all = all_queries();
        assert!(all.len() >= 18);
        assert!(!queries_of(Family::Tpch).is_empty());
        assert!(!queries_of(Family::Finance).is_empty());
        assert!(!queries_of(Family::Scientific).is_empty());
        assert!(query("q17a").is_some());
        assert!(query("nonexistent").is_none());
    }

    #[test]
    fn every_query_parses_and_translates() {
        let catalog = full_catalog();
        for q in all_queries() {
            let parsed =
                parse_query(q.sql).unwrap_or_else(|e| panic!("{}: parse error {e}", q.name));
            let translated = translate(q.name, &parsed, &catalog)
                .unwrap_or_else(|e| panic!("{}: translation error {e}", q.name));
            assert!(!translated.views.is_empty(), "{} produced no views", q.name);
            // The recorded nesting depth matches the parsed structure.
            assert_eq!(parsed.nesting_depth(), q.nesting, "{} nesting", q.name);
            assert_eq!(
                !parsed.group_by.is_empty(),
                q.group_by,
                "{} group-by",
                q.name
            );
        }
    }
}
