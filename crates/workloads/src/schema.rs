//! Schemas of the benchmark workloads (Section 8 of the paper).
//!
//! Three workload families are modelled, with condensed schemas that keep every column
//! the benchmark queries touch:
//!
//! * **TPC-H-like** — `Customer`, `Orders`, `Lineitem`, `Part`, `Supplier`, `Partsupp`
//!   as update streams plus the static `Nation` and `Region` tables;
//! * **financial order book** — `Bids` and `Asks` with schema
//!   `(t, id, broker_id, price, volume)`;
//! * **MDDB molecular dynamics** — the `AtomPositions` insert stream plus the static
//!   `AtomMeta` table.

use dbtoaster_sql::{SqlCatalog, TableDef};

/// Column list of a TPC-H-like relation.
pub fn tpch_columns(table: &str) -> Option<Vec<&'static str>> {
    Some(match table {
        "Customer" => vec!["custkey", "nationkey", "mktsegment", "acctbal"],
        "Orders" => vec![
            "orderkey",
            "custkey",
            "orderdate",
            "orderpriority",
            "totalprice",
        ],
        "Lineitem" => vec![
            "orderkey",
            "partkey",
            "suppkey",
            "quantity",
            "extendedprice",
            "discount",
            "shipdate",
            "returnflag",
        ],
        "Part" => vec![
            "partkey",
            "brand",
            "type",
            "size",
            "container",
            "retailprice",
        ],
        "Supplier" => vec!["suppkey", "nationkey", "acctbal"],
        "Partsupp" => vec!["partkey", "suppkey", "availqty", "supplycost"],
        "Nation" => vec!["nationkey", "regionkey", "name"],
        "Region" => vec!["regionkey", "name"],
        _ => return None,
    })
}

/// The TPC-H-like catalog. `Nation` and `Region` are static tables; everything else is
/// an update stream.
pub fn tpch_catalog() -> SqlCatalog {
    let mut c = SqlCatalog::new();
    for t in [
        "Customer", "Orders", "Lineitem", "Part", "Supplier", "Partsupp",
    ] {
        c.add(TableDef::stream(t, tpch_columns(t).unwrap()));
    }
    for t in ["Nation", "Region"] {
        c.add(TableDef::table(t, tpch_columns(t).unwrap()));
    }
    c
}

/// Column list of the order-book relations.
pub fn finance_columns() -> Vec<&'static str> {
    vec!["t", "id", "broker_id", "price", "volume"]
}

/// The financial order-book catalog: `Bids` and `Asks` update streams.
pub fn finance_catalog() -> SqlCatalog {
    let mut c = SqlCatalog::new();
    c.add(TableDef::stream("Bids", finance_columns()));
    c.add(TableDef::stream("Asks", finance_columns()));
    c
}

/// Column lists of the MDDB relations.
pub fn mddb_columns(table: &str) -> Option<Vec<&'static str>> {
    Some(match table {
        "AtomPositions" => vec!["trj_id", "t", "atom_id", "x", "y", "z"],
        "AtomMeta" => vec!["atom_id", "residue_name", "atom_name"],
        _ => return None,
    })
}

/// The MDDB catalog: an `AtomPositions` insert stream and a static `AtomMeta` table.
pub fn mddb_catalog() -> SqlCatalog {
    let mut c = SqlCatalog::new();
    c.add(TableDef::stream(
        "AtomPositions",
        mddb_columns("AtomPositions").unwrap(),
    ));
    c.add(TableDef::table(
        "AtomMeta",
        mddb_columns("AtomMeta").unwrap(),
    ));
    c
}

/// A catalog containing every workload relation (used by tools that compile the whole
/// query set at once).
pub fn full_catalog() -> SqlCatalog {
    let mut c = tpch_catalog();
    for t in finance_catalog().tables() {
        c.add(t.clone());
    }
    for t in mddb_catalog().tables() {
        c.add(t.clone());
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_contain_expected_tables() {
        let t = tpch_catalog();
        assert!(t.get("Lineitem").unwrap().is_stream);
        assert!(!t.get("Nation").unwrap().is_stream);
        assert!(t.get("lineitem").unwrap().has_column("SHIPDATE"));

        let f = finance_catalog();
        assert!(f.get("Bids").unwrap().has_column("broker_id"));

        let m = mddb_catalog();
        assert!(!m.get("AtomMeta").unwrap().is_stream);

        let all = full_catalog();
        assert!(all.get("Bids").is_some() && all.get("Orders").is_some());
    }

    #[test]
    fn unknown_table_has_no_columns() {
        assert!(tpch_columns("Nope").is_none());
        assert!(mddb_columns("Nope").is_none());
    }
}
