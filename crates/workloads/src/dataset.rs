//! The common shape of a generated workload: static tables plus an update stream.

use dbtoaster_agca::UpdateEvent;
use dbtoaster_gmr::Value;
use std::collections::HashMap;

/// A generated workload: preloaded static tables and a stream of single-tuple updates.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    /// Static table contents, loaded into the engine before the stream starts.
    pub tables: HashMap<String, Vec<Vec<Value>>>,
    /// The update stream (inserts and deletes), in arrival order.
    pub events: Vec<UpdateEvent>,
}

impl Dataset {
    /// Number of stream events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the stream empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Truncate the stream to at most `n` events (used by the scaled-down benchmark
    /// configurations).
    pub fn truncate(&mut self, n: usize) {
        self.events.truncate(n);
    }

    /// Count events per relation.
    pub fn events_per_relation(&self) -> HashMap<String, usize> {
        let mut out = HashMap::new();
        for e in &self.events {
            *out.entry(e.relation.clone()).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_truncation() {
        let mut d = Dataset::default();
        assert!(d.is_empty());
        d.events
            .push(UpdateEvent::insert("R", vec![Value::long(1)]));
        d.events
            .push(UpdateEvent::insert("S", vec![Value::long(2)]));
        d.events
            .push(UpdateEvent::delete("R", vec![Value::long(1)]));
        assert_eq!(d.len(), 3);
        let counts = d.events_per_relation();
        assert_eq!(counts["R"], 2);
        d.truncate(1);
        assert_eq!(d.len(), 1);
    }
}
