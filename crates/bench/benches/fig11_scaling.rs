//! Figure 11 bench: refresh-rate scaling with stream length.
//!
//! The working set of Orders/Lineitem is held constant while the stream gets longer;
//! for most queries the per-event cost (and hence the refresh rate) should stay flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbtoaster::prelude::*;
use dbtoaster::workloads::{self, TpchConfig};
use dbtoaster_bench::build_engine;
use std::hint::black_box;

const BASE_EVENTS: usize = 1_000;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));

    for query_name in ["q1", "q3", "q6", "q11a", "q17a"] {
        let q = workloads::query(query_name).unwrap();
        for scale in [1usize, 2, 5] {
            let mut data = workloads::tpch::generate(&TpchConfig::with_fixed_working_set(
                0.002 * scale as f64,
                42,
                150,
                600,
            ));
            data.truncate(BASE_EVENTS * scale);
            group.throughput(Throughput::Elements(data.events.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(query_name, format!("{scale}x")),
                &data,
                |b, data| {
                    b.iter(|| {
                        let mut engine = build_engine(&q, CompileMode::HigherOrder, data);
                        engine.process_all(&data.events).unwrap();
                        black_box(engine.stats().events)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
