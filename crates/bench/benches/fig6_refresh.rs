//! Figures 6 & 7 bench: per-event view-refresh cost of every query under every strategy.
//!
//! Criterion measures the time to replay a fixed stream prefix, which is the reciprocal
//! of the refresh rate the paper reports. Run with
//! `cargo bench -p dbtoaster-bench --bench fig6_refresh`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbtoaster::prelude::*;
use dbtoaster::workloads;
use dbtoaster_bench::{build_engine, dataset_for, STRATEGIES};
use std::hint::black_box;

/// Events replayed per measurement with Higher-Order IVM (large enough to amortize
/// engine construction) and with the slower baseline strategies (small enough that
/// re-evaluation finishes within Criterion's sampling budget).
const EVENTS_HO: usize = 1_500;
const EVENTS_BASELINE: usize = 300;

/// Queries whose baseline (non-DBToaster) runs are quadratic or worse; Criterion skips
/// those combinations — the harness binary measures them with a wall-clock budget
/// instead, mirroring the paper's timeout.
const SLOW_BASELINES: &[&str] = &["mst", "vwap", "psp"];

fn bench_refresh_rates(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_refresh");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));

    for q in workloads::all_queries() {
        let ho_data = dataset_for(q.family, EVENTS_HO, 42);
        let baseline_data = dataset_for(q.family, EVENTS_BASELINE, 42);
        for &mode in STRATEGIES {
            if mode != CompileMode::HigherOrder && SLOW_BASELINES.contains(&q.name) {
                continue;
            }
            // The quadratic queries use the short stream even under Higher-Order IVM.
            let data = if mode == CompileMode::HigherOrder && !SLOW_BASELINES.contains(&q.name) {
                &ho_data
            } else {
                &baseline_data
            };
            group.throughput(Throughput::Elements(data.events.len() as u64));
            group.bench_with_input(BenchmarkId::new(q.name, mode), &mode, |b, &mode| {
                b.iter(|| {
                    let mut engine = build_engine(&q, mode, data);
                    engine.process_all(&data.events).unwrap();
                    black_box(engine.stats().events)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_refresh_rates);
criterion_main!(benches);
