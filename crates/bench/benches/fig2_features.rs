//! Figure 2 bench: compilation of every workload query under Higher-Order IVM.
//!
//! Reports the compile time per query and (as a side effect of the analysis test-suite)
//! the rewrite rules each compilation applies. Run with
//! `cargo bench -p dbtoaster-bench --bench fig2_features`.

use criterion::{criterion_group, criterion_main, Criterion};
use dbtoaster::prelude::*;
use dbtoaster::workloads;
use std::hint::black_box;

fn bench_compilation(c: &mut Criterion) {
    let catalog = workloads::full_catalog();
    let mut group = c.benchmark_group("fig2_compile");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for q in workloads::all_queries() {
        group.bench_function(q.name, |b| {
            b.iter(|| {
                let engine = QueryEngineBuilder::new(catalog.clone())
                    .add_query(q.name, q.sql)
                    .mode(CompileMode::HigherOrder)
                    .build()
                    .unwrap();
                black_box(engine.program().maps.len())
            })
        });
    }
    group.finish();

    // Print the Figure 2 table once so `cargo bench` output contains the artifact.
    println!(
        "{}",
        dbtoaster_bench::format_figure2(&dbtoaster_bench::figure2_rows())
    );
}

criterion_group!(benches, bench_compilation);
criterion_main!(benches);
