//! Figures 8–10 bench: trace behaviour over the stream.
//!
//! Criterion measures chunks of the stream at increasing offsets for representative
//! queries of each figure, which exposes whether per-event cost stays constant (Q1,
//! Q18a), grows with the working set, or is dominated by re-evaluation (PSP). The full
//! 10-point traces (including the memory series) are produced by the harness binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbtoaster::prelude::*;
use dbtoaster::workloads;
use dbtoaster_bench::{build_engine, dataset_for};
use std::hint::black_box;

const EVENTS: usize = 3_000;
const CHUNK: usize = 500;

fn bench_traces(c: &mut Criterion) {
    let queries = [
        ("q1", "fig8"),
        ("q3", "fig8"),
        ("q11a", "fig8"),
        ("q17a", "fig9"),
        ("q18a", "fig9"),
        ("q22a", "fig9"),
        ("axf", "fig10"),
        ("psp", "fig10"),
    ];
    let mut group = c.benchmark_group("trace_chunks");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.throughput(Throughput::Elements(CHUNK as u64));

    for (name, figure) in queries {
        let q = workloads::query(name).unwrap();
        let data = dataset_for(q.family, EVENTS, 42);
        // Measure the cost of the *last* chunk after pre-warming the views with the
        // prefix — this is the per-event cost at the right edge of the paper's traces.
        group.bench_function(BenchmarkId::new(figure, name), |b| {
            b.iter_batched(
                || {
                    let mut engine = build_engine(&q, CompileMode::HigherOrder, &data);
                    let prefix = data.events.len().saturating_sub(CHUNK);
                    engine.process_all(&data.events[..prefix]).unwrap();
                    engine
                },
                |mut engine| {
                    let prefix = data.events.len().saturating_sub(CHUNK);
                    engine.process_all(&data.events[prefix..]).unwrap();
                    black_box(engine.stats().events)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_traces);
criterion_main!(benches);
