//! Micro-benchmarks of the substrate operations: GMR ring operations, the delta
//! transform, expression simplification and view-map maintenance. These are not paper
//! figures but ablations that explain where the per-event time of the end-to-end
//! benchmarks goes.

use criterion::{criterion_group, criterion_main, Criterion};
use dbtoaster::agca::{delta, expand, simplify, Expr, TupleUpdate, UpdateSign};
use dbtoaster::gmr::{Gmr, Schema, Value};
use dbtoaster::runtime::ViewMap;
use std::hint::black_box;

fn gmr_of(n: i64) -> Gmr {
    let mut g = Gmr::new(Schema::new(["a", "b"]));
    for i in 0..n {
        g.add_tuple(vec![Value::long(i % 50), Value::long(i)], 1.0);
    }
    g
}

fn bench_gmr_ops(c: &mut Criterion) {
    let r = gmr_of(1_000);
    let mut s = Gmr::new(Schema::new(["b", "c"]));
    for i in 0..1_000 {
        s.add_tuple(vec![Value::long(i), Value::long(i * 2)], 1.0);
    }
    c.bench_function("gmr_join_1k_x_1k", |b| {
        b.iter(|| black_box(r.join(&s)).len())
    });
    c.bench_function("gmr_agg_sum_1k", |b| {
        b.iter(|| black_box(r.agg_sum(&["a".to_string()])).len())
    });
    // Union of two same-schema relations, one reordered (the seed version of
    // this bench unioned incompatible schemas and panicked on first run).
    let mut r2 = Gmr::new(Schema::new(["b", "a"]));
    for i in 0..1_000 {
        r2.add_tuple(vec![Value::long(i), Value::long(i % 50)], 1.0);
    }
    c.bench_function("gmr_union_1k", |b| {
        b.iter(|| {
            let mut x = r.clone();
            x.add_gmr(&r2);
            black_box(x.len())
        })
    });
}

fn bench_delta_and_simplify(c: &mut Criterion) {
    // A 4-way join with a nested aggregate, representative of the harder queries.
    let nested = Expr::agg_sum(
        ["K"],
        Expr::product_of([Expr::rel("LI2", ["K", "Q2"]), Expr::var("Q2")]),
    );
    let q = Expr::agg_sum(
        ["CK"],
        Expr::product_of([
            Expr::rel("C", ["CK", "NK"]),
            Expr::rel("O", ["OK", "CK", "D"]),
            Expr::rel("LI", ["OK", "K", "Q"]),
            Expr::lift("z", nested),
            Expr::cmp(dbtoaster::agca::CmpOp::Lt, Expr::val(100), Expr::var("z")),
            Expr::var("Q"),
        ]),
    );
    let upd = TupleUpdate::new(
        "LI",
        UpdateSign::Insert,
        &["OK".into(), "K".into(), "Q".into()],
    );
    c.bench_function("delta_4way_nested", |b| {
        b.iter(|| black_box(delta(&q, &upd)))
    });
    let d = delta(&q, &upd);
    c.bench_function("simplify_delta", |b| b.iter(|| black_box(simplify(&d))));
    let s = simplify(&d);
    c.bench_function("expand_delta", |b| {
        b.iter(|| black_box(expand(&s)).monomials.len())
    });
}

fn bench_view_map(c: &mut Criterion) {
    c.bench_function("viewmap_insert_10k", |b| {
        b.iter(|| {
            let mut v = ViewMap::new(Schema::new(["a", "b"]));
            for i in 0..10_000i64 {
                v.add(vec![Value::long(i % 97), Value::long(i)], 1.0);
            }
            black_box(v.len())
        })
    });
    let mut v = ViewMap::new(Schema::new(["a", "b"]));
    for i in 0..10_000i64 {
        v.add(vec![Value::long(i % 97), Value::long(i)], 1.0);
    }
    // Build the secondary index once, then measure the probe.
    v.lookup(&[Some(Value::long(3)), None]);
    c.bench_function("viewmap_partial_lookup", |b| {
        b.iter(|| black_box(v.lookup(&[Some(Value::long(3)), None])).len())
    });
}

criterion_group!(
    benches,
    bench_gmr_ops,
    bench_delta_and_simplify,
    bench_view_map
);
criterion_main!(benches);
