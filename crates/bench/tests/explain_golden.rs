//! EXPLAIN golden tests over the full workload suite.
//!
//! For every workload query the rendered EXPLAIN must tell the truth about
//! execution: each live [`BatchReport`] run record's strategy must agree with
//! the strategy EXPLAIN printed for that relation. One legitimate divergence
//! is allowed — a relation explained as `batch-delta` may execute a specific
//! run entry-major, because the runtime cost gate (correction-firing count vs
//! observed map sizes) decides per batch; the reverse (EXPLAIN claiming a
//! cheaper strategy than what ran) is a bug.
//!
//! The JSON form must round-trip through [`ProgramExplain::parse_json`], and
//! the explained strategy must follow `DBTOASTER_FORCE_BATCH_STRATEGY`
//! overrides exactly as the live dispatch does — all in one test function
//! because the override is process-global state.

use dbtoaster::prelude::*;
use dbtoaster::workloads;
use dbtoaster_bench::{build_engine, dataset_for};

const EVENTS: usize = 400;
const SEED: u64 = 7;
const CHUNK: usize = 32;

/// Replay a query's stream in multi-event delta batches, returning every run
/// record plus the engine for explaining.
fn run_batched(q: &workloads::WorkloadQuery) -> (QueryEngine, Vec<(String, BatchStrategy)>) {
    let data = dataset_for(q.family, EVENTS, SEED);
    let mut engine = build_engine(q, CompileMode::HigherOrder, &data);
    engine.set_telemetry(Telemetry::with_config(TelemetryConfig::default()));
    engine.set_run_recording(true);
    let mut runs = Vec::new();
    for chunk in data.events.chunks(CHUNK) {
        let batch = DeltaBatch::from_events(chunk);
        let report = engine.process_batch(&batch);
        assert_eq!(
            report.failed_events, 0,
            "{}: {:?}",
            q.name, report.first_error
        );
        runs.extend(report.runs.iter().map(|r| (r.relation.clone(), r.strategy)));
    }
    (engine, runs)
}

fn check_query(q: &workloads::WorkloadQuery, forced: Option<BatchStrategy>) {
    let (mut engine, runs) = run_batched(q);
    assert!(!runs.is_empty(), "{}: no batch runs recorded", q.name);
    let ex = engine.explain();
    assert_eq!(
        ex.forced.as_deref(),
        forced.map(|f| f.as_str()),
        "{}: explained override disagrees with the environment",
        q.name
    );
    for (relation, live) in &runs {
        let rel = ex
            .relations
            .iter()
            .find(|r| &r.relation == relation)
            .unwrap_or_else(|| panic!("{}: relation {relation} ran but is not explained", q.name));
        assert!(
            !rel.reason.is_empty(),
            "{}: {relation} has no strategy reason",
            q.name
        );
        let explained = rel.strategy.as_str();
        let agrees = match live {
            BatchStrategy::BatchDelta => explained == "batch-delta",
            BatchStrategy::StatementMajor => explained == "statement-major",
            // A batch-delta relation may fall back to entry-major per batch
            // (the runtime cost gate); entry-major dispatch always runs so.
            BatchStrategy::EntryMajor => explained == "entry-major" || explained == "batch-delta",
        };
        assert!(
            agrees,
            "{}: relation {relation} explained as {explained} but ran {}",
            q.name,
            live.as_str()
        );
    }
    // The JSON form round-trips structurally.
    let json = ex.render_json();
    let parsed = ProgramExplain::parse_json(&json)
        .unwrap_or_else(|| panic!("{}: unparseable explain JSON", q.name));
    assert_eq!(
        parsed, ex,
        "{}: explain JSON round-trip changed the tree",
        q.name
    );
}

/// One test function on purpose: `DBTOASTER_FORCE_BATCH_STRATEGY` is process
/// state, and tests within a binary run concurrently.
#[test]
fn explained_strategies_match_live_batch_runs_across_overrides() {
    let queries = workloads::all_queries();
    assert!(queries.len() >= 15, "workload suite shrank?");

    // Default dispatch: batch-delta where derived.
    std::env::remove_var(dbtoaster::runtime::FORCE_BATCH_STRATEGY_ENV);
    for q in &queries {
        check_query(q, None);
    }

    // Forced overrides must show up identically in EXPLAIN and in the runs.
    // (A spot-check subset keeps the test inside a reasonable budget.)
    for (name, forced) in [
        ("entry", BatchStrategy::EntryMajor),
        ("statement", BatchStrategy::StatementMajor),
    ] {
        std::env::set_var(dbtoaster::runtime::FORCE_BATCH_STRATEGY_ENV, name);
        for q in queries
            .iter()
            .filter(|q| ["q1", "q3", "axf", "bsv", "vwap", "mddb1"].contains(&q.name))
        {
            check_query(q, Some(forced));
        }
    }
    std::env::remove_var(dbtoaster::runtime::FORCE_BATCH_STRATEGY_ENV);
}
