//! The experiment harness: regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p dbtoaster-bench --bin harness -- all
//! cargo run --release -p dbtoaster-bench --bin harness -- fig6 --events 50000 --budget 10
//! cargo run --release -p dbtoaster-bench --bin harness -- fig8
//! ```
//!
//! Subcommands: `micro`, `serve`, `recover`, `batch`, `fig2`, `fig6` (also covers Figure 7),
//! `fig8`, `fig9`, `fig10`, `fig11`, `traces` (Figures 13–18), `all`.
//!
//! Flags: `--events N`, `--budget SECS`, `--seed N`, `--label NAME`,
//! `--json PATH`, and `--strategy entry|statement|auto` — which pins the
//! delta-batch dispatch via the `DBTOASTER_FORCE_BATCH_STRATEGY` environment
//! override (the batch twin of `DBTOASTER_FORCE_INTERPRETER`): `entry` is the
//! per-event oracle, `statement` the legacy pre-batch-delta dispatch, `auto`
//! the default batch-delta-where-derived choice.

use dbtoaster::prelude::*;
use dbtoaster::workloads::{self, Family};
use dbtoaster_bench::*;
use std::time::Duration;

struct Args {
    command: String,
    events: usize,
    budget: Duration,
    seed: u64,
    json: Option<String>,
    label: String,
    strategy: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        command: argv.first().cloned().unwrap_or_else(|| "all".to_string()),
        events: 20_000,
        budget: Duration::from_secs(5),
        seed: 42,
        json: None,
        label: "run".to_string(),
        strategy: None,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--events" => {
                args.events = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.events);
                i += 2;
            }
            "--budget" => {
                let secs: u64 = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(5);
                args.budget = Duration::from_secs(secs);
                i += 2;
            }
            "--seed" => {
                args.seed = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.seed);
                i += 2;
            }
            "--json" => {
                args.json = argv.get(i + 1).cloned();
                i += 2;
            }
            "--label" => {
                args.label = argv.get(i + 1).cloned().unwrap_or(args.label);
                i += 2;
            }
            "--strategy" => {
                args.strategy = argv.get(i + 1).cloned();
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument {other}");
                i += 1;
            }
        }
    }
    args
}

fn micro(config: &ExperimentConfig, label: &str, json: Option<&str>) {
    println!("=== micro: substrate operations and fig6 Higher-Order refresh rates ===");
    let results = micro_benchmarks(config);
    println!("{}", format_micro(&results));
    if let Some(path) = json {
        let payload = micro_json(label, config, &results);
        if bench_telemetry_off() {
            std::fs::write(path, &payload)
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote {path} (telemetry off: no latency blocks)");
        } else {
            // The fig6 runs carry telemetry percentiles; refuse to write a
            // JSON that lost them (CI greps for this line in the smoke run).
            let blocks = validate_latency_json(&payload)
                .unwrap_or_else(|e| panic!("micro JSON missing/invalid latency blocks: {e}"));
            std::fs::write(path, &payload)
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote {path} ({blocks} latency blocks validated)");
        }
    }
}

fn serve(config: &ExperimentConfig, label: &str, json: Option<&str>) {
    println!("=== serve: concurrent view serving (writer throughput, reads, fan-out) ===");
    let results = serve_benchmarks(config);
    println!("{}", format_micro(&results));
    if let Some(path) = json {
        let payload = micro_json(label, config, &results);
        std::fs::write(path, &payload).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("wrote {path}");
    }
}

fn recover(config: &ExperimentConfig, label: &str, json: Option<&str>) {
    println!("=== recover: durable serving (WAL throughput, checkpoint + replay rates) ===");
    let results = recover_benchmarks(config);
    println!("{}", format_micro(&results));
    if let Some(path) = json {
        let payload = micro_json(label, config, &results);
        std::fs::write(path, &payload).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("wrote {path}");
    }
}

fn batch(config: &ExperimentConfig, label: &str, json: Option<&str>) {
    println!("=== batch: delta-batch size sweep (events/sec at batch sizes 1/8/64/512) ===");
    let results = batch_benchmarks(config);
    println!("{}", format_micro(&results));
    if let Some(path) = json {
        let payload = micro_json(label, config, &results);
        if bench_telemetry_off() {
            std::fs::write(path, &payload)
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote {path} (telemetry off: no latency blocks)");
        } else {
            let blocks = validate_latency_json(&payload)
                .unwrap_or_else(|e| panic!("batch JSON missing/invalid latency blocks: {e}"));
            std::fs::write(path, &payload)
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote {path} ({blocks} latency blocks validated)");
        }
    }
}

fn fig2() {
    println!("=== Figure 2: workload features and rewrite rules applied ===");
    println!("{}", format_figure2(&figure2_rows()));
}

fn fig6(config: &ExperimentConfig) {
    println!("=== Figures 6 & 7: average view refresh rates (1/s) ===");
    println!(
        "(stream length {} events per query, {}s budget per run)\n",
        config.events,
        config.time_budget.as_secs()
    );
    let queries = workloads::all_queries();
    let rows = figure6_rows(config, &queries);
    println!("{}", format_figure6(&rows));
}

fn traces_for(queries: &[&str], label: &str, config: &ExperimentConfig) {
    println!("=== {label}: per-query traces (time, refresh rate, memory vs stream fraction) ===");
    for name in queries {
        let q = match workloads::query(name) {
            Some(q) => q,
            None => continue,
        };
        let data = dataset_for(q.family, config.events, config.seed);
        for mode in [CompileMode::HigherOrder, CompileMode::FirstOrder] {
            let pts = trace_series(&q, mode, &data, 10, config.time_budget);
            println!("{}", format_trace(name, mode, &pts));
        }
    }
}

fn fig11(config: &ExperimentConfig) {
    println!("=== Figure 11: refresh-rate scaling with stream length (DBToaster) ===");
    let rows = figure11_rows(
        config.events / 4,
        &[1, 2, 5, 10],
        config.seed,
        &["q1", "q3", "q6", "q11a", "q12", "q17a", "q18a"],
        config.time_budget,
    );
    println!("{}", format_figure11(&rows));
}

fn main() {
    let args = parse_args();
    // `--strategy entry|statement|auto` pins the batch dispatch for every
    // engine the harness builds, through the same environment override a
    // deployment would use (`DBTOASTER_FORCE_BATCH_STRATEGY`, the batch
    // twin of `DBTOASTER_FORCE_INTERPRETER`). `auto` (or any unrecognised
    // value) keeps the compiler's dispatch: batch-delta where derived.
    if let Some(name) = &args.strategy {
        match dbtoaster::runtime::parse_batch_strategy(name) {
            Some(s) => println!("forcing batch strategy: {s}"),
            None => println!("batch strategy: automatic (batch-delta where derived)"),
        }
        std::env::set_var(dbtoaster::runtime::FORCE_BATCH_STRATEGY_ENV, name);
    }
    let config = ExperimentConfig {
        events: args.events,
        time_budget: args.budget,
        seed: args.seed,
    };

    match args.command.as_str() {
        "micro" => micro(&config, &args.label, args.json.as_deref()),
        "serve" => serve(&config, &args.label, args.json.as_deref()),
        "recover" => recover(&config, &args.label, args.json.as_deref()),
        "batch" => batch(&config, &args.label, args.json.as_deref()),
        "fig2" => fig2(),
        "fig6" | "fig7" => fig6(&config),
        "fig8" => traces_for(&["q1", "q3", "q11a", "q12"], "Figure 8", &config),
        "fig9" => traces_for(&["q17a", "q18a", "q22a", "q4"], "Figure 9", &config),
        "fig10" => traces_for(&["axf", "mst", "psp", "vwap"], "Figure 10", &config),
        "fig11" => fig11(&config),
        "traces" => traces_for(
            &[
                "q1", "q3", "q4", "q5", "q6", "q10", "q11a", "q12", "q17a", "q18a", "q22a", "ssb4",
                "vwap", "axf", "bsp", "bsv", "mst", "psp", "mddb1",
            ],
            "Figures 13-18",
            &config,
        ),
        "all" => {
            fig2();
            fig6(&config);
            traces_for(&["q1", "q3", "q11a", "q12"], "Figure 8", &config);
            traces_for(&["q17a", "q18a", "q22a", "q4"], "Figure 9", &config);
            traces_for(&["axf", "mst", "psp", "vwap"], "Figure 10", &config);
            fig11(&config);
        }
        other => {
            eprintln!(
                "unknown command {other}; expected micro|serve|recover|batch|fig2|fig6|fig8|fig9|fig10|fig11|traces|all"
            );
            std::process::exit(2);
        }
    }

    // A tiny smoke check that keeps the harness honest: the workloads and families it
    // reports on must exist.
    debug_assert!(workloads::queries_of(Family::Finance).len() >= 6);
}
