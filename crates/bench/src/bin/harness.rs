//! The experiment harness: regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p dbtoaster-bench --bin harness -- all
//! cargo run --release -p dbtoaster-bench --bin harness -- fig6 --events 50000 --budget 10
//! cargo run --release -p dbtoaster-bench --bin harness -- fig8
//! ```
//!
//! Subcommands: `micro`, `serve`, `recover`, `batch`, `fig2`, `fig6` (also covers Figure 7),
//! `fig8`, `fig9`, `fig10`, `fig11`, `traces` (Figures 13–18), `explain`,
//! `export`, `all`.
//!
//! Flags: `--events N`, `--budget SECS`, `--seed N`, `--label NAME`,
//! `--json PATH`, and `--strategy entry|statement|auto` — which pins the
//! delta-batch dispatch via the `DBTOASTER_FORCE_BATCH_STRATEGY` environment
//! override (the batch twin of `DBTOASTER_FORCE_INTERPRETER`): `entry` is the
//! per-event oracle, `statement` the legacy pre-batch-delta dispatch, `auto`
//! the default batch-delta-where-derived choice.
//!
//! Observability:
//!
//! * `harness explain [--query NAME]` (or the `--explain` flag on any
//!   invocation) runs each workload stream and prints EXPLAIN ANALYZE for the
//!   compiled trigger program — operator trees, batch-dispatch decisions with
//!   reasons, and live counters; `--json PATH` writes the JSON forms.
//! * `harness export [--addr HOST:PORT] [--hold SECS]` opens a durable
//!   serving instance with the HTTP exporter enabled, ingests a finance
//!   stream while a 1 Hz scraper polls `/metrics`, reports throughput, then
//!   optionally holds the endpoints up for external scrapers (CI curls them).

use dbtoaster::prelude::*;
use dbtoaster::workloads::{self, Family};
use dbtoaster_bench::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    command: String,
    events: usize,
    budget: Duration,
    seed: u64,
    json: Option<String>,
    label: String,
    strategy: Option<String>,
    query: Option<String>,
    addr: String,
    hold: Duration,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        command: argv.first().cloned().unwrap_or_else(|| "all".to_string()),
        events: 20_000,
        budget: Duration::from_secs(5),
        seed: 42,
        json: None,
        label: "run".to_string(),
        strategy: None,
        query: None,
        addr: "127.0.0.1:0".to_string(),
        hold: Duration::from_secs(0),
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--events" => {
                args.events = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.events);
                i += 2;
            }
            "--budget" => {
                let secs: u64 = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(5);
                args.budget = Duration::from_secs(secs);
                i += 2;
            }
            "--seed" => {
                args.seed = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.seed);
                i += 2;
            }
            "--json" => {
                args.json = argv.get(i + 1).cloned();
                i += 2;
            }
            "--label" => {
                args.label = argv.get(i + 1).cloned().unwrap_or(args.label);
                i += 2;
            }
            "--strategy" => {
                args.strategy = argv.get(i + 1).cloned();
                i += 2;
            }
            "--query" => {
                args.query = argv.get(i + 1).cloned();
                i += 2;
            }
            "--addr" => {
                args.addr = argv.get(i + 1).cloned().unwrap_or(args.addr);
                i += 2;
            }
            "--hold" => {
                let secs: u64 = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(0);
                args.hold = Duration::from_secs(secs);
                i += 2;
            }
            "--explain" => {
                args.command = "explain".to_string();
                i += 1;
            }
            other => {
                eprintln!("ignoring unknown argument {other}");
                i += 1;
            }
        }
    }
    args
}

fn micro(config: &ExperimentConfig, label: &str, json: Option<&str>) {
    println!("=== micro: substrate operations and fig6 Higher-Order refresh rates ===");
    let results = micro_benchmarks(config);
    println!("{}", format_micro(&results));
    if let Some(path) = json {
        let payload = micro_json(label, config, &results);
        if bench_telemetry_off() {
            std::fs::write(path, &payload)
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote {path} (telemetry off: no latency blocks)");
        } else {
            // The fig6 runs carry telemetry percentiles; refuse to write a
            // JSON that lost them (CI greps for this line in the smoke run).
            let blocks = validate_latency_json(&payload)
                .unwrap_or_else(|e| panic!("micro JSON missing/invalid latency blocks: {e}"));
            std::fs::write(path, &payload)
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote {path} ({blocks} latency blocks validated)");
        }
    }
}

fn serve(config: &ExperimentConfig, label: &str, json: Option<&str>) {
    println!("=== serve: concurrent view serving (writer throughput, reads, fan-out) ===");
    let results = serve_benchmarks(config);
    println!("{}", format_micro(&results));
    if let Some(path) = json {
        let payload = micro_json(label, config, &results);
        std::fs::write(path, &payload).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("wrote {path}");
    }
}

fn recover(config: &ExperimentConfig, label: &str, json: Option<&str>) {
    println!("=== recover: durable serving (WAL throughput, checkpoint + replay rates) ===");
    let results = recover_benchmarks(config);
    println!("{}", format_micro(&results));
    if let Some(path) = json {
        let payload = micro_json(label, config, &results);
        std::fs::write(path, &payload).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("wrote {path}");
    }
}

fn batch(config: &ExperimentConfig, label: &str, json: Option<&str>) {
    println!("=== batch: delta-batch size sweep (events/sec at batch sizes 1/8/64/512) ===");
    let results = batch_benchmarks(config);
    println!("{}", format_micro(&results));
    if let Some(path) = json {
        let payload = micro_json(label, config, &results);
        if bench_telemetry_off() {
            std::fs::write(path, &payload)
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote {path} (telemetry off: no latency blocks)");
        } else {
            let blocks = validate_latency_json(&payload)
                .unwrap_or_else(|e| panic!("batch JSON missing/invalid latency blocks: {e}"));
            std::fs::write(path, &payload)
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote {path} ({blocks} latency blocks validated)");
        }
    }
}

fn fig2() {
    println!("=== Figure 2: workload features and rewrite rules applied ===");
    println!("{}", format_figure2(&figure2_rows()));
}

fn fig6(config: &ExperimentConfig) {
    println!("=== Figures 6 & 7: average view refresh rates (1/s) ===");
    println!(
        "(stream length {} events per query, {}s budget per run)\n",
        config.events,
        config.time_budget.as_secs()
    );
    let queries = workloads::all_queries();
    let rows = figure6_rows(config, &queries);
    println!("{}", format_figure6(&rows));
}

fn traces_for(queries: &[&str], label: &str, config: &ExperimentConfig) {
    println!("=== {label}: per-query traces (time, refresh rate, memory vs stream fraction) ===");
    for name in queries {
        let q = match workloads::query(name) {
            Some(q) => q,
            None => continue,
        };
        let data = dataset_for(q.family, config.events, config.seed);
        for mode in [CompileMode::HigherOrder, CompileMode::FirstOrder] {
            let pts = trace_series(&q, mode, &data, 10, config.time_budget);
            println!("{}", format_trace(name, mode, &pts));
        }
    }
}

fn fig11(config: &ExperimentConfig) {
    println!("=== Figure 11: refresh-rate scaling with stream length (DBToaster) ===");
    let rows = figure11_rows(
        config.events / 4,
        &[1, 2, 5, 10],
        config.seed,
        &["q1", "q3", "q6", "q11a", "q12", "q17a", "q18a"],
        config.time_budget,
    );
    println!("{}", format_figure11(&rows));
}

fn explain_cmd(config: &ExperimentConfig, only: Option<&str>, json: Option<&str>) {
    println!("=== explain: EXPLAIN ANALYZE for compiled trigger programs ===");
    println!(
        "(each query replayed over up to {} events / {}s before rendering)\n",
        config.events,
        config.time_budget.as_secs()
    );
    let mut docs = Vec::new();
    for q in workloads::all_queries() {
        if only.is_some_and(|want| want != q.name) {
            continue;
        }
        let data = dataset_for(q.family, config.events, config.seed);
        let mut engine = build_engine(&q, CompileMode::HigherOrder, &data);
        engine.set_telemetry(Telemetry::with_config(TelemetryConfig::default()));
        let start = Instant::now();
        let mut processed = 0usize;
        for event in &data.events {
            engine
                .process(event)
                .unwrap_or_else(|e| panic!("{}: {e}", q.name));
            processed += 1;
            if processed.is_multiple_of(64) && start.elapsed() > config.time_budget {
                break;
            }
        }
        println!("{}", engine.explain_text());
        docs.push(engine.explain_json());
    }
    if docs.is_empty() {
        eprintln!(
            "no workload query named {}",
            only.unwrap_or("<none requested>")
        );
        std::process::exit(2);
    }
    if let Some(path) = json {
        let payload = format!("[{}]", docs.join(","));
        std::fs::write(path, &payload).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("wrote {path} ({} explain documents)", docs.len());
    }
}

/// Minimal HTTP GET against the exporter (std-only, mirroring what a scraper
/// does): returns the raw response (status line + headers + body).
fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: dbtoaster\r\nConnection: close\r\n\r\n"
    )?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    Ok(out)
}

fn export(config: &ExperimentConfig, addr: &str, hold: Duration) {
    println!("=== export: durable serving behind the HTTP observability endpoints ===");
    let q = workloads::query("axf").expect("axf workload present");
    let data = dataset_for(q.family, config.events, config.seed);
    let catalog = workloads::full_catalog();
    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .mode(CompileMode::HigherOrder)
        .build()
        .unwrap_or_else(|e| panic!("{}: {e}", q.name));
    for (table, rows) in &data.tables {
        engine.load_table(table, rows.clone()).unwrap();
    }
    let dir = std::env::temp_dir().join(format!("dbtoaster-export-{}", std::process::id()));
    let server_config = ServerConfig {
        durability: Some(DurabilityConfig::new(dir.clone())),
        http: Some(HttpConfig {
            addr: addr.to_string(),
            ..HttpConfig::default()
        }),
        ..ServerConfig::default()
    };
    let server = engine
        .open_or_create_with(server_config)
        .unwrap_or_else(|e| panic!("export serve failed: {e}"));
    let http = server.http_addr().expect("exporter running");
    println!("exporter listening on http://{http}/ (endpoints: /metrics /healthz /views /explain /traces)");

    // A scraper polling /metrics at 1 Hz for the whole ingest run: the
    // throughput printed below carries whatever cost scraping imposes, so
    // comparing it against a scraper-free `serve` run (same events, same seed)
    // A/Bs the exporter's hot-path overhead on one machine.
    let stop = Arc::new(AtomicBool::new(false));
    let scrapes = Arc::new(AtomicU64::new(0));
    let scraper = {
        let stop = stop.clone();
        let scrapes = scrapes.clone();
        std::thread::spawn(move || {
            while !stop.load(Relaxed) {
                if http_get(http, "/metrics").is_ok() {
                    scrapes.fetch_add(1, Relaxed);
                }
                std::thread::sleep(Duration::from_secs(1));
            }
        })
    };

    let ingest = server.handle();
    let start = Instant::now();
    let mut sent = 0usize;
    for event in &data.events {
        ingest
            .send(event.clone())
            .unwrap_or_else(|e| panic!("ingest failed: {e}"));
        sent += 1;
        if sent.is_multiple_of(64) && start.elapsed() > config.time_budget {
            break;
        }
    }
    server
        .flush()
        .unwrap_or_else(|e| panic!("flush failed: {e}"));
    let secs = start.elapsed().as_secs_f64();
    println!(
        "ingested {sent} events in {secs:.2}s ({:.0} events/s) with {} scrape(s) of /metrics",
        sent as f64 / secs.max(1e-9),
        scrapes.load(Relaxed)
    );
    for path in ["/metrics", "/healthz", "/views", "/explain", "/traces"] {
        match http_get(http, path) {
            Ok(resp) => {
                let status = resp.lines().next().unwrap_or("").to_string();
                let body_len = resp.split("\r\n\r\n").nth(1).map_or(0, |b| b.len());
                println!("GET {path}: {status} ({body_len} body bytes)");
            }
            Err(e) => println!("GET {path}: error {e}"),
        }
    }
    if !hold.is_zero() {
        println!("holding endpoints up for {}s (scrape away)", hold.as_secs());
        std::thread::sleep(hold);
    }
    stop.store(true, Relaxed);
    let _ = scraper.join();
    drop(ingest);
    server
        .shutdown()
        .unwrap_or_else(|e| panic!("shutdown failed: {e}"));
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let args = parse_args();
    // `--strategy entry|statement|auto` pins the batch dispatch for every
    // engine the harness builds, through the same environment override a
    // deployment would use (`DBTOASTER_FORCE_BATCH_STRATEGY`, the batch
    // twin of `DBTOASTER_FORCE_INTERPRETER`). `auto` (or any unrecognised
    // value) keeps the compiler's dispatch: batch-delta where derived.
    if let Some(name) = &args.strategy {
        match dbtoaster::runtime::parse_batch_strategy(name) {
            Some(s) => println!("forcing batch strategy: {s}"),
            None => println!("batch strategy: automatic (batch-delta where derived)"),
        }
        std::env::set_var(dbtoaster::runtime::FORCE_BATCH_STRATEGY_ENV, name);
    }
    let config = ExperimentConfig {
        events: args.events,
        time_budget: args.budget,
        seed: args.seed,
    };

    match args.command.as_str() {
        "micro" => micro(&config, &args.label, args.json.as_deref()),
        "serve" => serve(&config, &args.label, args.json.as_deref()),
        "recover" => recover(&config, &args.label, args.json.as_deref()),
        "batch" => batch(&config, &args.label, args.json.as_deref()),
        "fig2" => fig2(),
        "fig6" | "fig7" => fig6(&config),
        "fig8" => traces_for(&["q1", "q3", "q11a", "q12"], "Figure 8", &config),
        "fig9" => traces_for(&["q17a", "q18a", "q22a", "q4"], "Figure 9", &config),
        "fig10" => traces_for(&["axf", "mst", "psp", "vwap"], "Figure 10", &config),
        "fig11" => fig11(&config),
        "explain" => explain_cmd(&config, args.query.as_deref(), args.json.as_deref()),
        "export" => export(&config, &args.addr, args.hold),
        "traces" => traces_for(
            &[
                "q1", "q3", "q4", "q5", "q6", "q10", "q11a", "q12", "q17a", "q18a", "q22a", "ssb4",
                "vwap", "axf", "bsp", "bsv", "mst", "psp", "mddb1",
            ],
            "Figures 13-18",
            &config,
        ),
        "all" => {
            fig2();
            fig6(&config);
            traces_for(&["q1", "q3", "q11a", "q12"], "Figure 8", &config);
            traces_for(&["q17a", "q18a", "q22a", "q4"], "Figure 9", &config);
            traces_for(&["axf", "mst", "psp", "vwap"], "Figure 10", &config);
            fig11(&config);
        }
        other => {
            eprintln!(
                "unknown command {other}; expected micro|serve|recover|batch|fig2|fig6|fig8|fig9|fig10|fig11|traces|explain|export|all"
            );
            std::process::exit(2);
        }
    }

    // A tiny smoke check that keeps the harness honest: the workloads and families it
    // reports on must exist.
    debug_assert!(workloads::queries_of(Family::Finance).len() >= 6);
}
