//! The experiment harness: regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p dbtoaster-bench --bin harness -- all
//! cargo run --release -p dbtoaster-bench --bin harness -- fig6 --events 50000 --budget 10
//! cargo run --release -p dbtoaster-bench --bin harness -- fig8
//! ```
//!
//! Subcommands: `micro`, `serve`, `recover`, `batch`, `shard`, `fig2`,
//! `fig6` (also covers Figure 7), `fig8`, `fig9`, `fig10`, `fig11`,
//! `traces` (Figures 13–18), `explain`, `export`, `all`.
//!
//! Flags: `--events N`, `--budget SECS`, `--seed N`, `--label NAME`,
//! `--json PATH`, `--shards 1,2,4,8` (the `shard` sweep's shard counts),
//! and `--strategy entry|statement|auto` — which pins the
//! delta-batch dispatch via the `DBTOASTER_FORCE_BATCH_STRATEGY` environment
//! override (the batch twin of `DBTOASTER_FORCE_INTERPRETER`): `entry` is the
//! per-event oracle, `statement` the legacy pre-batch-delta dispatch, `auto`
//! the default batch-delta-where-derived choice.
//!
//! Observability:
//!
//! * `harness explain [--query NAME]` (or the `--explain` flag on any
//!   invocation) runs each workload stream and prints EXPLAIN ANALYZE for the
//!   compiled trigger program — operator trees, batch-dispatch decisions with
//!   reasons, and live counters; `--json PATH` writes the JSON forms.
//! * `harness export [--addr HOST:PORT] [--hold SECS]` opens a durable
//!   serving instance with the HTTP exporter enabled, ingests a finance
//!   stream while a 1 Hz scraper polls `/metrics`, reports throughput, then
//!   optionally holds the endpoints up for external scrapers (CI curls them).

use dbtoaster::prelude::*;
use dbtoaster::workloads::{self, Family};
use dbtoaster_bench::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    command: String,
    events: usize,
    budget: Duration,
    seed: u64,
    json: Option<String>,
    label: String,
    strategy: Option<String>,
    query: Option<String>,
    addr: String,
    hold: Duration,
    iters: usize,
    shards: Vec<usize>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        command: argv.first().cloned().unwrap_or_else(|| "all".to_string()),
        events: 20_000,
        budget: Duration::from_secs(5),
        seed: 42,
        json: None,
        label: "run".to_string(),
        strategy: None,
        query: None,
        addr: "127.0.0.1:0".to_string(),
        hold: Duration::from_secs(0),
        iters: 200,
        shards: vec![1, 2, 4, 8],
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--events" => {
                args.events = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.events);
                i += 2;
            }
            "--budget" => {
                let secs: u64 = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(5);
                args.budget = Duration::from_secs(secs);
                i += 2;
            }
            "--seed" => {
                args.seed = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.seed);
                i += 2;
            }
            "--json" => {
                args.json = argv.get(i + 1).cloned();
                i += 2;
            }
            "--label" => {
                args.label = argv.get(i + 1).cloned().unwrap_or(args.label);
                i += 2;
            }
            "--strategy" => {
                args.strategy = argv.get(i + 1).cloned();
                i += 2;
            }
            "--query" => {
                args.query = argv.get(i + 1).cloned();
                i += 2;
            }
            "--addr" => {
                args.addr = argv.get(i + 1).cloned().unwrap_or(args.addr);
                i += 2;
            }
            "--hold" => {
                let secs: u64 = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(0);
                args.hold = Duration::from_secs(secs);
                i += 2;
            }
            "--iters" => {
                args.iters = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.iters);
                i += 2;
            }
            "--shards" => {
                if let Some(list) = argv.get(i + 1) {
                    let parsed: Vec<usize> = list
                        .split(',')
                        .filter_map(|v| v.trim().parse().ok())
                        .collect();
                    if !parsed.is_empty() {
                        args.shards = parsed;
                    }
                }
                i += 2;
            }
            "--explain" => {
                args.command = "explain".to_string();
                i += 1;
            }
            other => {
                eprintln!("ignoring unknown argument {other}");
                i += 1;
            }
        }
    }
    args
}

fn micro(config: &ExperimentConfig, label: &str, json: Option<&str>) {
    println!("=== micro: substrate operations and fig6 Higher-Order refresh rates ===");
    let results = micro_benchmarks(config);
    println!("{}", format_micro(&results));
    if let Some(path) = json {
        let payload = micro_json(label, config, &results);
        if bench_telemetry_off() {
            std::fs::write(path, &payload)
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote {path} (telemetry off: no latency blocks)");
        } else {
            // The fig6 runs carry telemetry percentiles; refuse to write a
            // JSON that lost them (CI greps for this line in the smoke run).
            let blocks = validate_latency_json(&payload)
                .unwrap_or_else(|e| panic!("micro JSON missing/invalid latency blocks: {e}"));
            std::fs::write(path, &payload)
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote {path} ({blocks} latency blocks validated)");
        }
    }
}

fn serve(config: &ExperimentConfig, label: &str, json: Option<&str>) {
    println!("=== serve: concurrent view serving (writer throughput, reads, fan-out) ===");
    let results = serve_benchmarks(config);
    println!("{}", format_micro(&results));
    if let Some(path) = json {
        let payload = micro_json(label, config, &results);
        std::fs::write(path, &payload).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("wrote {path}");
    }
}

fn recover(config: &ExperimentConfig, label: &str, json: Option<&str>) {
    println!("=== recover: durable serving (WAL throughput, checkpoint + replay rates) ===");
    let results = recover_benchmarks(config);
    println!("{}", format_micro(&results));
    if let Some(path) = json {
        let payload = micro_json(label, config, &results);
        std::fs::write(path, &payload).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("wrote {path}");
    }
}

fn batch(config: &ExperimentConfig, label: &str, json: Option<&str>) {
    println!("=== batch: delta-batch size sweep (events/sec at batch sizes 1/8/64/512) ===");
    let results = batch_benchmarks(config);
    println!("{}", format_micro(&results));
    if let Some(path) = json {
        let payload = micro_json(label, config, &results);
        if bench_telemetry_off() {
            std::fs::write(path, &payload)
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote {path} (telemetry off: no latency blocks)");
        } else {
            let blocks = validate_latency_json(&payload)
                .unwrap_or_else(|e| panic!("batch JSON missing/invalid latency blocks: {e}"));
            std::fs::write(path, &payload)
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote {path} ({blocks} latency blocks validated)");
        }
    }
}

fn shard(config: &ExperimentConfig, counts: &[usize], label: &str, json: Option<&str>) {
    println!("=== shard: shard-parallel engine sweep (scatter + local triggers + merge) ===");
    println!(
        "(queries {:?}, shard counts {counts:?}, {} events, {}s budget per run)\n",
        SHARD_QUERIES,
        config.events,
        config.time_budget.as_secs()
    );
    let sweep = shard_sweep(config, counts);
    println!("{}", format_micro(&sweep.results));
    println!("query      shards  plan       exchange-bytes  bit-exact");
    for r in &sweep.rows {
        println!(
            "{:<10} {:>6}  {:<9} {:>15}  {}",
            r.query,
            r.shards,
            if r.fully_local { "local" } else { "exchange" },
            r.exchange_bytes,
            r.bit_exact
        );
    }
    // `shard_sweep` panics on any divergence, so reaching this line IS the
    // invariance proof; CI greps for it.
    println!("{}", shard_invariance_line(&sweep));
    if let Some(path) = json {
        let payload = shard_json(label, config, &sweep);
        std::fs::write(path, &payload).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("wrote {path}");
    }
}

fn fig2() {
    println!("=== Figure 2: workload features and rewrite rules applied ===");
    println!("{}", format_figure2(&figure2_rows()));
}

fn fig6(config: &ExperimentConfig) {
    println!("=== Figures 6 & 7: average view refresh rates (1/s) ===");
    println!(
        "(stream length {} events per query, {}s budget per run)\n",
        config.events,
        config.time_budget.as_secs()
    );
    let queries = workloads::all_queries();
    let rows = figure6_rows(config, &queries);
    println!("{}", format_figure6(&rows));
}

fn traces_for(queries: &[&str], label: &str, config: &ExperimentConfig) {
    println!("=== {label}: per-query traces (time, refresh rate, memory vs stream fraction) ===");
    for name in queries {
        let q = match workloads::query(name) {
            Some(q) => q,
            None => continue,
        };
        let data = dataset_for(q.family, config.events, config.seed);
        for mode in [CompileMode::HigherOrder, CompileMode::FirstOrder] {
            let pts = trace_series(&q, mode, &data, 10, config.time_budget);
            println!("{}", format_trace(name, mode, &pts));
        }
    }
}

fn fig11(config: &ExperimentConfig) {
    println!("=== Figure 11: refresh-rate scaling with stream length (DBToaster) ===");
    let rows = figure11_rows(
        config.events / 4,
        &[1, 2, 5, 10],
        config.seed,
        &["q1", "q3", "q6", "q11a", "q12", "q17a", "q18a"],
        config.time_budget,
    );
    println!("{}", format_figure11(&rows));
}

fn explain_cmd(config: &ExperimentConfig, only: Option<&str>, json: Option<&str>) {
    println!("=== explain: EXPLAIN ANALYZE for compiled trigger programs ===");
    println!(
        "(each query replayed over up to {} events / {}s before rendering)\n",
        config.events,
        config.time_budget.as_secs()
    );
    let mut docs = Vec::new();
    for q in workloads::all_queries() {
        if only.is_some_and(|want| want != q.name) {
            continue;
        }
        let data = dataset_for(q.family, config.events, config.seed);
        let mut engine = build_engine(&q, CompileMode::HigherOrder, &data);
        engine.set_telemetry(Telemetry::with_config(TelemetryConfig::default()));
        let start = Instant::now();
        let mut processed = 0usize;
        for event in &data.events {
            engine
                .process(event)
                .unwrap_or_else(|e| panic!("{}: {e}", q.name));
            processed += 1;
            if processed.is_multiple_of(64) && start.elapsed() > config.time_budget {
                break;
            }
        }
        println!("{}", engine.explain_text());
        docs.push(engine.explain_json());
    }
    if docs.is_empty() {
        eprintln!(
            "no workload query named {}",
            only.unwrap_or("<none requested>")
        );
        std::process::exit(2);
    }
    if let Some(path) = json {
        let payload = format!("[{}]", docs.join(","));
        std::fs::write(path, &payload).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("wrote {path} ({} explain documents)", docs.len());
    }
}

/// Minimal HTTP GET against the exporter (std-only, mirroring what a scraper
/// does): returns the raw response (status line + headers + body).
fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: dbtoaster\r\nConnection: close\r\n\r\n"
    )?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    Ok(out)
}

fn export(config: &ExperimentConfig, addr: &str, hold: Duration) {
    println!("=== export: durable serving behind the HTTP observability endpoints ===");
    let q = workloads::query("axf").expect("axf workload present");
    let data = dataset_for(q.family, config.events, config.seed);
    let catalog = workloads::full_catalog();
    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .mode(CompileMode::HigherOrder)
        .build()
        .unwrap_or_else(|e| panic!("{}: {e}", q.name));
    for (table, rows) in &data.tables {
        engine.load_table(table, rows.clone()).unwrap();
    }
    let dir = std::env::temp_dir().join(format!("dbtoaster-export-{}", std::process::id()));
    let server_config = ServerConfig {
        durability: Some(DurabilityConfig::new(dir.clone())),
        http: Some(HttpConfig {
            addr: addr.to_string(),
            ..HttpConfig::default()
        }),
        ..ServerConfig::default()
    };
    let server = engine
        .open_or_create_with(server_config)
        .unwrap_or_else(|e| panic!("export serve failed: {e}"));
    let http = server.http_addr().expect("exporter running");
    println!("exporter listening on http://{http}/ (endpoints: /metrics /healthz /views /explain /traces)");

    // A scraper polling /metrics at 1 Hz for the whole ingest run: the
    // throughput printed below carries whatever cost scraping imposes, so
    // comparing it against a scraper-free `serve` run (same events, same seed)
    // A/Bs the exporter's hot-path overhead on one machine.
    let stop = Arc::new(AtomicBool::new(false));
    let scrapes = Arc::new(AtomicU64::new(0));
    let scraper = {
        let stop = stop.clone();
        let scrapes = scrapes.clone();
        std::thread::spawn(move || {
            while !stop.load(Relaxed) {
                if http_get(http, "/metrics").is_ok() {
                    scrapes.fetch_add(1, Relaxed);
                }
                std::thread::sleep(Duration::from_secs(1));
            }
        })
    };

    let ingest = server.handle();
    let start = Instant::now();
    let mut sent = 0usize;
    for event in &data.events {
        ingest
            .send(event.clone())
            .unwrap_or_else(|e| panic!("ingest failed: {e}"));
        sent += 1;
        if sent.is_multiple_of(64) && start.elapsed() > config.time_budget {
            break;
        }
    }
    server
        .flush()
        .unwrap_or_else(|e| panic!("flush failed: {e}"));
    let secs = start.elapsed().as_secs_f64();
    println!(
        "ingested {sent} events in {secs:.2}s ({:.0} events/s) with {} scrape(s) of /metrics",
        sent as f64 / secs.max(1e-9),
        scrapes.load(Relaxed)
    );
    for path in ["/metrics", "/healthz", "/views", "/explain", "/traces"] {
        match http_get(http, path) {
            Ok(resp) => {
                let status = resp.lines().next().unwrap_or("").to_string();
                let body_len = resp.split("\r\n\r\n").nth(1).map_or(0, |b| b.len());
                println!("GET {path}: {status} ({body_len} body bytes)");
            }
            Err(e) => println!("GET {path}: error {e}"),
        }
    }
    if !hold.is_zero() {
        println!("holding endpoints up for {}s (scrape away)", hold.as_secs());
        std::thread::sleep(hold);
    }
    stop.store(true, Relaxed);
    let _ = scraper.join();
    drop(ingest);
    server
        .shutdown()
        .unwrap_or_else(|e| panic!("shutdown failed: {e}"));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// torture: crash-consistency harness (seeded fault schedules × power cuts)
// ---------------------------------------------------------------------------

/// The same splitmix64 the fault injector uses: every knob of an iteration is
/// derived from `--seed` + the iteration index, so any failure reproduces
/// from the printed pair alone.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn torture_catalog() -> SqlCatalog {
    [
        TableDef::stream("Orders", ["ordk", "ck", "xch"]),
        TableDef::stream("Lineitem", ["ordk", "price"]),
    ]
    .into_iter()
    .collect()
}

/// A deterministic mixed insert/delete stream over both relations.
fn torture_events(seed: u64, n: usize) -> Vec<UpdateEvent> {
    let mut rng = seed ^ 0xA5A5_5A5A_DEAD_BEEF;
    let mut out = Vec::with_capacity(n);
    let mut live_items: Vec<(i64, i64)> = Vec::new();
    let mut next_order = 0i64;
    for _ in 0..n {
        match splitmix64(&mut rng) % 10 {
            0..=2 => {
                out.push(UpdateEvent::insert(
                    "Orders",
                    vec![
                        Value::long(next_order),
                        Value::long(next_order % 23),
                        Value::double((next_order % 5) as f64 + 0.5),
                    ],
                ));
                next_order += 1;
            }
            3..=8 => {
                let ordk = (splitmix64(&mut rng) % next_order.max(1) as u64) as i64;
                let price = 1 + (splitmix64(&mut rng) % 999) as i64;
                live_items.push((ordk, price));
                out.push(UpdateEvent::insert(
                    "Lineitem",
                    vec![Value::long(ordk), Value::double(price as f64)],
                ));
            }
            _ if !live_items.is_empty() => {
                let pick = (splitmix64(&mut rng) % live_items.len() as u64) as usize;
                let (ordk, price) = live_items.swap_remove(pick);
                out.push(UpdateEvent::delete(
                    "Lineitem",
                    vec![Value::long(ordk), Value::double(price as f64)],
                ));
            }
            _ => out.push(UpdateEvent::insert(
                "Lineitem",
                vec![Value::long(0), Value::double(1.0)],
            )),
        }
    }
    out
}

#[derive(Default)]
struct TortureTotals {
    faults: u64,
    cuts: u64,
    recoveries_verified: u64,
    loud_errors: u64,
    recovery_nanos: u128,
    recoveries_timed: u64,
}

enum AppendOutcome {
    /// Append + batch-boundary sync both landed: the chunk is durable.
    Durable,
    /// A fault survived the bounded retries (or made retrying unsafe).
    Degraded,
    /// The simulated power went out mid-operation.
    Cut,
}

/// The torture twin of the server's armed-append path: bounded in-place
/// retries with boundary truncation first, and a failed sync NEVER retried
/// in place (fsyncgate).
fn torture_append(
    wal: &mut dbtoaster::durability::WalWriter,
    chunk: &[UpdateEvent],
    fault: &dbtoaster::durability::FaultVfs,
) -> AppendOutcome {
    let mut attempts = 0u32;
    loop {
        match wal.append(chunk) {
            Ok(_) => break,
            Err(_) if fault.power_cut() => return AppendOutcome::Cut,
            Err(_) if attempts < 3 => {
                attempts += 1;
                if wal.truncate_to_boundary().is_err() {
                    return if fault.power_cut() {
                        AppendOutcome::Cut
                    } else {
                        AppendOutcome::Degraded
                    };
                }
            }
            Err(_) => return AppendOutcome::Degraded,
        }
    }
    match wal.batch_boundary() {
        Ok(()) => AppendOutcome::Durable,
        Err(_) if fault.power_cut() => AppendOutcome::Cut,
        Err(_) => AppendOutcome::Degraded,
    }
}

/// One seeded iteration: drive a mini durable pipeline (chunked appends,
/// periodic checkpoints, degraded-mode re-arms) through a `FaultVfs`, then
/// recover — from the materialized power-cut image or from the survived
/// directory — and require the result to be a sync-consistent prefix of the
/// reference stream, **bit for bit**. Panics (with the reproducing seed) on
/// any silent divergence; recovery returning an error is counted loud.
#[allow(clippy::too_many_arguments)]
fn torture_iteration(
    i: u64,
    base_seed: u64,
    base: &std::path::Path,
    program: &dbtoaster::compiler::TriggerProgram,
    ccat: &dbtoaster::compiler::Catalog,
    fp: u64,
    totals: &mut TortureTotals,
) {
    use dbtoaster::agca::DeltaBatch;
    use dbtoaster::durability::{checkpoint, FaultConfig, FaultVfs, Vfs, WalWriter};
    use dbtoaster::runtime::Engine;

    let mut knob = base_seed ^ i.wrapping_mul(0x2545_F491_4F6C_DD1D);
    let total_events = 200 + (splitmix64(&mut knob) % 400) as usize;
    let stream_seed = splitmix64(&mut knob);
    let chunk_seed = splitmix64(&mut knob);
    // ~70% of iterations end in a power cut somewhere inside the run; the
    // rest exercise fault schedules with a surviving directory.
    let cut_planned = splitmix64(&mut knob) % 10 < 7;
    let cut_at_op = 20 + splitmix64(&mut knob) % 380;
    let fault = Arc::new(FaultVfs::new(FaultConfig {
        seed: splitmix64(&mut knob),
        fail_prob_ppm: 15_000,
        enospc_prob_ppm: 6_000,
        short_write_prob_ppm: 10_000,
        cut_at_op: cut_planned.then_some(cut_at_op),
    }));
    let vfs: Arc<dyn Vfs> = Arc::new(fault.clone());
    let repro = format!("iteration {i} (--seed {base_seed})");

    let live_dir = base.join(format!("it{i}"));
    let cut_dir = base.join(format!("it{i}-cut"));
    let _ = std::fs::remove_dir_all(&live_dir);
    let _ = std::fs::remove_dir_all(&cut_dir);
    std::fs::create_dir_all(&live_dir).unwrap();

    let stream = torture_events(stream_seed, total_events);

    // --- Live phase: chunked write-ahead pipeline under fault injection ----
    enum Health {
        Armed,
        Degraded,
        Dead,
    }
    let mut live = Engine::new(program.clone(), ccat);
    let mut applied = 0u64;
    // The durable floor: a watermark recovery must reach (None = nothing was
    // ever guaranteed synced; recovery may legitimately find no state).
    let mut floor: Option<u64> = None;
    let mut delta = DeltaBatch::new();

    let snap0 = live.snapshot();
    let setup = checkpoint::write_checkpoint_with(
        vfs.as_ref(),
        &live_dir,
        fp,
        0,
        snap0.iter().map(|(n, g)| (n.as_str(), g)),
    )
    .and_then(|_| {
        WalWriter::open_with(&live_dir, fp, 1, FsyncPolicy::EveryBatch, 512, vfs.clone())
    });
    let (mut wal, mut health) = match setup {
        Ok(w) => {
            floor = Some(0);
            (Some(w), Health::Armed)
        }
        // A fault before anything was guaranteed durable: run the stream
        // undurably and let verification accept an empty recovery.
        Err(_) => (None, Health::Dead),
    };

    let mut cut_fired = fault.power_cut();
    let mut chunk_rng = chunk_seed ^ 0xD1B5_4A32_D192_ED03;
    let mut since_ckpt = 0u64;
    let mut rearms = 0u32;
    let mut idx = 0usize;
    while idx < stream.len() && !cut_fired {
        let n = (1 + splitmix64(&mut chunk_rng) % 16) as usize;
        let chunk = &stream[idx..(idx + n).min(stream.len())];
        idx += chunk.len();

        let mut chunk_durable = false;
        match health {
            Health::Armed => {
                let w = wal.as_mut().expect("armed implies an open wal");
                match torture_append(w, chunk, &fault) {
                    AppendOutcome::Durable => chunk_durable = true,
                    AppendOutcome::Degraded => health = Health::Degraded,
                    AppendOutcome::Cut => {
                        cut_fired = true;
                        break;
                    }
                }
            }
            Health::Degraded => {
                // Re-arm: checkpoint current state FIRST (it covers every
                // event applied undurably while degraded), then resume the
                // log on a fresh segment right above it.
                rearms += 1;
                let snap = live.snapshot();
                let res = checkpoint::write_checkpoint_with(
                    vfs.as_ref(),
                    &live_dir,
                    fp,
                    applied,
                    snap.iter().map(|(n, g)| (n.as_str(), g)),
                )
                .and_then(|_| wal.as_mut().expect("wal present").rearm(applied + 1));
                if fault.power_cut() {
                    cut_fired = true;
                    break;
                }
                match res {
                    Ok(()) => {
                        floor = Some(floor.unwrap_or(0).max(applied));
                        health = Health::Armed;
                        since_ckpt = 0;
                        match torture_append(wal.as_mut().unwrap(), chunk, &fault) {
                            AppendOutcome::Durable => chunk_durable = true,
                            AppendOutcome::Degraded => health = Health::Degraded,
                            AppendOutcome::Cut => {
                                cut_fired = true;
                                break;
                            }
                        }
                    }
                    Err(_) if rearms >= 50 => health = Health::Dead,
                    Err(_) => {}
                }
            }
            Health::Dead => {}
        }

        // Apply the chunk regardless (server semantics: degraded mode serves
        // from memory; a later re-arm's checkpoint recaptures it).
        delta.clear();
        for ev in chunk {
            delta.push(ev);
        }
        live.process_batch(&delta);
        applied += chunk.len() as u64;
        if chunk_durable {
            floor = Some(floor.unwrap_or(0).max(applied));
        }

        since_ckpt += chunk.len() as u64;
        if matches!(health, Health::Armed) && since_ckpt >= 100 {
            since_ckpt = 0;
            let snap = live.snapshot();
            let res = checkpoint::write_checkpoint_with(
                vfs.as_ref(),
                &live_dir,
                fp,
                applied,
                snap.iter().map(|(n, g)| (n.as_str(), g)),
            );
            if fault.power_cut() {
                cut_fired = true;
                break;
            }
            if res.is_ok() {
                floor = Some(floor.unwrap_or(0).max(applied));
            }
        }
    }

    // A clean end of stream still syncs what it can (mirroring shutdown).
    if !cut_fired {
        if let (Health::Armed, Some(w)) = (&health, wal.as_mut()) {
            if w.sync().is_ok() {
                floor = Some(floor.unwrap_or(0).max(applied));
            }
            cut_fired = fault.power_cut();
        }
    }

    // --- Recovery phase ----------------------------------------------------
    let recover_dir = if cut_fired {
        totals.cuts += 1;
        fault
            .materialize_cut(&cut_dir)
            .unwrap_or_else(|e| panic!("{repro}: materialize_cut failed: {e}"));
        cut_dir.clone()
    } else {
        live_dir.clone()
    };
    totals.faults += fault.faults_injected();
    drop(wal); // release the directory lock before recovering

    let t0 = Instant::now();
    match dbtoaster::durability::recover(&recover_dir, program.clone(), ccat) {
        Err(_) => {
            // Loud by construction: recovery refused the directory instead of
            // serving made-up state. Acceptable; never silent.
            totals.loud_errors += 1;
        }
        Ok(None) => {
            if floor.is_some() {
                panic!("{repro}: durable state vanished silently (floor {floor:?}, found none)");
            }
            totals.recoveries_verified += 1;
        }
        Ok(Some(rec)) => {
            totals.recovery_nanos += t0.elapsed().as_nanos();
            totals.recoveries_timed += 1;
            let w = rec.engine.stats().events;
            if let Some(f) = floor {
                assert!(
                    w >= f,
                    "{repro}: recovered watermark {w} below the durable floor {f}"
                );
            }
            assert!(
                w as usize <= stream.len(),
                "{repro}: recovered watermark {w} beyond the {} events ever generated",
                stream.len()
            );
            assert_eq!(
                rec.failed_events, 0,
                "{repro}: replay reported poison events in a clean stream"
            );
            // Bit-exact prefix check: replay the reference with the SAME
            // chunk boundaries (recovery rebuilds one delta batch per WAL
            // record, and records == live chunks).
            let mut reference = Engine::new(program.clone(), ccat);
            let mut rng = chunk_seed ^ 0xD1B5_4A32_D192_ED03;
            let mut at = 0usize;
            while at < w as usize {
                let n = (1 + splitmix64(&mut rng) % 16) as usize;
                let end = (at + n).min(stream.len()).min(w as usize);
                assert!(
                    end > at,
                    "{repro}: watermark {w} does not land on a chunk boundary"
                );
                delta.clear();
                for ev in &stream[at..end] {
                    delta.push(ev);
                }
                reference.process_batch(&delta);
                at = end;
            }
            let got = rec.engine.snapshot();
            let want = reference.snapshot();
            assert_eq!(
                got.len(),
                want.len(),
                "{repro}: recovered map count diverges at watermark {w}"
            );
            for (name, g) in want.iter() {
                let r = got
                    .get(name)
                    .unwrap_or_else(|| panic!("{repro}: recovered state lacks map {name}"));
                assert_eq!(
                    r.len(),
                    g.len(),
                    "{repro}: map {name} sizes diverge at watermark {w}"
                );
                for (t, m) in g.iter() {
                    assert_eq!(
                        r.get(t).to_bits(),
                        m.to_bits(),
                        "{repro}: {name}[{t:?}] diverges at watermark {w}"
                    );
                }
            }
            totals.recoveries_verified += 1;
        }
    }
    let _ = std::fs::remove_dir_all(&live_dir);
    let _ = std::fs::remove_dir_all(&cut_dir);
}

fn torture(iters: usize, base_seed: u64, label: &str, json: Option<&str>) {
    println!("=== torture: seeded fault schedules × power cuts vs crash recovery ===");
    println!("({iters} iterations, base seed {base_seed}; every divergence is fatal)\n");
    let catalog = torture_catalog();
    let program = QueryEngineBuilder::new(catalog.clone())
        .add_query(
            "revenue",
            "SELECT o.ck, SUM(li.price * o.xch) AS total \
             FROM Orders o, Lineitem li WHERE o.ordk = li.ordk GROUP BY o.ck",
        )
        .mode(CompileMode::HigherOrder)
        .build()
        .expect("torture program compiles")
        .program()
        .clone();
    let ccat = dbtoaster::to_compiler_catalog(&catalog);
    let fp = dbtoaster::durability::program_fingerprint(&program);
    let base = std::env::temp_dir().join(format!("dbt-torture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    let mut totals = TortureTotals::default();
    let started = Instant::now();
    for i in 0..iters {
        torture_iteration(i as u64, base_seed, &base, &program, &ccat, fp, &mut totals);
    }
    let _ = std::fs::remove_dir_all(&base);

    let mean_ms = if totals.recoveries_timed > 0 {
        totals.recovery_nanos as f64 / totals.recoveries_timed as f64 / 1e6
    } else {
        0.0
    };
    println!(
        "torture: {iters} iterations, {} faults injected, {} power cuts, \
         {} recoveries verified, {} loud errors, 0 silent divergences \
         (mean recovery {mean_ms:.2} ms, total {:.1}s)",
        totals.faults,
        totals.cuts,
        totals.recoveries_verified,
        totals.loud_errors,
        started.elapsed().as_secs_f64(),
    );
    if let Some(path) = json {
        let payload = format!(
            "{{\"label\":\"{label}\",\"seed\":{base_seed},\"iterations\":{iters},\
             \"faults_injected\":{},\"power_cuts\":{},\"recoveries_verified\":{},\
             \"loud_errors\":{},\"silent_divergences\":0,\"mean_recovery_ms\":{mean_ms:.3}}}",
            totals.faults, totals.cuts, totals.recoveries_verified, totals.loud_errors,
        );
        std::fs::write(path, &payload).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("wrote {path}");
    }
}

fn main() {
    let args = parse_args();
    // `--strategy entry|statement|auto` pins the batch dispatch for every
    // engine the harness builds, through the same environment override a
    // deployment would use (`DBTOASTER_FORCE_BATCH_STRATEGY`, the batch
    // twin of `DBTOASTER_FORCE_INTERPRETER`). `auto` (or any unrecognised
    // value) keeps the compiler's dispatch: batch-delta where derived.
    if let Some(name) = &args.strategy {
        match dbtoaster::runtime::parse_batch_strategy(name) {
            Some(s) => println!("forcing batch strategy: {s}"),
            None => println!("batch strategy: automatic (batch-delta where derived)"),
        }
        std::env::set_var(dbtoaster::runtime::FORCE_BATCH_STRATEGY_ENV, name);
    }
    let config = ExperimentConfig {
        events: args.events,
        time_budget: args.budget,
        seed: args.seed,
    };

    match args.command.as_str() {
        "micro" => micro(&config, &args.label, args.json.as_deref()),
        "serve" => serve(&config, &args.label, args.json.as_deref()),
        "recover" => recover(&config, &args.label, args.json.as_deref()),
        "batch" => batch(&config, &args.label, args.json.as_deref()),
        "shard" => shard(&config, &args.shards, &args.label, args.json.as_deref()),
        "fig2" => fig2(),
        "fig6" | "fig7" => fig6(&config),
        "fig8" => traces_for(&["q1", "q3", "q11a", "q12"], "Figure 8", &config),
        "fig9" => traces_for(&["q17a", "q18a", "q22a", "q4"], "Figure 9", &config),
        "fig10" => traces_for(&["axf", "mst", "psp", "vwap"], "Figure 10", &config),
        "fig11" => fig11(&config),
        "explain" => explain_cmd(&config, args.query.as_deref(), args.json.as_deref()),
        "export" => export(&config, &args.addr, args.hold),
        "torture" => torture(args.iters, args.seed, &args.label, args.json.as_deref()),
        "traces" => traces_for(
            &[
                "q1", "q3", "q4", "q5", "q6", "q10", "q11a", "q12", "q17a", "q18a", "q22a", "ssb4",
                "vwap", "axf", "bsp", "bsv", "mst", "psp", "mddb1",
            ],
            "Figures 13-18",
            &config,
        ),
        "all" => {
            fig2();
            fig6(&config);
            traces_for(&["q1", "q3", "q11a", "q12"], "Figure 8", &config);
            traces_for(&["q17a", "q18a", "q22a", "q4"], "Figure 9", &config);
            traces_for(&["axf", "mst", "psp", "vwap"], "Figure 10", &config);
            fig11(&config);
        }
        other => {
            eprintln!(
                "unknown command {other}; expected micro|serve|recover|batch|shard|fig2|fig6|fig8|fig9|fig10|fig11|traces|explain|export|torture|all"
            );
            std::process::exit(2);
        }
    }

    // A tiny smoke check that keeps the harness honest: the workloads and families it
    // reports on must exist.
    debug_assert!(workloads::queries_of(Family::Finance).len() >= 6);
}
