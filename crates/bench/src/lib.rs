//! Shared infrastructure for the benchmark harness and the Criterion benches.
//!
//! Every experiment of the paper's evaluation (Section 9) is regenerated through the
//! functions in this crate:
//!
//! | paper artifact | function | harness subcommand |
//! |---|---|---|
//! | Figure 2 (workload features & rules) | [`figure2_rows`] | `harness fig2` |
//! | Figures 6 & 7 (refresh rates, all queries × strategies) | [`figure6_rows`] | `harness fig6` |
//! | Figures 8–10, 13–18 (per-query traces) | [`trace_series`] | `harness fig8` / `fig9` / `fig10` / `traces` |
//! | Figure 11 (stream-length scaling) | [`figure11_rows`] | `harness fig11` |
//! | Figure 12 (compilation flags) | documented in EXPERIMENTS.md | — |
//!
//! The absolute numbers differ from the paper (interpreted statements on different
//! hardware rather than compiled C++ on a 2009 Xeon), but the *shape* — which strategy
//! wins, by how many orders of magnitude, and how it evolves along the stream — is the
//! reproduction target.

use dbtoaster::prelude::*;
use dbtoaster::workloads::{self, Family, WorkloadQuery};
use std::time::{Duration, Instant};

/// Which compilation strategies a figure compares.
pub const STRATEGIES: &[CompileMode] = &[
    CompileMode::Reevaluate,
    CompileMode::FirstOrder,
    CompileMode::NaiveViewlet,
    CompileMode::HigherOrder,
];

/// Experiment sizing knobs (scaled-down defaults keep `cargo bench` tractable).
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Stream length per query for the refresh-rate experiments.
    pub events: usize,
    /// Wall-clock budget per (query, strategy) run; slower strategies stop early, like
    /// the paper's two-hour timeout.
    pub time_budget: Duration,
    /// Random seed for the generators.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            events: 20_000,
            time_budget: Duration::from_secs(5),
            seed: 42,
        }
    }
}

/// Result of replaying a stream against one compiled query.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Query name.
    pub query: String,
    /// Compilation strategy.
    pub mode: CompileMode,
    /// Events actually processed before the budget ran out.
    pub processed: usize,
    /// Events available in the stream.
    pub total: usize,
    /// Average view refreshes per second.
    pub refresh_rate: f64,
    /// Final approximate memory footprint (MB).
    pub memory_mb: f64,
    /// Processing time in seconds.
    pub elapsed: f64,
    /// Per-batch latency percentiles from the run's telemetry handle (each
    /// `process` call is a batch of one, so for the per-event figures these
    /// are per-event latencies).
    pub latency: Option<HistogramSummary>,
}

/// A point of a trace figure (Figures 8–10 and 13–18).
#[derive(Clone, Debug)]
pub struct TracePoint {
    /// Fraction of the stream processed.
    pub fraction: f64,
    /// Cumulative processing time (minutes, as in the paper's upper panels).
    pub time_minutes: f64,
    /// Average refresh rate so far (1/s).
    pub refresh_rate: f64,
    /// Approximate memory (MB).
    pub memory_mb: f64,
}

/// Generate the dataset appropriate for a query's family.
pub fn dataset_for(family: Family, events: usize, seed: u64) -> workloads::Dataset {
    match family {
        Family::Tpch => {
            let scale = (events as f64 / 2_000_000.0).clamp(0.0005, 10.0);
            let mut d =
                workloads::tpch::generate(&workloads::TpchConfig::scaled(scale.max(0.002), seed));
            d.truncate(events);
            d
        }
        Family::Finance => workloads::finance::generate(&workloads::FinanceConfig {
            events,
            seed,
            ..Default::default()
        }),
        Family::Scientific => {
            let atoms = 60;
            let steps = (events / atoms).max(2);
            let mut d = workloads::mddb::generate(&workloads::MddbConfig { atoms, steps, seed });
            d.truncate(events);
            d
        }
    }
}

/// Build a ready-to-run engine (static tables loaded) for one query and strategy.
pub fn build_engine(
    q: &WorkloadQuery,
    mode: CompileMode,
    data: &workloads::Dataset,
) -> QueryEngine {
    build_engine_opts(q, mode, data, false)
}

/// [`build_engine`] with an explicit execution-path choice: `force_interpreter`
/// bypasses compiled trigger kernels so the AST-interpreter baseline stays
/// measurable after the compiled path became the default.
pub fn build_engine_opts(
    q: &WorkloadQuery,
    mode: CompileMode,
    data: &workloads::Dataset,
    force_interpreter: bool,
) -> QueryEngine {
    let catalog = workloads::full_catalog();
    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .mode(mode)
        .build()
        .unwrap_or_else(|e| panic!("{} [{mode}]: {e}", q.name));
    engine.set_force_interpreter(force_interpreter);
    for (table, rows) in &data.tables {
        engine.load_table(table, rows.clone()).unwrap();
    }
    engine.init().unwrap();
    engine
}

/// Replay a stream against one query under one strategy, honouring a time budget.
pub fn run_stream(
    q: &WorkloadQuery,
    mode: CompileMode,
    data: &workloads::Dataset,
    budget: Duration,
) -> RunStats {
    run_stream_opts(q, mode, data, budget, false)
}

/// [`run_stream`] with an explicit execution-path choice (see
/// [`build_engine_opts`]).
pub fn run_stream_opts(
    q: &WorkloadQuery,
    mode: CompileMode,
    data: &workloads::Dataset,
    budget: Duration,
    force_interpreter: bool,
) -> RunStats {
    let mut engine = build_engine_opts(q, mode, data, force_interpreter);
    // Measure with telemetry ENABLED: the published figures carry its (small)
    // cost, and the latency percentiles come from the same run. Slow-batch
    // tracing is parked with an unreachable threshold so no trace ever
    // assembles mid-measurement. `DBTOASTER_BENCH_TELEMETRY=off` swaps in a
    // disabled handle for A/B-ing the instrumentation cost on one machine.
    let tel = bench_telemetry();
    engine.set_telemetry(tel.clone());
    let start = Instant::now();
    let mut processed = 0usize;
    for event in &data.events {
        engine
            .process(event)
            .unwrap_or_else(|e| panic!("{} [{mode}]: {e}", q.name));
        processed += 1;
        // Check the budget every 64 events to keep the overhead negligible.
        if processed.is_multiple_of(64) && start.elapsed() > budget {
            break;
        }
    }
    engine.flush_telemetry();
    let snap = tel.snapshot();
    // The reported operation count is the telemetry/engine event counter, not
    // the loop's own tally: throughput math and `stats()` draw from one
    // source and can never disagree.
    debug_assert!(!snap.enabled || snap.events == processed as u64);
    let stats = engine.stats();
    RunStats {
        query: q.name.to_string(),
        mode,
        processed: if snap.enabled {
            snap.events as usize
        } else {
            processed
        },
        total: data.events.len(),
        refresh_rate: stats.refresh_rate(),
        memory_mb: engine.memory_bytes() as f64 / (1024.0 * 1024.0),
        elapsed: stats.busy.as_secs_f64(),
        latency: snap.enabled.then_some(snap.batch_latency),
    }
}

/// The telemetry handle benchmark runs attach: enabled by default (published
/// figures carry the instrumentation cost), disabled when
/// `DBTOASTER_BENCH_TELEMETRY=off` — the switch behind same-machine A/B
/// measurements of telemetry overhead.
fn bench_telemetry() -> Telemetry {
    if bench_telemetry_off() {
        Telemetry::disabled()
    } else {
        Telemetry::with_config(TelemetryConfig {
            slow_batch_threshold: Duration::from_secs(3600),
            ..TelemetryConfig::default()
        })
    }
}

/// True when `DBTOASTER_BENCH_TELEMETRY=off` requests uninstrumented runs.
pub fn bench_telemetry_off() -> bool {
    std::env::var("DBTOASTER_BENCH_TELEMETRY").is_ok_and(|v| v == "off")
}

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

/// One row of Figure 2: query features and the rewrite rules its compilation used.
#[derive(Clone, Debug)]
pub struct Figure2Row {
    /// Query name.
    pub query: String,
    /// Workload family.
    pub family: Family,
    /// Number of relation atoms in the outer query.
    pub tables: usize,
    /// Nesting depth.
    pub nesting: usize,
    /// GROUP BY present.
    pub group_by: bool,
    /// Rule 1: query decomposition fired.
    pub decomposition: bool,
    /// Rule 2: polynomial expansion fired.
    pub expansion: bool,
    /// Rule 3: input-variable extraction fired.
    pub input_vars: bool,
    /// Rule 4: nested-aggregate rewrite fired, with the chosen strategy:
    /// `-`, `I` (incremental), `R` (re-evaluation) or `R,I`.
    pub nested_strategy: String,
    /// Number of maps materialized.
    pub maps: usize,
}

/// Compile every workload query with Higher-Order IVM and report which rules fired.
pub fn figure2_rows() -> Vec<Figure2Row> {
    let catalog = workloads::full_catalog();
    workloads::all_queries()
        .iter()
        .map(|q| {
            let engine = QueryEngineBuilder::new(catalog.clone())
                .add_query(q.name, q.sql)
                .mode(CompileMode::HigherOrder)
                .build()
                .unwrap_or_else(|e| panic!("{}: {e}", q.name));
            let report = &engine.program().report;
            let nested_strategy = match (report.used_reevaluation, report.used_incremental_nested) {
                (false, false) if !report.used_nested_rewrite => "-".to_string(),
                (false, false) => "I".to_string(),
                (true, false) => "R".to_string(),
                (false, true) => "I".to_string(),
                (true, true) => "R,I".to_string(),
            };
            Figure2Row {
                query: q.name.to_string(),
                family: q.family,
                tables: q.tables,
                nesting: q.nesting,
                group_by: q.group_by,
                decomposition: report.used_decomposition,
                expansion: report.used_expansion,
                input_vars: report.used_input_var_extraction,
                nested_strategy,
                maps: engine.program().maps.len(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 6 & 7
// ---------------------------------------------------------------------------

/// One query's refresh rates under every strategy (a row of Figure 7 / a bar group of
/// Figure 6).
#[derive(Clone, Debug)]
pub struct Figure6Row {
    /// Query name.
    pub query: String,
    /// One entry per strategy in [`STRATEGIES`] order.
    pub rates: Vec<RunStats>,
}

/// Run every query under every strategy.
pub fn figure6_rows(config: &ExperimentConfig, queries: &[WorkloadQuery]) -> Vec<Figure6Row> {
    queries
        .iter()
        .map(|q| {
            let data = dataset_for(q.family, config.events, config.seed);
            let rates = STRATEGIES
                .iter()
                .map(|&mode| run_stream(q, mode, &data, config.time_budget))
                .collect();
            Figure6Row {
                query: q.name.to_string(),
                rates,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Trace figures (8, 9, 10, 13–18)
// ---------------------------------------------------------------------------

/// Replay a stream and sample statistics at each 10% of the trace, as in the paper's
/// trace figures.
pub fn trace_series(
    q: &WorkloadQuery,
    mode: CompileMode,
    data: &workloads::Dataset,
    samples: usize,
    budget: Duration,
) -> Vec<TracePoint> {
    let mut engine = build_engine(q, mode, data);
    let mut out = Vec::with_capacity(samples);
    let chunk = (data.events.len() / samples).max(1);
    let start = Instant::now();
    'outer: for (i, part) in data.events.chunks(chunk).enumerate() {
        for event in part {
            engine
                .process(event)
                .unwrap_or_else(|e| panic!("{} [{mode}]: {e}", q.name));
            if start.elapsed() > budget {
                let s = engine.sample((i + 1) as f64 / samples as f64);
                out.push(TracePoint {
                    fraction: s.fraction,
                    time_minutes: s.elapsed_secs / 60.0,
                    refresh_rate: s.refresh_rate,
                    memory_mb: s.memory_mb,
                });
                break 'outer;
            }
        }
        let s = engine.sample((i + 1) as f64 / samples as f64);
        out.push(TracePoint {
            fraction: s.fraction,
            time_minutes: s.elapsed_secs / 60.0,
            refresh_rate: s.refresh_rate,
            memory_mb: s.memory_mb,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 11
// ---------------------------------------------------------------------------

/// One bar of Figure 11: a query's refresh rate at a given relative stream length,
/// normalized to the shortest stream.
#[derive(Clone, Debug)]
pub struct Figure11Row {
    /// Query name.
    pub query: String,
    /// (relative scale, absolute refresh rate, rate relative to scale 1).
    pub points: Vec<(usize, f64, f64)>,
}

/// Scaling experiment: replay streams of increasing length (fixed working set) under
/// Higher-Order IVM and report the refresh rate relative to the shortest stream.
pub fn figure11_rows(
    base_events: usize,
    relative_scales: &[usize],
    seed: u64,
    queries: &[&str],
    budget: Duration,
) -> Vec<Figure11Row> {
    queries
        .iter()
        .map(|name| {
            let q = workloads::query(name).unwrap_or_else(|| panic!("unknown query {name}"));
            let mut points = Vec::new();
            let mut baseline = None;
            for &rel in relative_scales {
                let scale = 0.002 * rel as f64;
                let mut data = workloads::tpch::generate(
                    &workloads::TpchConfig::with_fixed_working_set(scale, seed, 150, 600),
                );
                data.truncate(base_events * rel);
                let stats = run_stream(&q, CompileMode::HigherOrder, &data, budget);
                let rate = stats.refresh_rate;
                let base = *baseline.get_or_insert(rate);
                points.push((rel, rate, if base > 0.0 { rate / base } else { 0.0 }));
            }
            Figure11Row {
                query: name.to_string(),
                points,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Micro benchmark suite (harness `micro` subcommand, BENCH_micro.json)
// ---------------------------------------------------------------------------

/// One measured micro-benchmark: a named operation with its achieved rate.
#[derive(Clone, Debug, Default)]
pub struct MicroResult {
    /// Benchmark name (stable across runs; the perf trajectory is keyed on it).
    pub name: String,
    /// Operations (events, inserts, probes...) per second of processing time.
    pub ops_per_sec: f64,
    /// Operations performed during the measurement.
    pub ops: usize,
    /// Measured wall-clock seconds.
    pub elapsed_secs: f64,
    /// Batch strategies the engine actually ran (batch sweep only; joined
    /// with `+` when the query's relations dispatch differently).
    pub strategy: Option<String>,
    /// Events cancelled by in-batch/run coalescing (batch sweep only).
    pub collapsed: Option<u64>,
    /// Per-batch latency percentiles from the run's telemetry handle.
    pub latency: Option<HistogramSummary>,
}

fn time_ops(name: &str, ops: usize, f: impl FnOnce()) -> MicroResult {
    let t0 = Instant::now();
    f();
    let elapsed = t0.elapsed().as_secs_f64();
    MicroResult {
        name: name.to_string(),
        ops_per_sec: if elapsed > 0.0 {
            ops as f64 / elapsed
        } else {
            0.0
        },
        ops,
        elapsed_secs: elapsed,
        ..Default::default()
    }
}

/// Run the substrate micro-benchmarks (view-map maintenance, GMR join/agg) and
/// the fig6 Higher-Order refresh-rate runs for a representative query subset.
/// This is the data series behind `BENCH_micro.json`.
pub fn micro_benchmarks(config: &ExperimentConfig) -> Vec<MicroResult> {
    use dbtoaster::gmr::{Gmr, Schema, Value};
    use dbtoaster::runtime::ViewMap;
    let mut out = Vec::new();

    // View-map insert/cancel churn: the inner operation of every trigger statement.
    const VM_OPS: usize = 400_000;
    out.push(time_ops("viewmap_insert_churn", VM_OPS, || {
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        for i in 0..VM_OPS as i64 {
            v.add(vec![Value::long(i % 4_093), Value::long(i % 64)], 1.0);
        }
        std::hint::black_box(v.len());
    }));

    // Partial-pattern probes against a pre-built secondary index.
    let mut probe_map = ViewMap::new(Schema::new(["a", "b"]));
    for i in 0..40_000i64 {
        probe_map.add(vec![Value::long(i % 997), Value::long(i)], 1.0);
    }
    probe_map.lookup(&[Some(Value::long(3)), None]);
    const PROBES: usize = 200_000;
    out.push(time_ops("viewmap_partial_lookup", PROBES, || {
        let mut total = 0usize;
        for i in 0..PROBES as i64 {
            total += probe_map.lookup(&[Some(Value::long(i % 997)), None]).len();
        }
        std::hint::black_box(total);
    }));

    // GMR hash join, the re-evaluation baseline's dominant operation.
    let mut r = Gmr::new(Schema::new(["a", "b"]));
    let mut s = Gmr::new(Schema::new(["b", "c"]));
    for i in 0..2_000i64 {
        r.add_tuple(vec![Value::long(i % 50), Value::long(i)], 1.0);
        s.add_tuple(vec![Value::long(i), Value::long(i * 2)], 1.0);
    }
    const JOINS: usize = 50;
    out.push(time_ops("gmr_join_2k_x_2k", JOINS * r.len(), || {
        for _ in 0..JOINS {
            std::hint::black_box(r.join(&s).len());
        }
    }));

    // fig6 refresh rate, Higher-Order IVM only, representative query subset.
    // Each query is measured twice since the compiled-kernel PR: once on the
    // (default) compiled trigger path — the `fig6_ho_*` series, keeping the
    // perf trajectory comparable across runs — and once with the kernels
    // bypassed (`*_interp`), so the compiled-vs-interpreted gap stays visible.
    for name in ["q1", "q3", "q6", "axf", "bsv"] {
        let q = match workloads::query(name) {
            Some(q) => q,
            None => continue,
        };
        let data = dataset_for(q.family, config.events, config.seed);
        for (suffix, force_interpreter) in [("", false), ("_interp", true)] {
            let stats = run_stream_opts(
                &q,
                CompileMode::HigherOrder,
                &data,
                config.time_budget,
                force_interpreter,
            );
            out.push(MicroResult {
                name: format!("fig6_ho_{name}{suffix}"),
                ops_per_sec: stats.refresh_rate,
                ops: stats.processed,
                elapsed_secs: stats.elapsed,
                latency: stats.latency,
                ..Default::default()
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Batch benchmarks (harness `batch` subcommand, BENCH_batch.json)
// ---------------------------------------------------------------------------

/// Batch sizes the `batch` subcommand sweeps. Size 1 is the per-event
/// baseline (the degenerate delta batch); the larger sizes measure how much
/// of the per-event dispatch cost — trigger resolution, kernel prelude,
/// loop-invariant fused scans, per-statement target resolution, change-log
/// and snapshot-cache bookkeeping — batching amortizes away.
pub const BATCH_SIZES: &[usize] = &[1, 8, 64, 512];

/// Replay one query's stream through `Engine::process_batch` at a fixed batch
/// size, measuring wall-clock events/sec (ingest-to-applied, conversion cost
/// included — the honest number a serving writer would see).
fn batch_run(
    q: &workloads::WorkloadQuery,
    data: &workloads::Dataset,
    mode: CompileMode,
    batch_size: usize,
    budget: Duration,
) -> MicroResult {
    let suffix = match mode {
        CompileMode::HigherOrder => "",
        CompileMode::Reevaluate => "_rep",
        CompileMode::FirstOrder => "_fo",
        CompileMode::NaiveViewlet => "_naive",
    };
    let mut engine = build_engine(q, mode, data);
    let tel = bench_telemetry();
    engine.set_telemetry(tel.clone());
    let mut delta = DeltaBatch::new();
    // Pre-chunk an owned copy of the stream before the clock starts: a real
    // producer (the serving writer draining its queue, WAL replay decoding a
    // record) owns its events, so conversion moves the tuples rather than
    // cloning them — the copy below models the producer's cost, not the
    // engine's.
    let chunks: Vec<Vec<UpdateEvent>> =
        data.events.chunks(batch_size).map(|c| c.to_vec()).collect();
    let start = Instant::now();
    let mut processed = 0usize;
    let mut batches = 0usize;
    for chunk in chunks {
        let n = chunk.len();
        delta.clear();
        for ev in chunk {
            delta.push_owned(ev);
        }
        let report = engine.process_batch(&delta);
        if let Some(e) = report.first_error {
            panic!("{} [batch {batch_size}]: {e}", q.name);
        }
        processed += n;
        batches += 1;
        // Check the budget every 32 batches to keep the overhead negligible.
        if batches.is_multiple_of(32) && start.elapsed() > budget {
            break;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    engine.flush_telemetry();
    let snap = tel.snapshot();
    debug_assert!(!snap.enabled || snap.events == processed as u64);
    // Single source of truth (see run_stream_opts).
    let processed = if snap.enabled {
        snap.events as usize
    } else {
        processed
    };
    // Report which strategies the dispatch actually chose (a query whose
    // relations split across strategies reports all of them), plus how many
    // events in-batch coalescing cancelled outright.
    let stats = engine.stats();
    let mut used: Vec<&str> = Vec::new();
    if stats.batch_delta_runs > 0 {
        used.push("batch-delta");
    }
    if stats.statement_major_runs > 0 {
        used.push("statement-major");
    }
    if stats.entry_major_runs > 0 {
        used.push("entry-major");
    }
    MicroResult {
        name: format!("batch{batch_size}_{}{suffix}", q.name),
        ops_per_sec: if elapsed > 0.0 {
            processed as f64 / elapsed
        } else {
            0.0
        },
        ops: processed,
        elapsed_secs: elapsed,
        strategy: Some(used.join("+")),
        collapsed: Some(stats.batch_events_collapsed),
        latency: snap.enabled.then_some(snap.batch_latency),
    }
}

/// The batch-size sweep behind `BENCH_batch.json`: fig6 representative
/// queries plus the finance self-join workloads, each replayed at every
/// [`BATCH_SIZES`] entry. Per-event throughput is expected to *rise* with
/// the batch size for every query now that batch-delta programs are the
/// default dispatch: linear queries amortize dispatch and fused-scan
/// preludes, and axfinder — formerly the flat entry-major straggler —
/// additionally answers its price-band scans from sorted per-run prefix-sum
/// caches, so its gain grows with the run length.
pub fn batch_benchmarks(config: &ExperimentConfig) -> Vec<MicroResult> {
    let mut out = Vec::new();
    for name in ["q1", "q3", "q6", "axf", "bsv"] {
        let q = match workloads::query(name) {
            Some(q) => q,
            None => continue,
        };
        let data = dataset_for(q.family, config.events, config.seed);
        for &size in BATCH_SIZES {
            out.push(batch_run(
                &q,
                &data,
                CompileMode::HigherOrder,
                size,
                config.time_budget,
            ));
        }
    }
    // Re-evaluation mode is where batching changes the *asymptotics*: `:=`
    // statements fire once per relation run instead of once per event, so a
    // run of N same-relation events costs one re-evaluation, not N. REP's
    // per-event cost grows with the stored relations, so the comparison must
    // cover the *same* stream at every batch size: a short fixed stream that
    // every size completes within the budget (prefix rates would otherwise
    // favour whichever size stopped earliest).
    for name in ["q1", "q3", "q6"] {
        let q = match workloads::query(name) {
            Some(q) => q,
            None => continue,
        };
        let rep_events = config.events.min(4096);
        let data = dataset_for(q.family, rep_events, config.seed);
        for &size in BATCH_SIZES {
            out.push(batch_run(
                &q,
                &data,
                CompileMode::Reevaluate,
                size,
                config.time_budget.max(Duration::from_secs(30)),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Serving benchmarks (harness `serve` subcommand, BENCH_serve.json)
// ---------------------------------------------------------------------------

/// Replay a workload through a [`ViewServer`] with `readers` concurrent
/// snapshot readers and optionally one output-delta subscriber, measuring
/// writer throughput (events/s of wall time, ingest → flush) and aggregate
/// read throughput. Returns `(events_per_sec, reads_per_sec, deltas, processed)`.
fn serve_run(
    q: &workloads::WorkloadQuery,
    data: &workloads::Dataset,
    readers: usize,
    subscribe: bool,
) -> (f64, f64, u64, usize) {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
    use std::sync::Arc;

    let engine = build_engine(q, CompileMode::HigherOrder, data);
    let server = engine
        .serve_with(ServerConfig {
            queue_capacity: 8192,
            max_batch: 2048,
            ..ServerConfig::default()
        })
        .unwrap_or_else(|e| panic!("{}: {e}", q.name));

    let done = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    // Probe one maintained view per snapshot read: the metric is the lock-free
    // snapshot-acquisition path, not per-query result-table assembly (whose
    // cost is workload-dependent and, on a single core, would just measure CPU
    // sharing between assembly and the writer).
    let probe: Option<String> = server.reader().snapshot().names().next().map(String::from);
    let reader_threads: Vec<_> = (0..readers)
        .map(|_| {
            let reader = server.reader();
            let done = done.clone();
            let reads = reads.clone();
            let probe = probe.clone();
            std::thread::spawn(move || {
                while !done.load(Relaxed) {
                    let snap = reader.snapshot();
                    if let Some(name) = &probe {
                        std::hint::black_box(snap.view(name).map(|g| g.len()));
                    }
                    reads.fetch_add(1, Relaxed);
                    // Poll rather than spin: a dashboard-style reader yields
                    // between reads instead of monopolizing a core.
                    std::thread::yield_now();
                }
            })
        })
        .collect();
    let delta_count = Arc::new(AtomicU64::new(0));
    let sub_thread = subscribe.then(|| {
        let sub = server
            .subscribe(q.name)
            .unwrap_or_else(|e| panic!("{}: {e}", q.name));
        let delta_count = delta_count.clone();
        std::thread::spawn(move || {
            while let Some(batch) = sub.recv() {
                delta_count.fetch_add(batch.deltas.len() as u64, Relaxed);
            }
        })
    });

    let ingest = server.handle();
    // Clone the stream before the clock starts: the single-threaded baseline
    // replays borrowed events, so the comparison should not charge the copy.
    let events: Vec<UpdateEvent> = data.events.clone();
    let start = Instant::now();
    ingest.send_batch(events).expect("server alive");
    server.flush().expect("flush");
    let wall = start.elapsed().as_secs_f64();
    done.store(true, Relaxed);
    for t in reader_threads {
        t.join().expect("reader thread");
    }
    let processed = server.stats().events as usize;
    assert!(server.last_error().is_none(), "{}: writer error", q.name);
    drop(server); // joins the writer, closing the subscription stream
    if let Some(t) = sub_thread {
        t.join().expect("subscriber thread");
    }
    let rate = |n: f64| if wall > 0.0 { n / wall } else { 0.0 };
    (
        rate(processed as f64),
        rate(reads.load(Relaxed) as f64),
        delta_count.load(Relaxed),
        processed,
    )
}

/// The serving-layer benchmark suite: writer throughput alone vs. under 4
/// concurrent readers (the acceptance comparison against the single-threaded
/// `fig6_ho_*` rates), aggregate snapshot-read throughput, and subscription
/// fan-out. This is the data series behind `BENCH_serve.json`.
pub fn serve_benchmarks(config: &ExperimentConfig) -> Vec<MicroResult> {
    let mut out = Vec::new();
    for name in ["q1", "q3", "q6"] {
        let q = match workloads::query(name) {
            Some(q) => q,
            None => continue,
        };
        let data = dataset_for(q.family, config.events, config.seed);
        let (solo, _, _, processed) = serve_run(&q, &data, 0, false);
        out.push(MicroResult {
            name: format!("serve_writer_{name}"),
            ops_per_sec: solo,
            ops: processed,
            elapsed_secs: if solo > 0.0 {
                processed as f64 / solo
            } else {
                0.0
            },
            ..Default::default()
        });
        let (contended, read_rate, _, processed) = serve_run(&q, &data, 4, false);
        out.push(MicroResult {
            name: format!("serve_writer_{name}_4readers"),
            ops_per_sec: contended,
            ops: processed,
            elapsed_secs: if contended > 0.0 {
                processed as f64 / contended
            } else {
                0.0
            },
            ..Default::default()
        });
        out.push(MicroResult {
            name: format!("serve_reads_{name}_4readers"),
            ops_per_sec: read_rate,
            ops: processed,
            elapsed_secs: 0.0,
            ..Default::default()
        });
    }
    // Subscription fan-out on a single-aggregate query (map-backed deltas).
    if let Some(q) = workloads::query("q6") {
        let data = dataset_for(q.family, config.events, config.seed);
        let (rate, _, deltas, processed) = serve_run(&q, &data, 0, true);
        out.push(MicroResult {
            name: "serve_writer_q6_1sub".into(),
            ops_per_sec: rate,
            ops: processed,
            elapsed_secs: if rate > 0.0 {
                processed as f64 / rate
            } else {
                0.0
            },
            ..Default::default()
        });
        out.push(MicroResult {
            name: "serve_sub_deltas_q6".into(),
            ops_per_sec: 0.0,
            ops: deltas as usize,
            elapsed_secs: 0.0,
            ..Default::default()
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Durability benchmarks (harness `recover` subcommand, BENCH_recover.json)
// ---------------------------------------------------------------------------

/// The durability benchmark suite: durable writer throughput (WAL ahead of
/// every micro-batch), WAL bytes per event, checkpoint write/load rates
/// (entries/s) and WAL replay rate (events/s) after a [`ViewServer::kill`]
/// crash. This is the data series behind `BENCH_recover.json`.
pub fn recover_benchmarks(config: &ExperimentConfig) -> Vec<MicroResult> {
    use dbtoaster::durability::{
        self, load_latest, program_fingerprint, write_checkpoint, DurabilityConfig, WalReader,
    };
    use dbtoaster::runtime::Engine;
    use dbtoaster::to_compiler_catalog;

    let mut out = Vec::new();
    let catalog = to_compiler_catalog(&workloads::full_catalog());
    for name in ["q1", "q3", "q6"] {
        let q = match workloads::query(name) {
            Some(q) => q,
            None => continue,
        };
        let data = dataset_for(q.family, config.events, config.seed);
        let dir =
            std::env::temp_dir().join(format!("dbt-bench-recover-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Durable serve: WAL every batch, one periodic checkpoint mid-stream
        // so recovery exercises both the checkpoint load and a long replay.
        let engine = build_engine(&q, CompileMode::HigherOrder, &data);
        let program = engine.program().clone();
        let mut dcfg = DurabilityConfig::new(&dir);
        dcfg.checkpoint_every_events = (config.events as u64 / 2).max(1);
        let server = engine
            .open_or_create_with(ServerConfig {
                max_batch: 2048,
                durability: Some(dcfg),
                ..ServerConfig::default()
            })
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let ingest = server.handle();
        let t0 = Instant::now();
        ingest
            .send_batch(data.events.clone())
            .expect("server alive");
        server.flush().expect("flush");
        let wall = t0.elapsed().as_secs_f64();
        let stats = server.stats();
        assert_eq!(stats.events as usize, data.events.len());
        let rate = |n: f64, secs: f64| if secs > 0.0 { n / secs } else { 0.0 };
        out.push(MicroResult {
            name: format!("durable_writer_{name}"),
            ops_per_sec: rate(stats.events as f64, wall),
            ops: stats.events as usize,
            elapsed_secs: wall,
            ..Default::default()
        });
        // Log density: total WAL bytes in `ops` (rate column left 0.0 — this
        // row is a size, not a throughput; bytes/event = ops / events).
        out.push(MicroResult {
            name: format!("wal_bytes_{name}"),
            ops_per_sec: 0.0,
            ops: stats.wal_bytes_written as usize,
            elapsed_secs: 0.0,
            ..Default::default()
        });
        // Crash (no final checkpoint): the WAL tail above the periodic
        // checkpoint must be replayed on reopen.
        server.kill();

        let fp = program_fingerprint(&program);
        let t0 = Instant::now();
        let (ckpt, _) = load_latest(&dir, fp).expect("checkpoint readable");
        let ckpt = ckpt.expect("checkpoint present");
        let load_secs = t0.elapsed().as_secs_f64();
        let entries: usize = ckpt.maps.iter().map(|(_, g)| g.len()).sum();
        out.push(MicroResult {
            name: format!("ckpt_load_{name}"),
            ops_per_sec: rate(entries as f64, load_secs),
            ops: entries,
            elapsed_secs: load_secs,
            ..Default::default()
        });

        let watermark = ckpt.watermark;
        let mut warm = Engine::from_snapshot(program.clone(), &catalog, ckpt.maps, watermark);
        let reader = WalReader::open(&dir, fp).expect("wal readable");
        let t0 = Instant::now();
        let replay = reader
            .replay(watermark + 1, &mut |_, ev| {
                warm.process(&ev).map_err(|e| e.to_string())
            })
            .expect("replay");
        let replay_secs = t0.elapsed().as_secs_f64();
        assert_eq!(warm.stats().events as usize, data.events.len());
        out.push(MicroResult {
            name: format!("wal_replay_{name}"),
            ops_per_sec: rate(replay.events_replayed as f64, replay_secs),
            ops: replay.events_replayed as usize,
            elapsed_secs: replay_secs,
            ..Default::default()
        });

        // End-to-end recovery (checkpoint discovery + load + replay).
        let t0 = Instant::now();
        let rec = durability::recover(&dir, program.clone(), &catalog)
            .expect("recover")
            .expect("state present");
        let total_secs = t0.elapsed().as_secs_f64();
        assert_eq!(rec.engine.stats().events as usize, data.events.len());
        out.push(MicroResult {
            name: format!("recover_total_{name}"),
            ops_per_sec: rate(rec.engine.stats().events as f64, total_secs),
            ops: rec.engine.stats().events as usize,
            elapsed_secs: total_secs,
            ..Default::default()
        });

        // Checkpoint write rate at full state size.
        let snap = warm.snapshot();
        let t0 = Instant::now();
        write_checkpoint(
            &dir,
            fp,
            warm.stats().events,
            snap.iter().map(|(n, g)| (n.as_str(), g)),
        )
        .expect("checkpoint write");
        let write_secs = t0.elapsed().as_secs_f64();
        let entries: usize = snap.values().map(|g| g.len()).sum();
        out.push(MicroResult {
            name: format!("ckpt_write_{name}"),
            ops_per_sec: rate(entries as f64, write_secs),
            ops: entries,
            elapsed_secs: write_secs,
            ..Default::default()
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    out
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render micro-benchmark results as JSON (hand-rolled: the workspace builds
/// without a JSON dependency).
pub fn micro_json(label: &str, config: &ExperimentConfig, results: &[MicroResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"label\": \"{}\",\n", json_escape(label)));
    out.push_str(&format!("  \"events\": {},\n", config.events));
    out.push_str(&format!("  \"seed\": {},\n", config.seed));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let mut extra = String::new();
        if let Some(s) = &r.strategy {
            extra.push_str(&format!(", \"strategy\": \"{}\"", json_escape(s)));
        }
        if let Some(c) = r.collapsed {
            extra.push_str(&format!(", \"collapsed\": {c}"));
        }
        if let Some(l) = &r.latency {
            extra.push_str(&format!(
                ", \"latency\": {{\"count\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {}, \
                 \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                l.count, l.mean_nanos, l.p50_nanos, l.p90_nanos, l.p99_nanos, l.max_nanos
            ));
        }
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ops_per_sec\": {:.1}, \"ops\": {}, \"elapsed_secs\": {:.4}{}}}{}\n",
            json_escape(&r.name),
            r.ops_per_sec,
            r.ops,
            r.elapsed_secs,
            extra,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validate the `latency` blocks of a [`micro_json`] document: every block
/// must carry all six fields with numeric values, and at least one block must
/// be present. Returns the number of blocks checked. The CI release-harness
/// smoke runs this against the emitted JSON so a refactor that silently drops
/// the percentile block fails the build instead of degrading dashboards.
pub fn validate_latency_json(json: &str) -> Result<usize, String> {
    const KEYS: [&str; 6] = [
        "\"count\"",
        "\"mean_ns\"",
        "\"p50_ns\"",
        "\"p90_ns\"",
        "\"p99_ns\"",
        "\"max_ns\"",
    ];
    let mut found = 0usize;
    let mut rest = json;
    while let Some(pos) = rest.find("\"latency\":") {
        let after = &rest[pos + "\"latency\":".len()..];
        let Some(open) = after.find('{') else {
            return Err("latency key without an object".into());
        };
        let Some(close) = after[open..].find('}') else {
            return Err("unterminated latency object".into());
        };
        let body = &after[open..=open + close];
        for key in KEYS {
            let Some(kpos) = body.find(key) else {
                return Err(format!("latency block missing {key}: {body}"));
            };
            let val = body[kpos + key.len()..]
                .trim_start_matches(':')
                .trim_start();
            let num: String = val
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                .collect();
            if num.parse::<f64>().is_err() {
                return Err(format!("latency field {key} is not numeric: {body}"));
            }
        }
        found += 1;
        rest = &after[open + close..];
    }
    if found == 0 {
        return Err("no latency block found in JSON output".into());
    }
    Ok(found)
}

/// Render micro-benchmark results as an aligned text table.
pub fn format_micro(results: &[MicroResult]) -> String {
    let mut out =
        String::from("benchmark                      ops/sec        ops      elapsed(s)\n");
    for r in results {
        out.push_str(&format!(
            "{:<28} {:>12.1} {:>10} {:>12.4}",
            r.name, r.ops_per_sec, r.ops, r.elapsed_secs
        ));
        if let Some(s) = &r.strategy {
            out.push_str(&format!("  {s}"));
        }
        if let Some(c) = r.collapsed {
            out.push_str(&format!(" ({c} collapsed)"));
        }
        if let Some(l) = &r.latency {
            out.push_str(&format!(
                "  p50={}ns p99={}ns max={}ns",
                l.p50_nanos, l.p99_nanos, l.max_nanos
            ));
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Formatting helpers
// ---------------------------------------------------------------------------

/// Render Figure 2 as an aligned text table.
pub fn format_figure2(rows: &[Figure2Row]) -> String {
    let mut out = String::from(
        "query      fam      T  Gb  Nst  D  P  I  N     maps\n\
         ------------------------------------------------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:<8} {:<2} {:<3} {:<4} {:<2} {:<2} {:<2} {:<5} {:<4}\n",
            r.query,
            r.family.to_string(),
            r.tables,
            if r.group_by { "y" } else { "-" },
            r.nesting,
            if r.decomposition { "D" } else { "-" },
            if r.expansion { "P" } else { "-" },
            if r.input_vars { "S" } else { "-" },
            r.nested_strategy,
            r.maps,
        ));
    }
    out
}

/// Render Figure 6/7 as an aligned text table (view refreshes per second).
pub fn format_figure6(rows: &[Figure6Row]) -> String {
    let mut out = String::from(
        "query      REP          IVM          Naive        DBToaster    speedup(DBT/REP)\n\
         --------------------------------------------------------------------------------\n",
    );
    for r in rows {
        let rates: Vec<f64> = r.rates.iter().map(|s| s.refresh_rate).collect();
        let speedup = if rates[0] > 0.0 {
            rates[3] / rates[0]
        } else {
            f64::INFINITY
        };
        out.push_str(&format!(
            "{:<10} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}x\n",
            r.query, rates[0], rates[1], rates[2], rates[3], speedup
        ));
    }
    out
}

/// Render a trace series.
pub fn format_trace(query: &str, mode: CompileMode, points: &[TracePoint]) -> String {
    let mut out = format!("{query} [{mode}]\n  frac   time(min)   refresh(1/s)   mem(MB)\n");
    for p in points {
        out.push_str(&format!(
            "  {:>4.2} {:>10.4} {:>14.1} {:>9.3}\n",
            p.fraction, p.time_minutes, p.refresh_rate, p.memory_mb
        ));
    }
    out
}

/// Render Figure 11.
pub fn format_figure11(rows: &[Figure11Row]) -> String {
    let mut out = String::from("query      scale  refresh(1/s)  relative-to-1x\n");
    for r in rows {
        for (rel, rate, relative) in &r.points {
            out.push_str(&format!(
                "{:<10} {:>5}x {:>12.1} {:>14.2}\n",
                r.query, rel, rate, relative
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Shard-parallel sweep (harness `shard`)
// ---------------------------------------------------------------------------

/// Queries the shard sweep runs: a mix chosen so the sharding analysis lands
/// both fully shard-local plans and plans that route cross-shard terms
/// through the exchange executor (which of the two each query got is part of
/// the report).
pub const SHARD_QUERIES: &[&str] = &["q1", "q3", "q6", "vwap", "axf"];

/// One (query, shard count) verdict of the shard sweep's invariance pass.
#[derive(Clone, Debug)]
pub struct ShardRow {
    /// Query name.
    pub query: String,
    /// Shard count of this run.
    pub shards: usize,
    /// The whole trigger program ran shard-local (no exchange executor).
    pub fully_local: bool,
    /// Interchange-form bytes shipped to the exchange executor.
    pub exchange_bytes: u64,
    /// Merged state matched the single-engine oracle bit for bit (false =
    /// equal only up to float-addition reassociation in Summed-class merges).
    pub bit_exact: bool,
}

/// Everything the harness `shard` subcommand reports.
pub struct ShardSweep {
    /// Throughput per (query, shard count), `MicroResult::strategy` carrying
    /// `local` / `exchange`.
    pub results: Vec<MicroResult>,
    /// Invariance verdict per (query, shard count).
    pub rows: Vec<ShardRow>,
    /// The shard counts swept.
    pub counts: Vec<usize>,
    /// Queries whose merged state matched the oracle at every shard count.
    pub verified: usize,
    /// Queries swept.
    pub total: usize,
    /// Queries bit-exact at every shard count (subset of `verified`).
    pub bit_exact: usize,
    /// Queries with a fully shard-local plan.
    pub local: usize,
    /// Queries that needed the exchange executor.
    pub exchanging: usize,
}

/// Compare a view against the oracle: `(equal, bit_exact)`. Equality allows
/// the relative rounding that merging per-shard float sums can introduce
/// (same caveat as batch-delta reassociation, see `crates/agca/src/batch.rs`);
/// bit-exactness is reported separately because Partitioned-class merges are
/// disjoint unions and must not drift at all.
fn gmr_matches(want: &Gmr, got: &Gmr) -> (bool, bool) {
    // Canonicalize away explicit zero-multiplicity entries: whether a zero is
    // retained or dropped is a storage detail that differs between a merged
    // union and a single map, not an answer difference.
    let canon = |g: &Gmr| -> std::collections::BTreeMap<String, f64> {
        g.iter()
            .filter(|(_, m)| *m != 0.0)
            .map(|(t, m)| (format!("{t:?}"), m))
            .collect()
    };
    let want = canon(want);
    let got = canon(got);
    if want.len() != got.len() {
        return (false, false);
    }
    let mut bit = true;
    for (t, m) in &want {
        let Some(g) = got.get(t) else {
            return (false, false);
        };
        if g.to_bits() != m.to_bits() {
            bit = false;
            if (g - m).abs() > 1e-9 * m.abs().max(1.0) {
                return (false, false);
            }
        }
    }
    (true, bit)
}

/// The shard sweep: for each query in [`SHARD_QUERIES`] and each shard count,
/// verify shard-count invariance (merged state equals a single-engine oracle
/// fed the same batches) and measure scatter/process/merge throughput over
/// the full stream. Panics on any invariance violation — a wrong answer must
/// never be reported as a benchmark number.
pub fn shard_sweep(config: &ExperimentConfig, counts: &[usize]) -> ShardSweep {
    use dbtoaster::runtime::{Engine, ShardedEngine};
    const CHUNK: usize = 256;
    let catalog = workloads::full_catalog();
    let ccat = dbtoaster::to_compiler_catalog(&catalog);
    let mut sweep = ShardSweep {
        results: Vec::new(),
        rows: Vec::new(),
        counts: counts.to_vec(),
        verified: 0,
        total: 0,
        bit_exact: 0,
        local: 0,
        exchanging: 0,
    };
    for name in SHARD_QUERIES {
        let q = workloads::query(name).unwrap_or_else(|| panic!("workload query {name} missing"));
        let data = dataset_for(q.family, config.events, config.seed);
        let program = QueryEngineBuilder::new(catalog.clone())
            .add_query(q.name, q.sql)
            .mode(CompileMode::HigherOrder)
            .build()
            .unwrap_or_else(|e| panic!("{}: {e}", q.name))
            .program()
            .clone();

        // Oracle: one plain engine over a fixed prefix, batched exactly like
        // the sharded runs (so only shard *merging* can differ, not batch
        // boundaries).
        let prefix = data.events.len().min(4_000);
        let mut oracle = Engine::new(program.clone(), &ccat);
        for (table, rows) in &data.tables {
            oracle.load_table(table, rows.iter().cloned());
        }
        oracle.init_static_views().unwrap();
        let mut delta = DeltaBatch::new();
        for chunk in data.events[..prefix].chunks(CHUNK) {
            delta.clear();
            for ev in chunk {
                delta.push(ev);
            }
            oracle.process_batch(&delta);
        }
        // The SQL planner registers one result per translated view (not under
        // the user-facing query name); invariance must hold for every one.
        let want: Vec<(String, Gmr)> = program
            .results
            .iter()
            .map(|r| {
                let g = oracle
                    .result(&r.name)
                    .unwrap_or_else(|e| panic!("{}: oracle result {}: {e}", q.name, r.name));
                (r.name.clone(), g)
            })
            .collect();

        sweep.total += 1;
        let mut all_bit_exact = true;
        let mut was_local = false;
        for &n in counts {
            // Invariance pass: fixed prefix, no budget cutoff.
            let mut sharded = ShardedEngine::new(program.clone(), &ccat, n);
            for (table, rows) in &data.tables {
                sharded.load_table(table, rows);
            }
            sharded.init_static_views().unwrap();
            for chunk in data.events[..prefix].chunks(CHUNK) {
                let report = sharded.process_events(chunk);
                if let Some(e) = report.first_error {
                    panic!("{} [shards={n}]: {e}", q.name);
                }
            }
            let mut bit = true;
            for (rn, w) in &want {
                let got = sharded
                    .result(rn)
                    .unwrap_or_else(|e| panic!("{} [shards={n}]: result {rn}: {e}", q.name));
                let (equal, b) = gmr_matches(w, &got);
                assert!(
                    equal,
                    "{} [shards={n}]: merged result {rn} diverged from the single-engine oracle",
                    q.name
                );
                bit &= b;
            }
            all_bit_exact &= bit;
            was_local = !sharded.has_executor();
            sweep.rows.push(ShardRow {
                query: q.name.to_string(),
                shards: n,
                fully_local: !sharded.has_executor(),
                exchange_bytes: sharded.exchange_stats().bytes,
                bit_exact: bit,
            });

            // Throughput pass: fresh engine, full stream, honouring the budget.
            let mut bench = ShardedEngine::new(program.clone(), &ccat, n);
            for (table, rows) in &data.tables {
                bench.load_table(table, rows);
            }
            bench.init_static_views().unwrap();
            let start = Instant::now();
            let mut processed = 0usize;
            for chunk in data.events.chunks(CHUNK) {
                let report = bench.process_events(chunk);
                if let Some(e) = report.first_error {
                    panic!("{} [shards={n}]: {e}", q.name);
                }
                processed += chunk.len();
                if start.elapsed() > config.time_budget {
                    break;
                }
            }
            let elapsed = start.elapsed().as_secs_f64();
            sweep.results.push(MicroResult {
                name: format!("{}/shards={n}", q.name),
                ops_per_sec: if elapsed > 0.0 {
                    processed as f64 / elapsed
                } else {
                    0.0
                },
                ops: processed,
                elapsed_secs: elapsed,
                strategy: Some(
                    if bench.has_executor() {
                        "exchange"
                    } else {
                        "local"
                    }
                    .to_string(),
                ),
                ..Default::default()
            });
        }
        sweep.verified += 1;
        if all_bit_exact {
            sweep.bit_exact += 1;
        }
        if was_local {
            sweep.local += 1;
        } else {
            sweep.exchanging += 1;
        }
    }
    sweep
}

/// The line CI greps for (`shard-count invariance: verified ...`): every
/// query's merged state matched the oracle at every swept shard count, with
/// the bit-exact / float-tolerance split spelled out.
pub fn shard_invariance_line(s: &ShardSweep) -> String {
    format!(
        "shard-count invariance: verified {}/{} queries across shards {:?} \
         ({} bit-exact, {} within float tolerance; {} fully-local, {} exchanging)",
        s.verified,
        s.total,
        s.counts,
        s.bit_exact,
        s.total - s.bit_exact,
        s.local,
        s.exchanging
    )
}

/// JSON document for `BENCH_shard.json`.
pub fn shard_json(label: &str, config: &ExperimentConfig, s: &ShardSweep) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"label\": \"{}\",\n", json_escape(label)));
    out.push_str(&format!("  \"events\": {},\n", config.events));
    out.push_str(&format!("  \"seed\": {},\n", config.seed));
    out.push_str(&format!(
        "  \"shard_counts\": [{}],\n",
        s.counts
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  \"invariance\": {{\"verified\": {}, \"total\": {}, \"bit_exact\": {}, \
         \"fully_local\": {}, \"exchanging\": {}}},\n",
        s.verified, s.total, s.bit_exact, s.local, s.exchanging
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in s.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"shards\": {}, \"fully_local\": {}, \
             \"exchange_bytes\": {}, \"bit_exact\": {}}}{}\n",
            json_escape(&r.query),
            r.shards,
            r.fully_local,
            r.exchange_bytes,
            r.bit_exact,
            if i + 1 < s.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"results\": [\n");
    for (i, r) in s.results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ops_per_sec\": {:.1}, \"ops\": {}, \
             \"elapsed_secs\": {:.4}, \"plan\": \"{}\"}}{}\n",
            json_escape(&r.name),
            r.ops_per_sec,
            r.ops,
            r.elapsed_secs,
            json_escape(r.strategy.as_deref().unwrap_or("")),
            if i + 1 < s.results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_covers_all_queries() {
        let rows = figure2_rows();
        assert_eq!(rows.len(), workloads::all_queries().len());
        // PSP must be re-evaluated, Q17a incremental.
        let psp = rows.iter().find(|r| r.query == "psp").unwrap();
        assert!(psp.nested_strategy.contains('R'));
        let q17a = rows.iter().find(|r| r.query == "q17a").unwrap();
        assert!(q17a.nested_strategy.contains('I'));
        assert!(!format_figure2(&rows).is_empty());
    }

    #[test]
    fn small_refresh_rate_run_produces_sane_numbers() {
        let q = workloads::query("q6").unwrap();
        let data = dataset_for(Family::Tpch, 500, 1);
        let stats = run_stream(&q, CompileMode::HigherOrder, &data, Duration::from_secs(10));
        assert_eq!(stats.processed, data.events.len());
        assert!(stats.refresh_rate > 0.0);
        assert!(stats.memory_mb >= 0.0);
        // The run carries its own latency percentiles, one sample per event.
        let lat = stats.latency.expect("run_stream attaches telemetry");
        assert_eq!(lat.count, data.events.len() as u64);
        assert!(lat.p50_nanos > 0 && lat.p50_nanos <= lat.p99_nanos);
        assert!(lat.p99_nanos <= lat.max_nanos.max(lat.p99_nanos));
    }

    #[test]
    fn micro_json_latency_blocks_validate() {
        let results = vec![
            MicroResult {
                name: "with_latency".into(),
                ops_per_sec: 10.0,
                ops: 10,
                elapsed_secs: 1.0,
                latency: Some(HistogramSummary {
                    count: 10,
                    sum_nanos: 1000,
                    max_nanos: 200,
                    mean_nanos: 100.0,
                    p50_nanos: 90,
                    p90_nanos: 150,
                    p99_nanos: 190,
                }),
                ..Default::default()
            },
            MicroResult {
                name: "without".into(),
                ..Default::default()
            },
        ];
        let config = ExperimentConfig::default();
        let json = micro_json("test", &config, &results);
        assert_eq!(validate_latency_json(&json), Ok(1));
        // A document with no latency block at all must be rejected.
        let none = micro_json("test", &config, &results[1..]);
        assert!(validate_latency_json(&none).is_err());
        // A mangled block (missing field) must be rejected too.
        let broken = json.replace("\"p99_ns\"", "\"p99\"");
        assert!(validate_latency_json(&broken).is_err());
    }

    #[test]
    fn serve_run_matches_single_threaded_results() {
        let q = workloads::query("q6").unwrap();
        // Large enough that q6's date/discount/quantity filters match some rows.
        let data = dataset_for(Family::Tpch, 4000, 1);
        let (rate, _reads, deltas, processed) = serve_run(&q, &data, 2, true);
        assert_eq!(processed, data.events.len());
        assert!(rate > 0.0);
        assert!(deltas > 0, "subscription saw no output deltas");
        // The served result equals the single-threaded engine's result.
        let mut engine = build_engine(&q, CompileMode::HigherOrder, &data);
        engine.process_all(&data.events).unwrap();
        let expected = engine.result(q.name).unwrap().scalar();
        let served = build_engine(&q, CompileMode::HigherOrder, &data)
            .serve()
            .unwrap();
        let ingest = served.handle();
        for e in &data.events {
            ingest.send(e.clone()).unwrap();
        }
        served.flush().unwrap();
        let got = served.reader().query(q.name).unwrap().scalar();
        // The served run batches events into micro-batches whose batch-delta
        // execution may reassociate q6's float sum (see the float caveat in
        // `crates/agca/src/batch.rs`): equal up to relative rounding, not
        // necessarily bit-equal to the event-at-a-time order.
        let tol = 1e-9 * expected.abs().max(1.0);
        assert!(
            (got - expected).abs() <= tol,
            "served {got} vs single-threaded {expected}"
        );
    }

    #[test]
    fn trace_series_is_monotone_in_time() {
        let q = workloads::query("bsv").unwrap();
        let data = dataset_for(Family::Finance, 600, 1);
        let pts = trace_series(
            &q,
            CompileMode::HigherOrder,
            &data,
            5,
            Duration::from_secs(10),
        );
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!(w[1].time_minutes >= w[0].time_minutes);
            assert!(w[1].fraction > w[0].fraction);
        }
        assert!(!format_trace("bsv", CompileMode::HigherOrder, &pts).is_empty());
    }
}
