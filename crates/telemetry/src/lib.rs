//! # DBToaster telemetry
//!
//! Metrics, latency histograms and slow-batch traces for the whole pipeline:
//! a std-only, dependency-free measurement layer shared by the runtime engine,
//! the view server, the durability call sites and the benchmark harness.
//!
//! ## Design
//!
//! The paper's headline number is a *refresh rate*, so the engine's hot path
//! is measured in nanoseconds per event — the instrumentation must cost close
//! to nothing or it distorts the very number it reports. Three rules follow:
//!
//! 1. **Shared state is written with plain relaxed atomics.** Every counter,
//!    gauge and histogram bucket is an [`AtomicU64`] recorded with
//!    `Ordering::Relaxed`. The values are statistical: a metrics snapshot
//!    taken mid-record may see a bucket increment before the matching `count`
//!    increment (or vice versa), which skews a percentile readout by at most
//!    the records in flight — irrelevant at the sample counts involved.
//!    Nothing synchronizes *through* a metric, so no stronger ordering is
//!    needed, and on x86 a relaxed `fetch_add` is a single `lock xadd` with
//!    no fence. Readers never block writers: the only locks in the crate
//!    guard the registration lists (touched once per name) and the trace
//!    ring buffer (touched only by slow batches and by drains).
//! 2. **Single-writer hot paths use [`LocalHistogram`].** A relaxed atomic add
//!    is cheap but not free (~5-10ns); the engine's fastest compiled queries
//!    process an event in ~150ns, so even four atomic adds per event would
//!    blow a few-percent overhead budget. A `LocalHistogram` is a plain
//!    `u64` array owned by the writer — recording is an increment on an
//!    L1-resident line (~1-2ns) — and is folded into the shared
//!    [`Histogram`] by an explicit, amortized `flush_into` (the engine
//!    flushes every 64 batches). Metrics readers therefore see engine-side
//!    numbers with a bounded, documented lag; server-side stage guards
//!    record straight into shared histograms because their rate is per
//!    *micro-batch*, not per event.
//! 3. **The slow path is the only allocating path.** Recording, flushing and
//!    snapshotting never allocate on the writer thread; only assembling a
//!    [`SlowBatchTrace`] (for a batch that already blew a multi-millisecond
//!    threshold) builds owned strings and vectors.
//!
//! ## Bucket math
//!
//! Latencies are recorded in integer nanoseconds into a fixed 128-bucket
//! log-linear histogram (the HDR idea at a small, allocation-free footprint):
//! each power-of-two octave is split into 4 linear sub-buckets, so
//!
//! * values 0–3 ns map to buckets 0–3 exactly;
//! * a value `v ≥ 4` with `e = floor(log2 v)` maps to bucket
//!   `4·(e−1) + ((v >> (e−2)) & 3)`;
//! * bucket 127 is the overflow bucket: everything from ~7.5 s up.
//!
//! The math is pure integer work (`leading_zeros`, one shift, one mask) — no
//! floats on the record path. 32 octaves cover 1 ns .. ~8.6 s. A quantile
//! readout returns the midpoint of the bucket it lands in, so its relative
//! error is at most half a sub-bucket width: ±12.5% worst case. (Full
//! 2-significant-digit HDR fidelity would need ~64 sub-buckets per octave —
//! about 1800 buckets; 128 buckets keep every histogram on a handful of cache
//! lines, which is what lets the engine afford one per pipeline stage.)
//!
//! ## Overhead budget
//!
//! | path | cost | rate |
//! |---|---|---|
//! | `LocalHistogram::record` | ~1-2 ns (plain add) | per engine batch |
//! | kernel counters (`Cell<u64>` in the executor) | ~1 ns | per scan/statement |
//! | engine flush (fold locals + per-view pendings into atomics) | ~1-2 µs | every 64 batches |
//! | `Histogram::record` (shared, relaxed atomics) | ~20-30 ns | per server micro-batch / stage |
//! | `StageGuard` (two `Instant::now` + record) | ~60 ns | per server micro-batch / stage |
//! | trace assembly | allocates | only for batches over the slow threshold |
//!
//! The acceptance bar — fig6 micro throughput within 3% with telemetry
//! enabled — is met by keeping everything that runs per *event* in the first
//! two rows.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Number of histogram buckets (see the module docs for the bucket math).
pub const BUCKETS: usize = 128;

/// Sub-buckets per power-of-two octave.
const SUB: u64 = 4;

/// Map a nanosecond value to its bucket index. Pure integer math; monotone.
#[inline]
pub fn bucket_index(nanos: u64) -> usize {
    if nanos < SUB {
        return nanos as usize;
    }
    let e = 63 - nanos.leading_zeros() as u64; // e >= 2
    let sub = (nanos >> (e - 2)) & (SUB - 1);
    (((e - 1) * SUB + sub) as usize).min(BUCKETS - 1)
}

/// Inclusive lower bound of a bucket, in nanoseconds.
#[inline]
pub fn bucket_lower_bound(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let e = idx as u64 / SUB + 1;
    let sub = idx as u64 % SUB;
    (1u64 << e) + (sub << (e - 2))
}

/// The value a quantile readout reports for a bucket: exact for the first
/// octave, the bucket midpoint elsewhere (±12.5% worst-case relative error),
/// and the lower bound for the overflow bucket (the true maximum is reported
/// separately).
#[inline]
fn bucket_representative(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let lower = bucket_lower_bound(idx);
    if idx == BUCKETS - 1 {
        return lower;
    }
    let width = bucket_lower_bound(idx + 1) - lower;
    lower + width / 2
}

/// A fixed-size log-bucketed latency histogram on relaxed atomics. Concurrent
/// recorders and readers never block each other (see the module docs for the
/// ordering argument).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one nanosecond sample.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(nanos, Relaxed);
        self.max.fetch_max(nanos, Relaxed);
    }

    /// Record one duration sample.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A consistent-enough point-in-time readout (see the module docs on
    /// relaxed snapshots).
    pub fn summary(&self) -> HistogramSummary {
        let mut buckets = [0u64; BUCKETS];
        for (b, a) in buckets.iter_mut().zip(self.buckets.iter()) {
            *b = a.load(Relaxed);
        }
        // Percentiles walk the bucket copy, whose total can differ from the
        // `count` cell by records in flight; using the copy's own total keeps
        // the walk internally consistent.
        let count: u64 = buckets.iter().sum();
        let sum = self.sum.load(Relaxed);
        let max = self.max.load(Relaxed);
        let q = |quantile: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((quantile * count as f64).ceil() as u64).clamp(1, count);
            let mut cum = 0u64;
            for (i, &b) in buckets.iter().enumerate() {
                cum += b;
                if cum >= rank {
                    return bucket_representative(i).min(max.max(i as u64));
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum_nanos: sum,
            max_nanos: max,
            mean_nanos: if count > 0 {
                sum as f64 / count as f64
            } else {
                0.0
            },
            p50_nanos: q(0.50),
            p90_nanos: q(0.90),
            p99_nanos: q(0.99),
        }
    }
}

/// Percentile readout of one [`Histogram`]. All values in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum_nanos: u64,
    /// Largest sample (exact, not bucketed).
    pub max_nanos: u64,
    /// Mean sample.
    pub mean_nanos: f64,
    /// Median (bucket midpoint; ±12.5% worst case).
    pub p50_nanos: u64,
    /// 90th percentile.
    pub p90_nanos: u64,
    /// 99th percentile.
    pub p99_nanos: u64,
}

/// A single-writer histogram on plain `u64`s: recording costs one or two
/// L1-resident increments, and the owner folds it into a shared [`Histogram`]
/// with [`LocalHistogram::flush_into`] at its own (amortized) cadence. This is
/// what the engine's per-event path records into.
#[derive(Debug)]
pub struct LocalHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
    /// Smallest touched bucket index since the last flush, so a flush scans
    /// only the dirty range instead of all 128 buckets.
    lo: usize,
    hi: usize,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram::new()
    }
}

impl LocalHistogram {
    /// An empty local histogram.
    pub fn new() -> Self {
        LocalHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            lo: BUCKETS,
            hi: 0,
        }
    }

    /// Record one nanosecond sample (plain arithmetic, no atomics).
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        let idx = bucket_index(nanos);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(nanos);
        if nanos > self.max {
            self.max = nanos;
        }
        if idx < self.lo {
            self.lo = idx;
        }
        if idx + 1 > self.hi {
            self.hi = idx + 1;
        }
    }

    /// Samples recorded since the last flush.
    pub fn pending(&self) -> u64 {
        self.count
    }

    /// Fold the recorded samples into a shared histogram and reset. Touches
    /// only the dirty bucket range; allocation-free.
    pub fn flush_into(&mut self, shared: &Histogram) {
        if self.count == 0 {
            return;
        }
        for i in self.lo..self.hi {
            let b = self.buckets[i];
            if b > 0 {
                shared.buckets[i].fetch_add(b, Relaxed);
                self.buckets[i] = 0;
            }
        }
        shared.count.fetch_add(self.count, Relaxed);
        shared.sum.fetch_add(self.sum, Relaxed);
        shared.max.fetch_max(self.max, Relaxed);
        self.count = 0;
        self.sum = 0;
        self.max = 0;
        self.lo = BUCKETS;
        self.hi = 0;
    }
}

/// Pipeline stages with dedicated latency histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Writer thread blocked waiting on the ingest queue.
    IngestWait,
    /// WAL append + batch-boundary fsync, ahead of processing.
    WalAppend,
    /// Kernel execution of a relation run under the batch-delta strategy.
    KernelBatchDelta,
    /// Kernel execution of a relation run under the statement-major strategy.
    KernelStatementMajor,
    /// Kernel execution of a relation run under the entry-major strategy.
    KernelEntryMajor,
    /// Snapshot construction + epoch publish.
    SnapshotPublish,
    /// Subscription delta computation and fan-out.
    Fanout,
    /// Background checkpoint serialization + rename.
    CheckpointWrite,
    /// Recovery: checkpoint load + WAL replay at open.
    RecoveryReplay,
}

impl Stage {
    /// Every stage, in display order.
    pub const ALL: [Stage; 9] = [
        Stage::IngestWait,
        Stage::WalAppend,
        Stage::KernelBatchDelta,
        Stage::KernelStatementMajor,
        Stage::KernelEntryMajor,
        Stage::SnapshotPublish,
        Stage::Fanout,
        Stage::CheckpointWrite,
        Stage::RecoveryReplay,
    ];

    /// Stable snake_case name (Prometheus label value, JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Stage::IngestWait => "ingest_wait",
            Stage::WalAppend => "wal_append",
            Stage::KernelBatchDelta => "kernel_batch_delta",
            Stage::KernelStatementMajor => "kernel_statement_major",
            Stage::KernelEntryMajor => "kernel_entry_major",
            Stage::SnapshotPublish => "snapshot_publish",
            Stage::Fanout => "fanout",
            Stage::CheckpointWrite => "checkpoint_write",
            Stage::RecoveryReplay => "recovery_replay",
        }
    }
}

/// Per-view work counters, all relaxed atomics. The engine accumulates these
/// in plain pending cells and folds them in on its flush cadence; the kernel
/// scan counters cover the compiled path (the AST interpreter is a
/// differential-testing oracle, not a measured production path).
#[derive(Debug, Default)]
pub struct ViewCounters {
    /// Rows applied to the view by trigger statements (repetitions included).
    pub rows_written: AtomicU64,
    /// Fully bound index probes executed by compiled kernels against this view.
    pub probes: AtomicU64,
    /// Full scans executed against this view (plan scans and fused-prelude
    /// traversals).
    pub scans: AtomicU64,
    /// Entries visited by compiled-kernel scans targeting this view.
    pub entries_scanned: AtomicU64,
    /// Fused prelude scan executions.
    pub fused_scans: AtomicU64,
    /// Banded prelude lookups answered from the sorted prefix-sum cache.
    pub banded_hits: AtomicU64,
    /// Banded prelude lookups that bailed to a full traversal.
    pub banded_bails: AtomicU64,
    /// Second-order batch correction statements fired into this view.
    pub correction_firings: AtomicU64,
    /// Observed map size (entries) at the last engine flush — the input the
    /// correction-cap cost model needs.
    pub map_size: AtomicU64,
}

/// Point-in-time copy of one view's counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ViewSummary {
    /// View (map) name.
    pub name: String,
    /// See [`ViewCounters::rows_written`].
    pub rows_written: u64,
    /// See [`ViewCounters::probes`].
    pub probes: u64,
    /// See [`ViewCounters::scans`].
    pub scans: u64,
    /// See [`ViewCounters::entries_scanned`].
    pub entries_scanned: u64,
    /// See [`ViewCounters::fused_scans`].
    pub fused_scans: u64,
    /// See [`ViewCounters::banded_hits`].
    pub banded_hits: u64,
    /// See [`ViewCounters::banded_bails`].
    pub banded_bails: u64,
    /// See [`ViewCounters::correction_firings`].
    pub correction_firings: u64,
    /// See [`ViewCounters::map_size`].
    pub map_size: u64,
}

/// One per-statement span of a slow-batch trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StmtSpan {
    /// Target map of the statement.
    pub target: String,
    /// Wall time of the statement over the whole run, in nanoseconds
    /// (0 when the executing strategy does not time statements).
    pub nanos: u64,
    /// Rows the statement emitted.
    pub rows: u64,
}

/// One relation run of a slow-batch trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunSpan {
    /// Relation of the run.
    pub relation: String,
    /// Batch strategy that actually executed ("batch-delta",
    /// "statement-major", "entry-major").
    pub strategy: String,
    /// Events in the run.
    pub events: u64,
    /// Distinct delta entries in the run.
    pub entries: u64,
    /// Wall time of the run in nanoseconds (for single-run batches this is
    /// the whole batch's measurement).
    pub nanos: u64,
    /// Second-order correction statements fired for the run.
    pub correction_firings: u64,
    /// Per-statement spans, present when the batch was large enough to arm
    /// statement timing (see [`TelemetryConfig::trace_arm_min_events`]).
    pub statements: Vec<StmtSpan>,
}

/// A structured trace of one batch that exceeded the slow threshold.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SlowBatchTrace {
    /// Monotone trace sequence number.
    pub seq: u64,
    /// Total batch wall time in nanoseconds.
    pub elapsed_nanos: u64,
    /// The threshold the batch exceeded.
    pub threshold_nanos: u64,
    /// Events in the batch.
    pub events: u64,
    /// Per-run span tree.
    pub runs: Vec<RunSpan>,
}

impl SlowBatchTrace {
    /// Render as one JSON line (hand-rolled; the workspace builds without a
    /// JSON dependency).
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"elapsed_ns\":{},\"threshold_ns\":{},\"events\":{},\"runs\":[",
            self.seq, self.elapsed_nanos, self.threshold_nanos, self.events
        );
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"relation\":\"{}\",\"strategy\":\"{}\",\"events\":{},\"entries\":{},\
                 \"ns\":{},\"correction_firings\":{},\"statements\":[",
                json_escape(&r.relation),
                json_escape(&r.strategy),
                r.events,
                r.entries,
                r.nanos,
                r.correction_firings
            ));
            for (j, s) in r.statements.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"target\":\"{}\",\"ns\":{},\"rows\":{}}}",
                    json_escape(&s.target),
                    s.nanos,
                    s.rows
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string for a JSON string literal (shared by the trace renderer,
/// the EXPLAIN JSON form and the HTTP exporter's `/views` endpoint).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Telemetry knobs.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Batches slower than this get a [`SlowBatchTrace`] in the ring buffer.
    pub slow_batch_threshold: Duration,
    /// Ring-buffer capacity; the oldest trace is dropped when full.
    pub trace_capacity: usize,
    /// Minimum events in a batch before per-statement timing is armed (small
    /// batches skip the per-statement `Instant` pairs so the per-event hot
    /// path stays clock-free).
    pub trace_arm_min_events: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            slow_batch_threshold: Duration::from_millis(10),
            trace_capacity: 32,
            trace_arm_min_events: 16,
        }
    }
}

struct Inner {
    config: TelemetryConfig,
    /// Whole-batch (ingest-to-applied) latency.
    batch: Histogram,
    /// One histogram per [`Stage`], indexed by position in [`Stage::ALL`].
    stages: [Histogram; Stage::ALL.len()],
    /// Named counters: registration takes the lock once per name; the handles
    /// are lock-free afterwards.
    counters: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    /// Named gauges, same discipline; rendered with TYPE `gauge` so values
    /// may go down (e.g. the `degraded` flag) without breaking scrapers.
    gauges: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    /// Per-view counters, same registration discipline.
    views: Mutex<Vec<(String, Arc<ViewCounters>)>>,
    /// Slow-batch trace ring buffer.
    traces: Mutex<VecDeque<SlowBatchTrace>>,
    trace_seq: AtomicU64,
    /// Canonical pipeline counters (the single source both `EngineStats`
    /// mirrors and the bench harness report from).
    events: AtomicU64,
    batches: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A cheap, cloneable telemetry handle. [`Telemetry::disabled`] carries no
/// state at all: every record path starts with one `is_some` branch and the
/// compiler drops the rest, keeping the zero-allocation hot path intact.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Telemetry {
    /// An enabled handle with the given config.
    pub fn with_config(config: TelemetryConfig) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                batch: Histogram::new(),
                stages: std::array::from_fn(|_| Histogram::new()),
                counters: Mutex::new(Vec::new()),
                gauges: Mutex::new(Vec::new()),
                views: Mutex::new(Vec::new()),
                traces: Mutex::new(VecDeque::with_capacity(config.trace_capacity)),
                trace_seq: AtomicU64::new(0),
                events: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                config,
            })),
        }
    }

    /// An enabled handle with default config.
    pub fn enabled() -> Self {
        Telemetry::with_config(TelemetryConfig::default())
    }

    /// The no-op handle.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Is this a recording handle?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The active config (None when disabled).
    pub fn config(&self) -> Option<&TelemetryConfig> {
        self.inner.as_ref().map(|i| &i.config)
    }

    /// The whole-batch latency histogram (None when disabled).
    pub fn batch_hist(&self) -> Option<&Histogram> {
        self.inner.as_ref().map(|i| &i.batch)
    }

    /// One stage's histogram (None when disabled).
    pub fn stage_hist(&self, stage: Stage) -> Option<&Histogram> {
        self.inner
            .as_ref()
            .map(|i| &i.stages[Stage::ALL.iter().position(|s| *s == stage).unwrap()])
    }

    /// Record one stage duration.
    #[inline]
    pub fn record_stage(&self, stage: Stage, d: Duration) {
        if let Some(h) = self.stage_hist(stage) {
            h.record_duration(d);
        }
    }

    /// A drop guard that records the elapsed time into a stage histogram.
    /// Disabled handles never read the clock.
    pub fn stage_guard(&self, stage: Stage) -> StageGuard<'_> {
        StageGuard {
            hist: self.stage_hist(stage).map(|h| (h, Instant::now())),
        }
    }

    /// A named counter handle; registration locks once per distinct name,
    /// increments are lock-free. Disabled handles return a detached counter.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter { cell: None };
        };
        let mut reg = lock(&inner.counters);
        if let Some((_, c)) = reg.iter().find(|(n, _)| n == name) {
            return Counter {
                cell: Some(c.clone()),
            };
        }
        let cell = Arc::new(AtomicU64::new(0));
        reg.push((name.to_string(), cell.clone()));
        Counter { cell: Some(cell) }
    }

    /// A named gauge handle — identical mechanics to [`Telemetry::counter`]
    /// but exported with Prometheus TYPE `gauge`, so the value may move in
    /// both directions (use [`Counter::set`]).
    pub fn gauge(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter { cell: None };
        };
        let mut reg = lock(&inner.gauges);
        if let Some((_, c)) = reg.iter().find(|(n, _)| n == name) {
            return Counter {
                cell: Some(c.clone()),
            };
        }
        let cell = Arc::new(AtomicU64::new(0));
        reg.push((name.to_string(), cell.clone()));
        Counter { cell: Some(cell) }
    }

    /// The per-view counter block for a view, registering it on first use
    /// (None when disabled). Callers cache the `Arc` so the hot path never
    /// sees the registry lock.
    pub fn view(&self, name: &str) -> Option<Arc<ViewCounters>> {
        let inner = self.inner.as_ref()?;
        let mut reg = lock(&inner.views);
        if let Some((_, v)) = reg.iter().find(|(n, _)| n == name) {
            return Some(v.clone());
        }
        let v = Arc::new(ViewCounters::default());
        reg.push((name.to_string(), v.clone()));
        Some(v)
    }

    /// Add to the canonical event/batch counters (the engine folds its
    /// deltas in on each flush).
    pub fn add_events(&self, events: u64, batches: u64) {
        if let Some(inner) = &self.inner {
            inner.events.fetch_add(events, Relaxed);
            inner.batches.fetch_add(batches, Relaxed);
        }
    }

    /// Canonical events processed (0 when disabled).
    pub fn events(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.events.load(Relaxed))
    }

    /// Push a slow-batch trace, evicting the oldest when the ring is full.
    /// Returns the assigned sequence number.
    pub fn push_trace(&self, mut trace: SlowBatchTrace) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let seq = inner.trace_seq.fetch_add(1, Relaxed);
        trace.seq = seq;
        let mut ring = lock(&inner.traces);
        if ring.len() >= inner.config.trace_capacity.max(1) {
            ring.pop_front();
        }
        ring.push_back(trace);
        seq
    }

    /// Drain all pending slow-batch traces, oldest first.
    pub fn drain_traces(&self) -> Vec<SlowBatchTrace> {
        match &self.inner {
            Some(inner) => lock(&inner.traces).drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Drain all pending traces as JSON lines (one object per line).
    pub fn drain_traces_json(&self) -> String {
        let mut out = String::new();
        for t in self.drain_traces() {
            out.push_str(&t.to_json_line());
            out.push('\n');
        }
        out
    }

    /// A consistent point-in-time snapshot of every metric. Never blocks
    /// recorders: the registry locks guard only the name lists, which
    /// recorders do not touch after registration.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = lock(&inner.counters)
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Relaxed)))
            .collect();
        let gauges = lock(&inner.gauges)
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Relaxed)))
            .collect();
        let views = lock(&inner.views)
            .iter()
            .map(|(n, v)| ViewSummary {
                name: n.clone(),
                rows_written: v.rows_written.load(Relaxed),
                probes: v.probes.load(Relaxed),
                scans: v.scans.load(Relaxed),
                entries_scanned: v.entries_scanned.load(Relaxed),
                fused_scans: v.fused_scans.load(Relaxed),
                banded_hits: v.banded_hits.load(Relaxed),
                banded_bails: v.banded_bails.load(Relaxed),
                correction_firings: v.correction_firings.load(Relaxed),
                map_size: v.map_size.load(Relaxed),
            })
            .collect();
        MetricsSnapshot {
            enabled: true,
            events: inner.events.load(Relaxed),
            batches: inner.batches.load(Relaxed),
            batch_latency: inner.batch.summary(),
            stages: Stage::ALL
                .iter()
                .zip(inner.stages.iter())
                .map(|(s, h)| (*s, h.summary()))
                .collect(),
            counters,
            gauges,
            views,
            traces_pending: lock(&inner.traces).len(),
        }
    }

    /// Prometheus text exposition of a fresh snapshot.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// A drop guard recording elapsed wall time into a stage histogram.
pub struct StageGuard<'a> {
    hist: Option<(&'a Histogram, Instant)>,
}

impl Drop for StageGuard<'_> {
    fn drop(&mut self) {
        if let Some((h, start)) = self.hist.take() {
            h.record_duration(start.elapsed());
        }
    }
}

/// A named counter handle (lock-free; no-op when detached).
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Add to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(n, Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Store an absolute value (gauge semantics).
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.store(v, Relaxed);
        }
    }

    /// Current value (0 when detached).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Relaxed))
    }
}

/// Point-in-time copy of every metric a [`Telemetry`] handle holds.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// False for the snapshot of a disabled handle (everything else empty).
    pub enabled: bool,
    /// Canonical events processed.
    pub events: u64,
    /// Canonical batches processed.
    pub batches: u64,
    /// Whole-batch latency percentiles.
    pub batch_latency: HistogramSummary,
    /// Per-stage latency percentiles, in [`Stage::ALL`] order.
    pub stages: Vec<(Stage, HistogramSummary)>,
    /// Registered named counters.
    pub counters: Vec<(String, u64)>,
    /// Registered named gauges.
    pub gauges: Vec<(String, u64)>,
    /// Per-view work counters and observed map sizes.
    pub views: Vec<ViewSummary>,
    /// Slow-batch traces waiting in the ring buffer.
    pub traces_pending: usize,
}

impl MetricsSnapshot {
    /// One stage's summary.
    pub fn stage(&self, stage: Stage) -> Option<&HistogramSummary> {
        self.stages
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, h)| h)
    }

    /// One view's summary.
    pub fn view(&self, name: &str) -> Option<&ViewSummary> {
        self.views.iter().find(|v| v.name == name)
    }

    /// Prometheus text exposition (summary metrics with quantile labels,
    /// counters and gauges). Conforms to the text format version 0.0.4:
    /// every metric family gets `# HELP` and `# TYPE` lines and label values
    /// are escaped; serve it with [`PROMETHEUS_CONTENT_TYPE`].
    pub fn render_prometheus(&self) -> String {
        let secs = |ns: u64| ns as f64 / 1e9;
        let mut out = String::new();
        let header = |out: &mut String, name: &str, help: &str, kind: &str| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n",
                help = prometheus_escape_help(help)
            ));
        };
        header(
            &mut out,
            "dbtoaster_events_total",
            "Update events folded into the views.",
            "counter",
        );
        out.push_str(&format!("dbtoaster_events_total {}\n", self.events));
        header(
            &mut out,
            "dbtoaster_batches_total",
            "Delta batches processed.",
            "counter",
        );
        out.push_str(&format!("dbtoaster_batches_total {}\n", self.batches));
        header(
            &mut out,
            "dbtoaster_batch_seconds",
            "Whole-batch processing latency.",
            "summary",
        );
        let b = &self.batch_latency;
        for (q, v) in [(0.5, b.p50_nanos), (0.9, b.p90_nanos), (0.99, b.p99_nanos)] {
            out.push_str(&format!(
                "dbtoaster_batch_seconds{{quantile=\"{q}\"}} {:e}\n",
                secs(v)
            ));
        }
        out.push_str(&format!("dbtoaster_batch_seconds_count {}\n", b.count));
        out.push_str(&format!(
            "dbtoaster_batch_seconds_sum {:e}\n",
            secs(b.sum_nanos)
        ));
        header(
            &mut out,
            "dbtoaster_batch_seconds_max",
            "Largest observed batch latency.",
            "gauge",
        );
        out.push_str(&format!(
            "dbtoaster_batch_seconds_max {:e}\n",
            secs(b.max_nanos)
        ));
        header(
            &mut out,
            "dbtoaster_stage_seconds",
            "Per-pipeline-stage latency.",
            "summary",
        );
        for (stage, h) in &self.stages {
            let name = stage.name();
            for (q, v) in [(0.5, h.p50_nanos), (0.9, h.p90_nanos), (0.99, h.p99_nanos)] {
                out.push_str(&format!(
                    "dbtoaster_stage_seconds{{stage=\"{name}\",quantile=\"{q}\"}} {:e}\n",
                    secs(v)
                ));
            }
            out.push_str(&format!(
                "dbtoaster_stage_seconds_count{{stage=\"{name}\"}} {}\n",
                h.count
            ));
            out.push_str(&format!(
                "dbtoaster_stage_seconds_sum{{stage=\"{name}\"}} {:e}\n",
                secs(h.sum_nanos)
            ));
        }
        for (name, v) in &self.counters {
            header(
                &mut out,
                &format!("dbtoaster_{name}"),
                "Registered named counter.",
                "counter",
            );
            out.push_str(&format!("dbtoaster_{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            header(
                &mut out,
                &format!("dbtoaster_{name}"),
                "Registered named gauge.",
                "gauge",
            );
            out.push_str(&format!("dbtoaster_{name} {v}\n"));
        }
        let view_counter =
            |out: &mut String, metric: &str, help: &str, get: &dyn Fn(&ViewSummary) -> u64| {
                header(out, &format!("dbtoaster_view_{metric}"), help, "counter");
                for v in &self.views {
                    out.push_str(&format!(
                        "dbtoaster_view_{metric}{{view=\"{}\"}} {}\n",
                        prometheus_escape_label(&v.name),
                        get(v)
                    ));
                }
            };
        view_counter(
            &mut out,
            "rows_written_total",
            "Rows applied to the view by trigger statements.",
            &|v| v.rows_written,
        );
        view_counter(
            &mut out,
            "probes_total",
            "Fully bound index probes executed against the view.",
            &|v| v.probes,
        );
        view_counter(
            &mut out,
            "scans_total",
            "Full scans executed against the view.",
            &|v| v.scans,
        );
        view_counter(
            &mut out,
            "entries_scanned_total",
            "Entries visited by kernel scans of the view.",
            &|v| v.entries_scanned,
        );
        view_counter(
            &mut out,
            "fused_scans_total",
            "Fused prelude scan executions.",
            &|v| v.fused_scans,
        );
        view_counter(
            &mut out,
            "banded_hits_total",
            "Banded prelude lookups answered from the sorted cache.",
            &|v| v.banded_hits,
        );
        view_counter(
            &mut out,
            "banded_bails_total",
            "Banded prelude lookups that fell back to a full traversal.",
            &|v| v.banded_bails,
        );
        view_counter(
            &mut out,
            "correction_firings_total",
            "Second-order batch correction statements fired into the view.",
            &|v| v.correction_firings,
        );
        header(
            &mut out,
            "dbtoaster_view_map_size",
            "Observed view size in entries at the last engine flush.",
            "gauge",
        );
        for v in &self.views {
            out.push_str(&format!(
                "dbtoaster_view_map_size{{view=\"{}\"}} {}\n",
                prometheus_escape_label(&v.name),
                v.map_size
            ));
        }
        out
    }
}

/// The Content-Type an HTTP exporter must send with
/// [`MetricsSnapshot::render_prometheus`] output.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escape a Prometheus label *value*: backslash, double quote and newline.
pub fn prometheus_escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Merge several already-rendered Prometheus expositions into one, tagging
/// every sample with an instance label (e.g. `shard="0"`). Used by the
/// sharded view server to expose per-shard metric families on a single
/// `/metrics` endpoint without re-implementing the render.
///
/// Families keep their `# HELP`/`# TYPE` headers exactly once (first
/// occurrence wins) and all samples of a family are grouped together, as the
/// text format requires; within a family, samples appear in `parts` order.
pub fn merge_prometheus_labeled(label_key: &str, parts: &[(String, String)]) -> String {
    // family name (from its header block) → (header lines, sample lines)
    let mut order: Vec<String> = Vec::new();
    let mut families: std::collections::HashMap<String, (String, String)> =
        std::collections::HashMap::new();
    for (label_value, rendered) in parts {
        let label = format!("{label_key}=\"{}\"", prometheus_escape_label(label_value));
        let mut current: Option<String> = None;
        for line in rendered.lines() {
            if let Some(rest) = line.strip_prefix("# ") {
                // "# HELP <name> ..." / "# TYPE <name> ...": key on <name>.
                let name = rest
                    .split_whitespace()
                    .nth(1)
                    .unwrap_or_default()
                    .to_string();
                if !families.contains_key(&name) {
                    order.push(name.clone());
                    families.insert(name.clone(), (String::new(), String::new()));
                }
                let fam = families.get_mut(&name).expect("inserted above");
                // Every shard renders identical headers; keep each line once.
                if !fam.0.lines().any(|l| l == line) {
                    fam.0.push_str(line);
                    fam.0.push('\n');
                }
                current = Some(name);
                continue;
            }
            if line.is_empty() {
                continue;
            }
            // A sample: inject the instance label at the first '{', or before
            // the first space when the sample has no label set.
            let fam_name = current.clone().unwrap_or_else(|| {
                line.split(['{', ' '])
                    .next()
                    .unwrap_or_default()
                    .to_string()
            });
            if !families.contains_key(&fam_name) {
                order.push(fam_name.clone());
                families.insert(fam_name.clone(), (String::new(), String::new()));
            }
            let fam = families.get_mut(&fam_name).expect("inserted above");
            let labeled = match line.find('{') {
                Some(i) if i < line.find(' ').unwrap_or(usize::MAX) => {
                    format!("{}{{{label},{}", &line[..i], &line[i + 1..])
                }
                _ => match line.find(' ') {
                    Some(i) => format!("{}{{{label}}}{}", &line[..i], &line[i..]),
                    None => line.to_string(),
                },
            };
            fam.1.push_str(&labeled);
            fam.1.push('\n');
        }
    }
    let mut out = String::new();
    for name in &order {
        let (header, samples) = &families[name];
        out.push_str(header);
        out.push_str(samples);
    }
    out
}

/// Escape a `# HELP` docstring: backslash and newline (quotes stay literal).
fn prometheus_escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_prometheus_groups_families_and_labels_samples() {
        let a = "# HELP m_total Things.\n# TYPE m_total counter\nm_total 3\n\
                 # HELP v_total Per view.\n# TYPE v_total counter\nv_total{view=\"X\"} 1\n";
        let b = "# HELP m_total Things.\n# TYPE m_total counter\nm_total 5\n\
                 # HELP v_total Per view.\n# TYPE v_total counter\nv_total{view=\"X\"} 2\n";
        let merged = merge_prometheus_labeled(
            "shard",
            &[
                ("0".to_string(), a.to_string()),
                ("1".to_string(), b.to_string()),
            ],
        );
        let lines: Vec<&str> = merged.lines().collect();
        assert_eq!(
            lines,
            vec![
                "# HELP m_total Things.",
                "# TYPE m_total counter",
                "m_total{shard=\"0\"} 3",
                "m_total{shard=\"1\"} 5",
                "# HELP v_total Per view.",
                "# TYPE v_total counter",
                "v_total{shard=\"0\",view=\"X\"} 1",
                "v_total{shard=\"1\",view=\"X\"} 2",
            ]
        );
    }

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let mut prev = 0usize;
        for v in 0..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            assert!(
                v >= bucket_lower_bound(idx),
                "v={v} below its bucket's lower bound"
            );
            if idx < BUCKETS - 1 {
                assert!(
                    v < bucket_lower_bound(idx + 1),
                    "v={v} at or above the next bucket's lower bound"
                );
            }
            prev = idx;
        }
        // Exact first octave.
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
        }
        // Octave boundaries land on sub-bucket 0.
        for e in 2..32u64 {
            assert_eq!(bucket_index(1 << e), ((e - 1) * 4) as usize);
        }
    }

    #[test]
    fn overflow_bucket_catches_everything_large() {
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1 << 40), BUCKETS - 1);
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.max_nanos, u64::MAX);
        // The percentile readout reports the overflow bucket's lower bound,
        // never more than the recorded max.
        assert_eq!(s.p99_nanos, bucket_lower_bound(BUCKETS - 1));
    }

    #[test]
    fn zero_sample_summary_is_all_zero() {
        let s = Histogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_nanos, 0);
        assert_eq!(s.p99_nanos, 0);
        assert_eq!(s.max_nanos, 0);
        assert_eq!(s.mean_nanos, 0.0);
    }

    #[test]
    fn percentiles_land_within_bucket_error() {
        // A uniform 1..=100_000ns distribution: the true p50 is 50_000ns and
        // the bucketed readout must stay within the ±12.5% sub-bucket bound.
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 100_000);
        for (got, want) in [(s.p50_nanos, 50_000.0), (s.p90_nanos, 90_000.0)] {
            let rel = (got as f64 - want).abs() / want;
            assert!(
                rel <= 0.125,
                "percentile {got} vs true {want}: off by {rel}"
            );
        }
        assert!(s.p50_nanos <= s.p90_nanos && s.p90_nanos <= s.p99_nanos);
        assert_eq!(s.max_nanos, 100_000);
        assert!(s.p99_nanos <= s.max_nanos);
    }

    #[test]
    fn local_histogram_flush_matches_direct_recording() {
        let direct = Histogram::new();
        let shared = Histogram::new();
        let mut local = LocalHistogram::new();
        for v in [0u64, 3, 17, 900, 1 << 20, 1 << 40] {
            direct.record(v);
            local.record(v);
        }
        local.flush_into(&shared);
        local.flush_into(&shared); // second flush must be a no-op
        let (a, b) = (direct.summary(), shared.summary());
        assert_eq!(a.count, b.count);
        assert_eq!(a.sum_nanos, b.sum_nanos);
        assert_eq!(a.max_nanos, b.max_nanos);
        assert_eq!(a.p50_nanos, b.p50_nanos);
        assert_eq!(a.p99_nanos, b.p99_nanos);
    }

    /// Readers never block the writer: a recording thread pushes a known
    /// number of samples, counter bumps and traces while another thread
    /// hammers `snapshot()` + `render_prometheus()`. Every intermediate
    /// snapshot must be sane (monotone counts, never exceeding the total) and
    /// the final snapshot exact.
    #[test]
    fn snapshot_never_blocks_or_corrupts_the_writer() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        const SAMPLES: u64 = 1_000_000;
        let tel = Telemetry::with_config(TelemetryConfig {
            slow_batch_threshold: Duration::from_nanos(0),
            trace_capacity: 8,
            ..TelemetryConfig::default()
        });
        let view = tel.view("V").unwrap();
        let counter = tel.counter("custom_total");
        let done = Arc::new(AtomicBool::new(false));

        let reader = {
            let tel = tel.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut snaps = 0u64;
                let mut last_events = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let s = tel.snapshot();
                    assert!(s.enabled);
                    assert!(s.events >= last_events, "events went backwards");
                    assert!(s.events <= SAMPLES);
                    assert!(s.batch_latency.count <= SAMPLES);
                    let v = s.view("V").unwrap();
                    assert!(v.rows_written <= SAMPLES);
                    let text = s.render_prometheus();
                    assert!(text.contains("dbtoaster_events_total"));
                    last_events = s.events;
                    snaps += 1;
                }
                snaps
            })
        };

        let hist = tel.batch_hist().unwrap();
        for i in 0..SAMPLES {
            hist.record(i % 10_000);
            view.rows_written.fetch_add(1, Ordering::Relaxed);
            counter.inc();
            tel.add_events(1, 1);
            if i % 100_000 == 0 {
                tel.push_trace(SlowBatchTrace {
                    seq: i,
                    elapsed_nanos: 1,
                    threshold_nanos: 0,
                    events: 1,
                    runs: Vec::new(),
                });
            }
        }
        done.store(true, Ordering::Relaxed);
        let snaps = reader.join().unwrap();
        assert!(snaps > 0, "reader never completed a snapshot");

        let s = tel.snapshot();
        assert_eq!(s.events, SAMPLES);
        assert_eq!(s.batches, SAMPLES);
        assert_eq!(s.batch_latency.count, SAMPLES);
        assert_eq!(s.view("V").unwrap().rows_written, SAMPLES);
        assert_eq!(
            s.counters
                .iter()
                .find(|(n, _)| n == "custom_total")
                .unwrap()
                .1,
            SAMPLES
        );
        // The trace ring kept only the newest `trace_capacity` traces.
        let traces = tel.drain_traces();
        assert_eq!(traces.len(), 8);
        assert!(traces.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn trace_json_lines_are_escaped_and_structured() {
        let tel = Telemetry::with_config(TelemetryConfig::default());
        tel.push_trace(SlowBatchTrace {
            seq: 7,
            elapsed_nanos: 42,
            threshold_nanos: 10,
            events: 3,
            runs: vec![RunSpan {
                relation: "R\"x\"".into(),
                strategy: "batch-delta".into(),
                events: 3,
                entries: 2,
                nanos: 40,
                correction_firings: 1,
                statements: vec![StmtSpan {
                    target: "V".into(),
                    nanos: 12,
                    rows: 5,
                }],
            }],
        });
        let lines = tel.drain_traces_json();
        assert_eq!(lines.lines().count(), 1);
        // `push_trace` assigns the ring's own sequence number (first push = 0).
        assert!(lines.contains("\"seq\":0"));
        assert!(
            lines.contains("R\\\"x\\\""),
            "relation name not escaped: {lines}"
        );
        assert!(lines.contains("\"strategy\":\"batch-delta\""));
        assert!(lines.contains("\"rows\":5"));
        // Disabled handles drop traces and render nothing.
        let off = Telemetry::disabled();
        off.push_trace(SlowBatchTrace {
            seq: 1,
            elapsed_nanos: 1,
            threshold_nanos: 1,
            events: 1,
            runs: Vec::new(),
        });
        assert!(off.drain_traces().is_empty());
        assert!(!off.snapshot().enabled);
    }
}
