//! Prometheus text-format (version 0.0.4) conformance tests for
//! [`MetricsSnapshot::render_prometheus`].
//!
//! Checked properties: every sample line parses; metric and label names stay
//! inside the spec's charsets; every sample belongs to a family announced by
//! `# HELP` and `# TYPE` lines *before* its first sample; label values with
//! hostile characters are escaped; and counter families are monotone across
//! successive snapshots.
//!
//! [`MetricsSnapshot::render_prometheus`]: dbtoaster_telemetry::MetricsSnapshot::render_prometheus

use dbtoaster_telemetry::{Stage, Telemetry, TelemetryConfig, PROMETHEUS_CONTENT_TYPE};
use std::collections::HashMap;
use std::sync::atomic::Ordering::Relaxed;
use std::time::Duration;

/// A telemetry handle with every metric family populated, including a view
/// whose name needs label-value escaping.
fn populated() -> Telemetry {
    let tel = Telemetry::with_config(TelemetryConfig::default());
    tel.batch_hist()
        .unwrap()
        .record_duration(Duration::from_micros(120));
    tel.batch_hist()
        .unwrap()
        .record_duration(Duration::from_micros(80));
    tel.add_events(2, 2);
    tel.record_stage(Stage::WalAppend, Duration::from_micros(40));
    tel.record_stage(Stage::KernelBatchDelta, Duration::from_micros(25));
    tel.counter("ingest_retries").add(3);
    // The durability self-healing family: counters plus a level gauge.
    tel.counter("io_retries").add(2);
    tel.counter("io_errors_transient").inc();
    tel.counter("io_errors_permanent").inc();
    tel.counter("degraded_transitions").add(2);
    tel.gauge("degraded").set(1);
    let v = tel.view("m_axf_1").unwrap();
    v.rows_written.fetch_add(7, Relaxed);
    v.probes.fetch_add(5, Relaxed);
    v.scans.fetch_add(2, Relaxed);
    v.entries_scanned.fetch_add(40, Relaxed);
    v.map_size.store(13, Relaxed);
    let evil = tel.view("weird\"name\\with\nnewline").unwrap();
    evil.rows_written.fetch_add(1, Relaxed);
    tel
}

#[derive(Debug)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn is_valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse one sample line (`name{label="value",...} value`), failing the test
/// on any syntax the spec does not allow.
fn parse_sample(line: &str) -> Sample {
    let (name_and_labels, value) = match line.rfind(' ') {
        Some(i) => (&line[..i], &line[i + 1..]),
        None => panic!("sample line without a value: {line:?}"),
    };
    let value: f64 = match value {
        "NaN" => f64::NAN,
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v
            .parse()
            .unwrap_or_else(|_| panic!("unparseable sample value {v:?} in {line:?}")),
    };
    let (name, labels) = match name_and_labels.split_once('{') {
        None => (name_and_labels.to_string(), Vec::new()),
        Some((name, rest)) => {
            let rest = rest
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unclosed label set in {line:?}"));
            let mut labels = Vec::new();
            let mut chars = rest.chars().peekable();
            while chars.peek().is_some() {
                let mut lname = String::new();
                for c in chars.by_ref() {
                    if c == '=' {
                        break;
                    }
                    lname.push(c);
                }
                assert_eq!(
                    chars.next(),
                    Some('"'),
                    "label value must be quoted: {line:?}"
                );
                let mut lval = String::new();
                loop {
                    match chars.next() {
                        Some('\\') => match chars.next() {
                            Some('\\') => lval.push('\\'),
                            Some('"') => lval.push('"'),
                            Some('n') => lval.push('\n'),
                            other => panic!("bad escape {other:?} in {line:?}"),
                        },
                        Some('"') => break,
                        Some(c) => {
                            assert!(c != '\n', "raw newline in label value: {line:?}");
                            lval.push(c);
                        }
                        None => panic!("unterminated label value in {line:?}"),
                    }
                }
                if chars.peek() == Some(&',') {
                    chars.next();
                }
                labels.push((lname, lval));
            }
            (name.to_string(), labels)
        }
    };
    Sample {
        name,
        labels,
        value,
    }
}

struct Exposition {
    samples: Vec<Sample>,
    /// family name -> declared TYPE.
    types: HashMap<String, String>,
    /// family name -> HELP text present?
    helps: HashMap<String, bool>,
}

fn parse_exposition(text: &str) -> Exposition {
    let mut samples = Vec::new();
    let mut types = HashMap::new();
    let mut helps = HashMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("HELP without text: {line:?}"));
            helps.insert(name.to_string(), true);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("TYPE without kind: {line:?}"));
            assert!(
                ["counter", "gauge", "summary", "histogram", "untyped"].contains(&kind),
                "invalid TYPE kind: {line:?}"
            );
            // HELP must precede TYPE, and each family is declared before any
            // of its samples appear (samples were all parsed earlier or later;
            // ordering is asserted below via the declared-before-sample check).
            assert!(helps.contains_key(name), "TYPE before HELP for {name}");
            types.insert(name.to_string(), kind.to_string());
        } else if line.starts_with('#') {
            // plain comment: allowed
        } else {
            let sample = parse_sample(line);
            // The family must already be declared when its sample appears.
            assert!(
                family_of(&sample.name, &types).is_some(),
                "sample {} appears before its # TYPE declaration",
                sample.name
            );
            samples.push(sample);
        }
    }
    Exposition {
        samples,
        types,
        helps,
    }
}

/// Resolve a sample name to its declared family, honouring the summary
/// sub-sample suffixes (`_sum`, `_count`).
fn family_of(name: &str, types: &HashMap<String, String>) -> Option<String> {
    if types.contains_key(name) {
        return Some(name.to_string());
    }
    for suffix in ["_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types
                .get(base)
                .is_some_and(|k| k == "summary" || k == "histogram")
            {
                return Some(base.to_string());
            }
        }
    }
    None
}

#[test]
fn content_type_is_the_v0_0_4_text_format() {
    assert_eq!(PROMETHEUS_CONTENT_TYPE, "text/plain; version=0.0.4");
}

#[test]
fn every_sample_parses_with_conformant_names_and_declared_family() {
    let tel = populated();
    let text = tel.render_prometheus();
    let exp = parse_exposition(&text);
    assert!(!exp.samples.is_empty(), "exposition rendered no samples");
    for s in &exp.samples {
        assert!(
            is_valid_metric_name(&s.name),
            "bad metric name {:?}",
            s.name
        );
        for (lname, _) in &s.labels {
            assert!(
                is_valid_label_name(lname),
                "bad label name {lname:?} on {}",
                s.name
            );
        }
        let family = family_of(&s.name, &exp.types)
            .unwrap_or_else(|| panic!("sample {} has no TYPE declaration", s.name));
        assert!(
            *exp.helps.get(&family).unwrap_or(&false),
            "family {family} has no HELP line"
        );
    }
    // Summary families carry quantile samples plus _sum and _count.
    for (family, kind) in &exp.types {
        if kind == "summary" {
            for suffix in ["_sum", "_count"] {
                let full = format!("{family}{suffix}");
                assert!(
                    exp.samples.iter().any(|s| s.name == full),
                    "summary {family} missing {full}"
                );
            }
        }
    }
}

#[test]
fn hostile_view_names_are_escaped_in_label_values() {
    let tel = populated();
    let text = tel.render_prometheus();
    // The raw name must never appear unescaped; the escaped form must.
    assert!(text.contains("weird\\\"name\\\\with\\nnewline"), "{text}");
    // Parsing recovers the original name from at least one sample's label.
    let exp = parse_exposition(&text);
    assert!(
        exp.samples.iter().any(|s| {
            s.labels
                .iter()
                .any(|(_, v)| v == "weird\"name\\with\nnewline")
        }),
        "escaped label value did not round-trip"
    );
}

#[test]
fn counters_are_monotone_across_successive_snapshots() {
    let tel = populated();
    let first = parse_exposition(&tel.render_prometheus());
    // More activity of every counter-backed kind.
    tel.add_events(5, 3);
    tel.batch_hist()
        .unwrap()
        .record_duration(Duration::from_micros(60));
    tel.record_stage(Stage::WalAppend, Duration::from_micros(10));
    tel.counter("ingest_retries").add(1);
    let v = tel.view("m_axf_1").unwrap();
    v.rows_written.fetch_add(2, Relaxed);
    v.probes.fetch_add(1, Relaxed);
    v.scans.fetch_add(1, Relaxed);
    let second = parse_exposition(&tel.render_prometheus());

    let key = |s: &Sample| (s.name.clone(), s.labels.clone());
    for s in &first.samples {
        let family = family_of(&s.name, &first.types).unwrap();
        let is_counter = first.types.get(&family).is_some_and(|k| k == "counter")
            || s.name.ends_with("_sum")
            || s.name.ends_with("_count");
        if !is_counter {
            continue;
        }
        let later = second
            .samples
            .iter()
            .find(|t| key(t) == key(s))
            .unwrap_or_else(|| panic!("counter {} vanished from the next snapshot", s.name));
        assert!(
            later.value >= s.value,
            "counter {} went backwards: {} -> {}",
            s.name,
            s.value,
            later.value
        );
    }
}

#[test]
fn durability_metrics_declare_their_kinds_and_gauges_may_decrease() {
    let tel = populated();
    let text = tel.render_prometheus();
    for c in [
        "io_retries",
        "io_errors_transient",
        "io_errors_permanent",
        "degraded_transitions",
    ] {
        assert!(
            text.contains(&format!("# TYPE dbtoaster_{c} counter")),
            "missing counter declaration for {c}:\n{text}"
        );
    }
    assert!(
        text.contains("# TYPE dbtoaster_degraded gauge"),
        "degraded must be declared a gauge, not a counter:\n{text}"
    );

    let value = |exp: &Exposition, name: &str| -> f64 {
        exp.samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no sample named {name}"))
            .value
    };
    let first = parse_exposition(&text);
    assert_eq!(value(&first, "dbtoaster_degraded"), 1.0);

    // A gauge is a level, not an accumulation: leaving degraded mode lowers
    // it, which the TYPE declaration exempts from the monotonicity contract
    // (`counters_are_monotone_across_successive_snapshots` skips gauges).
    tel.gauge("degraded").set(0);
    tel.counter("degraded_transitions").inc();
    let second = parse_exposition(&tel.render_prometheus());
    assert_eq!(value(&second, "dbtoaster_degraded"), 0.0);
    assert!(
        value(&second, "dbtoaster_degraded_transitions")
            > value(&first, "dbtoaster_degraded_transitions"),
        "the transition counter still only goes up"
    );
}
