//! Scratch debugging helpers (run with `cargo test -p dbtoaster-compiler --test debug_scratch -- --nocapture`).
use dbtoaster_compiler::*;
use dbtoaster_sql::{parse_query, translate, SqlCatalog, TableDef};

fn tpch_sql_catalog() -> SqlCatalog {
    [
        TableDef::stream(
            "Customer",
            ["custkey", "nationkey", "mktsegment", "acctbal"],
        ),
        TableDef::stream(
            "Orders",
            [
                "orderkey",
                "custkey",
                "orderdate",
                "orderpriority",
                "totalprice",
            ],
        ),
        TableDef::stream(
            "Lineitem",
            [
                "orderkey",
                "partkey",
                "suppkey",
                "quantity",
                "extendedprice",
                "discount",
                "shipdate",
                "returnflag",
            ],
        ),
    ]
    .into_iter()
    .collect()
}

fn compiler_catalog(c: &SqlCatalog) -> Catalog {
    c.tables()
        .iter()
        .map(|t| RelationMeta {
            name: t.name.clone(),
            columns: t.columns.clone(),
            kind: if t.is_stream {
                dbtoaster_agca::AtomKind::Stream
            } else {
                dbtoaster_agca::AtomKind::Table
            },
        })
        .collect()
}

#[test]
fn print_q4_program() {
    let sqlcat = tpch_sql_catalog();
    let q4 = "SELECT o.orderpriority, COUNT(*) AS order_count FROM Orders o \
              WHERE o.orderdate >= DATE('1993-07-01') AND o.orderdate < DATE('1993-10-01') \
              AND EXISTS (SELECT * FROM Lineitem l WHERE l.orderkey = o.orderkey AND l.shipdate > o.orderdate) \
              GROUP BY o.orderpriority";
    let parsed = parse_query(q4).unwrap();
    let plan = translate("q4", &parsed, &sqlcat).unwrap();
    println!("== translated expr ==\n{}", plan.views[0].expr);
    let specs: Vec<QuerySpec> = plan
        .views
        .iter()
        .map(|v| QuerySpec {
            name: v.name.clone(),
            out_vars: v.out_vars.clone(),
            expr: v.expr.clone(),
        })
        .collect();
    let cat = compiler_catalog(&sqlcat);
    let prog = compile(&specs, &cat, &CompileOptions::default()).unwrap();
    println!("== program ==\n{prog}");
}

#[test]
fn q18a_step_by_step_against_reevaluation() {
    use dbtoaster_agca::UpdateEvent;
    use dbtoaster_gmr::Value;
    use dbtoaster_runtime::Engine;

    let sqlcat = tpch_sql_catalog();
    let sql = "SELECT c.custkey, SUM(l1.quantity) AS query18a \
               FROM Customer c, Orders o, Lineitem l1 \
               WHERE 100 < (SELECT SUM(l3.quantity) FROM Lineitem l3 WHERE l1.orderkey = l3.orderkey) \
               AND c.custkey = o.custkey AND o.orderkey = l1.orderkey \
               GROUP BY c.custkey";
    let parsed = parse_query(sql).unwrap();
    let plan = translate("q18a", &parsed, &sqlcat).unwrap();
    let specs: Vec<QuerySpec> = plan
        .views
        .iter()
        .map(|v| QuerySpec {
            name: v.name.clone(),
            out_vars: v.out_vars.clone(),
            expr: v.expr.clone(),
        })
        .collect();
    let cat = compiler_catalog(&sqlcat);
    let ho = compile(
        &specs,
        &cat,
        &CompileOptions::for_mode(CompileMode::HigherOrder),
    )
    .unwrap();
    println!("== HO program ==\n{ho}");
    let rep = compile(
        &specs,
        &cat,
        &CompileOptions::for_mode(CompileMode::Reevaluate),
    )
    .unwrap();
    let mut e_ho = Engine::new(ho, &cat);
    let mut e_rep = Engine::new(rep, &cat);

    let cust = |ck: i64| {
        UpdateEvent::insert(
            "Customer",
            vec![
                Value::long(ck),
                Value::long(0),
                Value::str("B"),
                Value::double(1.0),
            ],
        )
    };
    let ord = |ok: i64, ck: i64| {
        UpdateEvent::insert(
            "Orders",
            vec![
                Value::long(ok),
                Value::long(ck),
                Value::long(19950101),
                Value::str("1-URGENT"),
                Value::double(1.0),
            ],
        )
    };
    let li = |ok: i64, qty: i64| {
        UpdateEvent::insert(
            "Lineitem",
            vec![
                Value::long(ok),
                Value::long(1),
                Value::long(1),
                Value::long(qty),
                Value::double(1.0),
                Value::double(0.0),
                Value::long(19950101),
                Value::str("N"),
            ],
        )
    };
    let li_del = |ok: i64, qty: i64| {
        UpdateEvent::delete(
            "Lineitem",
            vec![
                Value::long(ok),
                Value::long(1),
                Value::long(1),
                Value::long(qty),
                Value::double(1.0),
                Value::double(0.0),
                Value::long(19950101),
                Value::str("N"),
            ],
        )
    };

    let events = vec![
        cust(1),
        cust(2),
        ord(10, 1),
        ord(20, 2),
        li(10, 60),
        li(10, 30),     // order 10 total 90 (below threshold)
        li(20, 150),    // order 20 total 150 (above)
        li(10, 50),     // order 10 now 140 (crosses threshold)
        li_del(10, 60), // order 10 back to 80 (drops below)
        li(20, 10),     // order 20 total 160
    ];
    for (i, ev) in events.iter().enumerate() {
        e_ho.process(ev).unwrap();
        e_rep.process(ev).unwrap();
        let a = e_ho.result("q18a").unwrap();
        let b = e_rep.result("q18a").unwrap();
        assert!(
            a.equivalent(&b, 1e-6),
            "divergence after event {i} ({ev:?}):\nHO:\n{a}\nREP:\n{b}"
        );
    }
}

#[test]
fn print_q22a_program() {
    let sqlcat = tpch_sql_catalog();
    let sql = "SELECT c1.nationkey, SUM(c1.acctbal) AS query22a FROM Customer c1 \
               WHERE c1.acctbal < (SELECT SUM(c2.acctbal) FROM Customer c2 WHERE c2.acctbal > 0) \
               AND 0 = (SELECT SUM(1) FROM Orders o WHERE o.custkey = c1.custkey) \
               GROUP BY c1.nationkey";
    let parsed = parse_query(sql).unwrap();
    let plan = translate("q22a", &parsed, &sqlcat).unwrap();
    let specs: Vec<QuerySpec> = plan
        .views
        .iter()
        .map(|v| QuerySpec {
            name: v.name.clone(),
            out_vars: v.out_vars.clone(),
            expr: v.expr.clone(),
        })
        .collect();
    let cat = compiler_catalog(&sqlcat);
    let prog = compile(&specs, &cat, &CompileOptions::default()).unwrap();
    println!("== q22a program ==\n{prog}");
}
