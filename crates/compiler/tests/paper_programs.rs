//! Structural tests of the compiled programs for the worked examples of Section 6.
//!
//! These tests pin the *shape* of the generated trigger programs (which maps exist, how
//! they are keyed, which statements are constant-time) rather than their runtime
//! behaviour, mirroring the discussion of Figures 3 and 4 in the paper.

use dbtoaster_agca::{AtomKind, Expr, UpdateSign};
use dbtoaster_compiler::*;

fn catalog() -> Catalog {
    [
        RelationMeta::stream("C", ["CK"]),
        RelationMeta::stream("O", ["CK", "OK"]),
        RelationMeta::stream("LI", ["OK", "QTY"]),
        RelationMeta::stream("R", ["A", "B"]),
        RelationMeta::stream("S", ["B", "C"]),
        RelationMeta::stream("T", ["C", "D"]),
    ]
    .into_iter()
    .collect()
}

/// Example 10: Q = Sum[](R(A,B) * S(B,C) * T(C,D)). The insertion trigger for S must
/// use two decomposed maps M1[b] and M2[c] rather than materializing R x T.
#[test]
fn example10_insert_trigger_uses_decomposed_maps() {
    let q = QuerySpec {
        name: "Q".into(),
        out_vars: vec![],
        expr: Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("R", ["A", "B"]),
                Expr::rel("S", ["B", "C"]),
                Expr::rel("T", ["C", "D"]),
            ]),
        ),
    };
    let prog = compile(&[q], &catalog(), &CompileOptions::default()).unwrap();
    let s_trigger = prog.trigger("S", UpdateSign::Insert).unwrap();
    let q_stmt = s_trigger
        .statements
        .iter()
        .find(|s| s.target == "Q")
        .expect("Q must be updated on S insertions");
    // The statement reads two distinct single-column views (count of R grouped by B and
    // count of T grouped by C), not one big two-column view.
    let views: Vec<String> = q_stmt.reads().into_iter().collect();
    assert_eq!(views.len(), 2, "{q_stmt}");
    for v in &views {
        let decl = prog.map(v).unwrap();
        assert_eq!(
            decl.out_vars.len(),
            1,
            "decomposed map {v} must have one key column"
        );
    }
    assert!(prog.report.used_decomposition);
}

/// Section 6.1 (simplified Q18): the nested aggregate over Lineitem is equality
/// correlated, so the compiled program maintains a per-order quantity sum and never
/// re-evaluates the top-level query.
#[test]
fn q18a_style_program_shape() {
    // Q[CK] = Sum[CK]( C(CK) * O(CK,OK) * LI(OK,QTY) * QTY * (x := Sum[OK](LI(OK,Q2)*Q2)) * (100 < x) )
    let nested = Expr::agg_sum(
        ["OK"],
        Expr::product_of([Expr::rel("LI", ["OK", "Q2"]), Expr::var("Q2")]),
    );
    let q = QuerySpec {
        name: "Q18".into(),
        out_vars: vec!["CK".into()],
        expr: Expr::agg_sum(
            ["CK"],
            Expr::product_of([
                Expr::rel("C", ["CK"]),
                Expr::rel("O", ["CK", "OK"]),
                Expr::rel("LI", ["OK", "QTY"]),
                Expr::var("QTY"),
                Expr::lift("x", nested),
                Expr::cmp(dbtoaster_agca::CmpOp::Lt, Expr::val(100), Expr::var("x")),
            ]),
        ),
    };
    let prog = compile(&[q], &catalog(), &CompileOptions::default()).unwrap();
    assert!(!prog.report.used_reevaluation, "{prog}");
    assert!(prog.report.used_incremental_nested);
    // A per-order quantity aggregate (the paper's Q_O2 map) must exist: a single-key map
    // over LI whose definition aggregates the quantity column.
    assert!(
        prog.maps.iter().any(|m| {
            m.out_vars.len() == 1
                && m.definition.references_relation("LI")
                && !m.definition.references_relation("O")
                && !m.definition.references_relation("C")
        }),
        "expected a per-order Lineitem aggregate map:\n{prog}"
    );
    // Every map definition is closed: no unbound input variables.
    for m in &prog.maps {
        let inputs = dbtoaster_agca::input_vars(&m.definition);
        let foreign: Vec<_> = inputs.iter().filter(|v| !m.out_vars.contains(v)).collect();
        assert!(
            foreign.is_empty(),
            "map {} has unbound input variables {foreign:?}: {}",
            m.name,
            m.definition
        );
    }
}

/// Statements never read views that do not exist, and every key variable of a statement
/// is either a trigger variable or produced by its right-hand side — the static
/// well-formedness invariants the runtime relies on.
#[test]
fn compiled_programs_are_well_formed() {
    let queries = [
        QuerySpec {
            name: "QA".into(),
            out_vars: vec!["B".into()],
            expr: Expr::agg_sum(
                ["B"],
                Expr::product_of([Expr::rel("R", ["A", "B"]), Expr::var("A")]),
            ),
        },
        QuerySpec {
            name: "QB".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["A", "B"]),
                    Expr::rel("S", ["B", "C"]),
                    Expr::cmp(dbtoaster_agca::CmpOp::Lt, Expr::var("A"), Expr::var("C")),
                ]),
            ),
        },
    ];
    for mode in [
        CompileMode::HigherOrder,
        CompileMode::FirstOrder,
        CompileMode::NaiveViewlet,
        CompileMode::Reevaluate,
    ] {
        let prog = compile(&queries, &catalog(), &CompileOptions::for_mode(mode)).unwrap();
        let map_names: Vec<&str> = prog.maps.iter().map(|m| m.name.as_str()).collect();
        for t in &prog.triggers {
            for s in &t.statements {
                assert!(
                    map_names.contains(&s.target.as_str()),
                    "unknown target in {s}"
                );
                for read in s.reads() {
                    assert!(
                        map_names.contains(&read.as_str()),
                        "unknown view {read} in {s}"
                    );
                }
                for kv in &s.key_vars {
                    let bound = t.trigger_vars.contains(kv);
                    let looped = s.loop_vars.contains(kv);
                    assert!(
                        bound || looped,
                        "[{mode}] key variable {kv} of {s} is neither bound nor looped"
                    );
                }
            }
        }
        // View atoms never appear in map definitions (definitions are over base tables).
        for m in &prog.maps {
            assert!(
                !m.definition.contains_atom_kind(AtomKind::View),
                "map {} definition references another view: {}",
                m.name,
                m.definition
            );
        }
    }
}
