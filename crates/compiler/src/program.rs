//! The trigger-program intermediate representation.
//!
//! The output of compilation (both the naive viewlet transform of Section 4 and
//! Higher-Order IVM of Section 5) is a *trigger program*: a set of materialized-view
//! declarations plus, for every stream relation and update sign, a list of update
//! statements of the form
//!
//! ```text
//! foreach ~x do  M[~x]  +=  Q'[~x]        (increment)
//! foreach ~x do  M[~x]  :=  Q'[~x]        (replace / re-evaluation)
//! ```
//!
//! where `Q'` is an AGCA expression over the other materialized views, the trigger
//! variables and (in the baseline modes) the stored base relations.

use dbtoaster_agca::{AtomKind, CompiledStmt, Expr, UpdateSign};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Metadata about a base relation known to the compiler.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationMeta {
    /// Relation name (case-sensitive, as used in AGCA atoms).
    pub name: String,
    /// Column names, in order.
    pub columns: Vec<String>,
    /// `Stream` for relations receiving updates, `Table` for static relations.
    pub kind: AtomKind,
}

impl RelationMeta {
    /// A stream relation.
    pub fn stream<S: Into<String>>(
        name: impl Into<String>,
        columns: impl IntoIterator<Item = S>,
    ) -> Self {
        RelationMeta {
            name: name.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            kind: AtomKind::Stream,
        }
    }

    /// A static table.
    pub fn table<S: Into<String>>(
        name: impl Into<String>,
        columns: impl IntoIterator<Item = S>,
    ) -> Self {
        RelationMeta {
            name: name.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            kind: AtomKind::Table,
        }
    }
}

/// The set of base relations visible to a compilation.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    relations: Vec<RelationMeta>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Add a relation (replacing any previous definition of the same name).
    pub fn add(&mut self, meta: RelationMeta) {
        self.relations.retain(|r| r.name != meta.name);
        self.relations.push(meta);
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<&RelationMeta> {
        self.relations.iter().find(|r| r.name == name)
    }

    /// All relations.
    pub fn relations(&self) -> &[RelationMeta] {
        &self.relations
    }

    /// Names of all stream relations.
    pub fn stream_names(&self) -> Vec<String> {
        self.relations
            .iter()
            .filter(|r| r.kind == AtomKind::Stream)
            .map(|r| r.name.clone())
            .collect()
    }
}

impl FromIterator<RelationMeta> for Catalog {
    fn from_iter<T: IntoIterator<Item = RelationMeta>>(iter: T) -> Self {
        let mut c = Catalog::new();
        for r in iter {
            c.add(r);
        }
        c
    }
}

/// A query to compile: a named AGCA expression whose result is to be kept fresh.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Result view name.
    pub name: String,
    /// Output (group-by) variables of the result.
    pub out_vars: Vec<String>,
    /// The query, over stream/table atoms.
    pub expr: Expr,
}

/// A materialized view (map) declaration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MapDecl {
    /// Map name.
    pub name: String,
    /// Key columns (output variables of the definition).
    pub out_vars: Vec<String>,
    /// Defining expression over base relations (never over other views).
    pub definition: Expr,
    /// Is this map one of the user-visible query results?
    pub is_query_result: bool,
    /// Must the map be initialized by evaluating its definition over the static tables
    /// at engine start-up (true when the definition references no stream relation)?
    pub init_from_tables: bool,
}

/// `+=` or `:=`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StmtOp {
    /// Incremental update: add the right-hand side to the target entries.
    Increment,
    /// Re-evaluation: clear the target and replace it with the right-hand side.
    Replace,
}

impl fmt::Display for StmtOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StmtOp::Increment => write!(f, "+="),
            StmtOp::Replace => write!(f, ":="),
        }
    }
}

/// A single update statement inside a trigger.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Statement {
    /// Target map name.
    pub target: String,
    /// One entry per key column of the target map: either a trigger variable (bound at
    /// runtime — a range restriction) or a loop variable produced by the right-hand side.
    pub key_vars: Vec<String>,
    /// The key variables that are *not* bound by the trigger (the `foreach` variables).
    pub loop_vars: Vec<String>,
    /// Increment or replace.
    pub op: StmtOp,
    /// Right-hand side, over views, trigger variables and (in baseline modes) base
    /// relations.
    pub rhs: Expr,
}

impl Statement {
    /// Map names read by the right-hand side.
    pub fn reads(&self) -> BTreeSet<String> {
        self.rhs
            .atoms()
            .into_iter()
            .filter(|a| a.kind == AtomKind::View)
            .map(|a| a.name)
            .collect()
    }

    /// Base relations read directly by the right-hand side.
    pub fn base_reads(&self) -> BTreeSet<String> {
        self.rhs
            .atoms()
            .into_iter()
            .filter(|a| a.kind != AtomKind::View)
            .map(|a| a.name)
            .collect()
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.loop_vars.is_empty() {
            write!(
                f,
                "{}[{}] {} {}",
                self.target,
                self.key_vars.join(", "),
                self.op,
                self.rhs
            )
        } else {
            write!(
                f,
                "foreach {} do {}[{}] {} {}",
                self.loop_vars.join(", "),
                self.target,
                self.key_vars.join(", "),
                self.op,
                self.rhs
            )
        }
    }
}

/// All statements fired by a single update event `±R(~t)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trigger {
    /// The updated relation.
    pub relation: String,
    /// Insert or delete.
    pub sign: UpdateSign,
    /// Trigger variable names, positionally bound to the updated tuple's values.
    pub trigger_vars: Vec<String>,
    /// Statements, in execution order (increments first, then re-evaluations; see the
    /// runtime's execution model).
    pub statements: Vec<Statement>,
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "on {} into {} values ({}):",
            if self.sign == UpdateSign::Insert {
                "insert"
            } else {
                "delete"
            },
            self.relation,
            self.trigger_vars.join(", ")
        )?;
        for s in &self.statements {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

/// How a user-visible query result is obtained from the maintained maps.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ResultAccess {
    /// The result is a single maintained map.
    Map(String),
    /// The result is computed on access from maintained maps (generalized Higher-Order
    /// IVM, e.g. `AVG = SUM / COUNT`).
    Computed {
        /// Expression over view atoms.
        expr: Expr,
        /// Output variables of the computed result.
        out_vars: Vec<String>,
    },
}

/// A named query result of the program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Query name (as given in the [`QuerySpec`]).
    pub name: String,
    /// Result columns.
    pub out_vars: Vec<String>,
    /// How to read the result.
    pub access: ResultAccess,
}

/// Which rewrite rules and strategies fired during compilation of a query — the data
/// behind Figure 2 of the paper.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CompileReport {
    /// Rule 1 (query decomposition) split some clause into several components.
    pub used_decomposition: bool,
    /// Rule 2 (polynomial expansion) produced more than one clause somewhere.
    pub used_expansion: bool,
    /// Rule 3: some factor referencing input variables was kept out of a materialization.
    pub used_input_var_extraction: bool,
    /// Rule 4: a nested aggregate was decorrelated / materialized separately.
    pub used_nested_rewrite: bool,
    /// The re-evaluation strategy was chosen for at least one (relation, sign) pair.
    pub used_reevaluation: bool,
    /// The incremental strategy was used for at least one nested-aggregate query.
    pub used_incremental_nested: bool,
    /// Number of materialized maps created (excluding deduplicated reuses).
    pub maps_created: usize,
    /// Number of map reuses through duplicate view elimination.
    pub maps_deduplicated: usize,
    /// Number of statements emitted.
    pub statements: usize,
    /// Maximum delta order reached (depth of the viewlet recursion).
    pub max_delta_order: usize,
}

/// The compiled kernels of one trigger: one entry per statement, in statement
/// order. `None` marks a statement whose shape could not be lowered — the
/// runtime interprets it through the AST evaluator instead (see
/// [`dbtoaster_agca::plan`]).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CompiledTrigger {
    /// Per-statement kernels, aligned with [`Trigger::statements`].
    pub stmts: Vec<Option<CompiledStmt>>,
}

impl CompiledTrigger {
    /// Number of statements that compiled to kernels.
    pub fn compiled_count(&self) -> usize {
        self.stmts.iter().flatten().count()
    }
}

/// A compiled trigger program.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TriggerProgram {
    /// Materialized view declarations.
    pub maps: Vec<MapDecl>,
    /// Triggers, one per (stream relation, sign) with at least one statement.
    pub triggers: Vec<Trigger>,
    /// Compiled trigger kernels, aligned index-for-index with
    /// [`TriggerProgram::triggers`] (empty when kernels were not built, e.g.
    /// for hand-assembled programs). Derived data: excluded from the program
    /// fingerprint, which hashes the canonical rendering only.
    pub compiled: Vec<CompiledTrigger>,
    /// User-visible query results.
    pub results: Vec<QueryResult>,
    /// Base relations that must be kept in storage because some statement reads them.
    pub stored_relations: BTreeSet<String>,
    /// Static tables referenced by the program (always stored).
    pub static_tables: BTreeSet<String>,
    /// Per-relation second-order batch corrections, for every relation whose
    /// triggers are batch-delta eligible (see [`BatchStrategy::BatchDelta`]).
    /// Derived data, like [`TriggerProgram::compiled`]: excluded from the
    /// program fingerprint.
    pub batch_corrections: Vec<BatchCorrection>,
    /// Per-relation batch-delta derivation outcomes: eligible, or which gate
    /// bailed. Derived data like [`TriggerProgram::compiled`]: excluded from
    /// the program fingerprint and empty for hand-assembled programs.
    pub batch_delta_reasons: Vec<BatchDeltaOutcome>,
    /// Compilation report (rule usage, counts).
    pub report: CompileReport,
}

/// How the statements for one relation's triggers execute over a multi-entry
/// delta batch (see [`TriggerProgram::batch_dispatch`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchStrategy {
    /// Statement-major: each trigger statement is dispatched **once per
    /// batch** and driven over all delta entries back-to-back (statement
    /// prelude and loop-invariant fused scans amortized), base updates are
    /// applied in one pass, and re-evaluation statements fire once, bound to
    /// the run's last event. Legal only when the read-before-write discipline
    /// holds across the relation's statements — see the eligibility rules on
    /// [`TriggerProgram::batch_dispatch`].
    StatementMajor,
    /// Entry-major: each delta entry fires the full per-event trigger sequence
    /// (`|mult|` times), exactly like event-at-a-time processing. The safe
    /// fallback for triggers that read what they write.
    EntryMajor,
    /// Batch-delta: the whole run is one delta GMR. Every incremental
    /// statement of both sign triggers is evaluated against the **pre-run**
    /// state (all writes buffered and applied after the last read), and the
    /// relation's [`BatchCorrection`] statements add the explicit second-order
    /// terms that account for entries of the same run interacting. Chosen
    /// whenever the correction derivation succeeds — see
    /// [`crate::batch_delta`] for the derivation and its eligibility gates.
    BatchDelta,
}

impl BatchStrategy {
    /// Stable lowercase name (used in bench reports and the
    /// `DBTOASTER_FORCE_BATCH_STRATEGY` override).
    pub fn as_str(&self) -> &'static str {
        match self {
            BatchStrategy::StatementMajor => "statement-major",
            BatchStrategy::EntryMajor => "entry-major",
            BatchStrategy::BatchDelta => "batch-delta",
        }
    }
}

impl fmt::Display for BatchStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The second-order batch correction program of one relation: statements whose
/// right-hand sides join the run's delta pseudo-relations
/// (`@delta:R` / `@delta_abs:R`, see [`dbtoaster_agca::batch`]) with the
/// mode-independent second delta of each affected map's definition. Executing
/// the relation's first-order statements against the pre-run state and then
/// these corrections reproduces sequential per-event processing exactly (in
/// the GMR ring).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchCorrection {
    /// The stream relation whose runs this correction completes.
    pub relation: String,
    /// Correction statements (always [`StmtOp::Increment`]); may be empty when
    /// every map affected by the relation is linear in it — the relation is
    /// still batch-delta eligible, the interaction terms are just zero.
    pub statements: Vec<Statement>,
    /// Compiled kernels aligned with `statements` (`None` = interpret).
    pub compiled: Vec<Option<CompiledStmt>>,
}

/// Which eligibility gate stopped second-order batch-delta derivation for a
/// relation (see [`crate::batch_delta`] for the gates themselves). Recorded at
/// compile time so EXPLAIN can name the exact condition instead of a generic
/// "not eligible".
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchDeltaBail {
    /// Gate 1: a trigger of the relation contains a `:=` (re-evaluation)
    /// statement, which is bound to one specific event and has no delta form.
    ReplaceStatement,
    /// Gate 2: a statement reads `target` at or after the point its own
    /// trigger writes it, so pre-run-state evaluation cannot reproduce the
    /// per-event order.
    ReadAfterWrite {
        /// The map read before (or at) its own write.
        target: String,
    },
    /// The updated relation has no catalog entry to mint fresh trigger
    /// variables from.
    UnknownRelation,
    /// Gate 3a: `map`'s definition is more than quadratic in the relation —
    /// its third delta does not vanish.
    NonzeroThirdDelta {
        /// The offending map.
        map: String,
    },
    /// Gate 3b: a derived *view* atom survives into `map`'s second delta,
    /// which must read no state that changes mid-run. (Stream atoms of
    /// *other* relations are allowed: they are constant during the run and
    /// their stored pre-run slice is materialized for the correction.)
    SurvivingViewAtom {
        /// The offending map.
        map: String,
    },
}

impl BatchDeltaBail {
    /// Stable human-readable description (used by EXPLAIN; golden-tested).
    pub fn describe(&self) -> String {
        match self {
            BatchDeltaBail::ReplaceStatement => "replace (`:=`) statement in trigger".to_string(),
            BatchDeltaBail::ReadAfterWrite { target } => {
                format!("statement reads `{target}` at or after its own write")
            }
            BatchDeltaBail::UnknownRelation => "relation missing from the catalog".to_string(),
            BatchDeltaBail::NonzeroThirdDelta { map } => {
                format!("`{map}` has a nonzero third delta (more than quadratic)")
            }
            BatchDeltaBail::SurvivingViewAtom { map } => {
                format!("a view atom survives into `{map}`'s second delta")
            }
        }
    }
}

/// The recorded outcome of batch-delta derivation for one relation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchDeltaOutcome {
    /// The stream relation.
    pub relation: String,
    /// `None` — derivation succeeded (the relation has a [`BatchCorrection`]);
    /// `Some` — the first gate that fired.
    pub bail: Option<BatchDeltaBail>,
}

/// Which statement-major eligibility rule failed for a relation's triggers
/// (the rules are documented on [`TriggerProgram::batch_dispatch`]). `None`
/// from [`TriggerProgram::statement_major_block`] means statement-major
/// execution is legal.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatementMajorBlock {
    /// Rule 1: an incremental statement reads `read`, which some statement of
    /// the relation writes mid-batch (or `read` is the stored updated
    /// relation itself).
    IncrementReadsBatchWrite {
        /// The batch-variant map or stored relation being read.
        read: String,
    },
    /// Rule 2: two incremental statements of one trigger share `target`, so
    /// per-key write order would diverge from per-event order.
    DuplicateIncrementTarget {
        /// The repeated target map.
        target: String,
    },
    /// Rule 2: an incremental statement follows a re-evaluation statement.
    IncrementAfterReplace {
        /// The increment's target map.
        target: String,
    },
    /// Rule 3: the insert and delete triggers re-evaluate different target
    /// sets, so only per-event interleaving is exact.
    UnmirroredReplace,
    /// Rule 3: a re-evaluation statement exists but one update sign has no
    /// trigger to mirror it.
    OneSidedReplace,
}

impl StatementMajorBlock {
    /// Stable human-readable description (used by EXPLAIN; golden-tested).
    pub fn describe(&self) -> String {
        match self {
            StatementMajorBlock::IncrementReadsBatchWrite { read } => {
                format!("an increment reads batch-written `{read}`")
            }
            StatementMajorBlock::DuplicateIncrementTarget { target } => {
                format!("two increments share target `{target}`")
            }
            StatementMajorBlock::IncrementAfterReplace { target } => {
                format!("increment of `{target}` follows a replace")
            }
            StatementMajorBlock::UnmirroredReplace => {
                "insert and delete triggers replace different targets".to_string()
            }
            StatementMajorBlock::OneSidedReplace => {
                "a replace statement lacks a mirroring trigger for the other sign".to_string()
            }
        }
    }
}

/// The per-relation trigger grouping used by batch execution: both sign
/// triggers of one relation, plus the statically chosen [`BatchStrategy`].
#[derive(Clone, Debug)]
pub struct RelationDispatch {
    /// The stream relation.
    pub relation: String,
    /// Index into [`TriggerProgram::triggers`] of the insert trigger, if any.
    pub insert: Option<usize>,
    /// Index into [`TriggerProgram::triggers`] of the delete trigger, if any.
    pub delete: Option<usize>,
    /// How a batch drives this relation's statement lists.
    pub strategy: BatchStrategy,
}

impl TriggerProgram {
    /// Find a map declaration by name.
    pub fn map(&self, name: &str) -> Option<&MapDecl> {
        self.maps.iter().find(|m| m.name == name)
    }

    /// Find the trigger for a (relation, sign) pair.
    pub fn trigger(&self, relation: &str, sign: UpdateSign) -> Option<&Trigger> {
        self.triggers
            .iter()
            .find(|t| t.relation == relation && t.sign == sign)
    }

    /// Total number of statements across all triggers.
    pub fn statement_count(&self) -> usize {
        self.triggers.iter().map(|t| t.statements.len()).sum()
    }

    /// Total number of statements lowered to compiled kernels.
    pub fn compiled_statement_count(&self) -> usize {
        self.compiled.iter().map(|c| c.compiled_count()).sum()
    }

    /// Group the program's triggers by relation and choose, per relation, how
    /// a multi-entry delta batch may drive them (the runtime resolves the
    /// result into its dispatch table once, at engine construction).
    ///
    /// [`BatchStrategy::StatementMajor`] requires the **read-before-write
    /// discipline across the statements of one relation**: evaluating an
    /// incremental statement for a later entry against the pre-batch state
    /// must equal evaluating it against the rolling per-event state. That
    /// holds exactly when
    ///
    /// 1. no incremental statement of either sign trigger reads a map any
    ///    statement of the relation writes, nor the updated base relation
    ///    itself (when stored) — so every read is batch-invariant;
    /// 2. within each trigger, incremental statements have pairwise distinct
    ///    targets and precede all re-evaluation statements — so the per-key
    ///    write order of each target map matches the per-event order;
    /// 3. re-evaluation statements, which wipe their target and rebuild it
    ///    from the *current* state, either do not occur, or occur in **both**
    ///    sign triggers with the same target set — then only the run's last
    ///    firing survives per-event processing, and firing them once at the
    ///    end of the batch (bound to the last event) reproduces it.
    ///
    /// Anything else falls back to [`BatchStrategy::EntryMajor`], which is
    /// per-event processing inside the batch and therefore always exact.
    ///
    /// [`BatchStrategy::BatchDelta`] supersedes both whenever the relation has
    /// a derived [`BatchCorrection`] (including an empty one): the first-order
    /// statements run against the pre-run state with buffered writes, and the
    /// correction statements add the intra-run interaction terms.
    pub fn batch_dispatch(&self) -> Vec<RelationDispatch> {
        self.batch_dispatch_forced(None)
    }

    /// [`TriggerProgram::batch_dispatch`] with an optional forced strategy
    /// (differential debugging; the `DBTOASTER_FORCE_BATCH_STRATEGY` engine
    /// override resolves to this):
    ///
    /// * `Some(EntryMajor)` — every relation entry-major (the oracle);
    /// * `Some(StatementMajor)` — disable batch-delta: each relation gets the
    ///   read-before-write analysis result (statement-major where legal,
    ///   entry-major otherwise), i.e. the pre-batch-delta dispatch;
    /// * `Some(BatchDelta)` or `None` — the automatic choice (batch-delta
    ///   cannot be forced onto underivable relations).
    pub fn batch_dispatch_forced(&self, force: Option<BatchStrategy>) -> Vec<RelationDispatch> {
        let mut relations: Vec<&str> = Vec::new();
        for t in &self.triggers {
            if !relations.contains(&t.relation.as_str()) {
                relations.push(&t.relation);
            }
        }
        relations
            .into_iter()
            .map(|rel| {
                let idx_of = |sign: UpdateSign| {
                    self.triggers
                        .iter()
                        .position(|t| t.relation == rel && t.sign == sign)
                };
                let insert = idx_of(UpdateSign::Insert);
                let delete = idx_of(UpdateSign::Delete);
                let strategy = match force {
                    Some(BatchStrategy::EntryMajor) => BatchStrategy::EntryMajor,
                    Some(BatchStrategy::StatementMajor) => {
                        self.relation_batch_strategy(rel, insert, delete)
                    }
                    Some(BatchStrategy::BatchDelta) | None => {
                        if self.batch_correction(rel).is_some() {
                            BatchStrategy::BatchDelta
                        } else {
                            self.relation_batch_strategy(rel, insert, delete)
                        }
                    }
                };
                RelationDispatch {
                    relation: rel.to_string(),
                    insert,
                    delete,
                    strategy,
                }
            })
            .collect()
    }

    /// The second-order batch correction for `relation`, if its triggers are
    /// batch-delta eligible.
    pub fn batch_correction(&self, relation: &str) -> Option<&BatchCorrection> {
        self.batch_corrections
            .iter()
            .find(|c| c.relation == relation)
    }

    /// The recorded batch-delta derivation outcome for `relation`, if the
    /// program was compiled with reasons (hand-assembled programs have none).
    pub fn batch_delta_reason(&self, relation: &str) -> Option<&BatchDeltaOutcome> {
        self.batch_delta_reasons
            .iter()
            .find(|o| o.relation == relation)
    }

    fn relation_batch_strategy(
        &self,
        relation: &str,
        insert: Option<usize>,
        delete: Option<usize>,
    ) -> BatchStrategy {
        match self.statement_major_block_for(relation, insert, delete) {
            Some(_) => BatchStrategy::EntryMajor,
            None => BatchStrategy::StatementMajor,
        }
    }

    /// Why statement-major batch execution is illegal for `relation`'s
    /// triggers — the first of rules 1–3 (see
    /// [`TriggerProgram::batch_dispatch`]) that fails — or `None` when the
    /// read-before-write analysis passes and statement-major is exact.
    pub fn statement_major_block(&self, relation: &str) -> Option<StatementMajorBlock> {
        let idx_of = |sign: UpdateSign| {
            self.triggers
                .iter()
                .position(|t| t.relation == relation && t.sign == sign)
        };
        self.statement_major_block_for(
            relation,
            idx_of(UpdateSign::Insert),
            idx_of(UpdateSign::Delete),
        )
    }

    fn statement_major_block_for(
        &self,
        relation: &str,
        insert: Option<usize>,
        delete: Option<usize>,
    ) -> Option<StatementMajorBlock> {
        let triggers: Vec<&Trigger> = insert
            .into_iter()
            .chain(delete)
            .map(|i| &self.triggers[i])
            .collect();
        // Rule 1: batch-invariant reads for every incremental statement.
        let mut writes: BTreeSet<&str> = triggers
            .iter()
            .flat_map(|t| t.statements.iter().map(|s| s.target.as_str()))
            .collect();
        if self.stored_relations.contains(relation) || self.static_tables.contains(relation) {
            // The base update writes the stored relation mid-batch.
            writes.insert(relation);
        }
        for t in &triggers {
            for s in t.statements.iter().filter(|s| s.op == StmtOp::Increment) {
                if let Some(read) = s
                    .reads()
                    .iter()
                    .chain(s.base_reads().iter())
                    .find(|r| writes.contains(r.as_str()))
                {
                    return Some(StatementMajorBlock::IncrementReadsBatchWrite {
                        read: read.clone(),
                    });
                }
            }
        }
        // Rule 2: distinct increment targets, increments before replaces.
        for t in &triggers {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut saw_replace = false;
            for s in &t.statements {
                match s.op {
                    StmtOp::Increment => {
                        if saw_replace {
                            return Some(StatementMajorBlock::IncrementAfterReplace {
                                target: s.target.clone(),
                            });
                        }
                        if !seen.insert(&s.target) {
                            return Some(StatementMajorBlock::DuplicateIncrementTarget {
                                target: s.target.clone(),
                            });
                        }
                    }
                    StmtOp::Replace => saw_replace = true,
                }
            }
        }
        // Rule 3: replaces only when mirrored across both sign triggers.
        let replace_targets = |t: &Trigger| -> BTreeSet<String> {
            t.statements
                .iter()
                .filter(|s| s.op == StmtOp::Replace)
                .map(|s| s.target.clone())
                .collect()
        };
        let any_replace = triggers
            .iter()
            .any(|t| t.statements.iter().any(|s| s.op == StmtOp::Replace));
        if any_replace {
            match (insert, delete) {
                (Some(i), Some(d)) => {
                    if replace_targets(&self.triggers[i]) != replace_targets(&self.triggers[d]) {
                        return Some(StatementMajorBlock::UnmirroredReplace);
                    }
                }
                // A sign without a trigger would skip the re-evaluation its
                // counterpart relies on; per-event and batch orders diverge.
                _ => return Some(StatementMajorBlock::OneSidedReplace),
            }
        }
        None
    }
}

impl fmt::Display for TriggerProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "-- maps --")?;
        for m in &self.maps {
            writeln!(
                f,
                "{}[{}] := {}",
                m.name,
                m.out_vars.join(", "),
                m.definition
            )?;
        }
        writeln!(f, "-- triggers --")?;
        for t in &self.triggers {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

/// Compilation strategy, corresponding to the systems compared in the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompileMode {
    /// Full Higher-Order IVM (the "DBToaster" columns of Figures 6/7).
    HigherOrder,
    /// Classical first-order IVM: the query is maintained with first-order deltas
    /// evaluated over the stored base relations ("IVM" columns).
    FirstOrder,
    /// The naive viewlet transform: recursive materialization without decomposition or
    /// delta simplification ("Naive" columns).
    NaiveViewlet,
    /// Full re-evaluation of the query on every update ("REP" columns).
    Reevaluate,
}

impl fmt::Display for CompileMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompileMode::HigherOrder => "DBToaster",
            CompileMode::FirstOrder => "IVM",
            CompileMode::NaiveViewlet => "Naive",
            CompileMode::Reevaluate => "REP",
        };
        write!(f, "{s}")
    }
}

/// Tunable compilation options (the paper's Figure 12 compilation flags).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Overall strategy.
    pub mode: CompileMode,
    /// Maximum recursion depth of the viewlet transform (`--depth` in Figure 12).
    pub max_depth: usize,
    /// Apply rule 1 (query decomposition into join-graph components).
    pub enable_decomposition: bool,
    /// Extract range restrictions (loop-variable elimination, Section 5.3).
    pub enable_range_restriction: bool,
    /// Deduplicate structurally equivalent views.
    pub enable_dedup: bool,
    /// Use the re-evaluation heuristic for non-equality-correlated nested aggregates.
    pub enable_reevaluation_heuristic: bool,
    /// Decorrelate equality-correlated nested aggregates before compilation.
    pub enable_decorrelation: bool,
    /// Materialize delta subexpressions as auxiliary maps. When false (classical IVM and
    /// re-evaluation), delta queries are evaluated directly over stored base relations.
    pub materialize_deltas: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions::for_mode(CompileMode::HigherOrder)
    }
}

impl CompileOptions {
    /// The canonical option set for each compilation mode.
    pub fn for_mode(mode: CompileMode) -> Self {
        match mode {
            CompileMode::HigherOrder => CompileOptions {
                mode,
                max_depth: 16,
                enable_decomposition: true,
                enable_range_restriction: true,
                enable_dedup: true,
                enable_reevaluation_heuristic: true,
                enable_decorrelation: true,
                materialize_deltas: true,
            },
            CompileMode::FirstOrder => CompileOptions {
                mode,
                max_depth: 1,
                enable_decomposition: false,
                enable_range_restriction: true,
                enable_dedup: true,
                enable_reevaluation_heuristic: false,
                enable_decorrelation: true,
                materialize_deltas: false,
            },
            CompileMode::NaiveViewlet => CompileOptions {
                mode,
                max_depth: 16,
                enable_decomposition: false,
                enable_range_restriction: false,
                enable_dedup: true,
                enable_reevaluation_heuristic: false,
                enable_decorrelation: true,
                materialize_deltas: true,
            },
            CompileMode::Reevaluate => CompileOptions {
                mode,
                max_depth: 0,
                enable_decomposition: false,
                enable_range_restriction: false,
                enable_dedup: false,
                enable_reevaluation_heuristic: false,
                enable_decorrelation: true,
                materialize_deltas: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lookup_and_replace() {
        let mut c = Catalog::new();
        c.add(RelationMeta::stream("R", ["A", "B"]));
        c.add(RelationMeta::table("Nation", ["NK", "NAME"]));
        assert_eq!(c.get("R").unwrap().columns, vec!["A", "B"]);
        assert_eq!(c.stream_names(), vec!["R"]);
        // Replacing an existing relation keeps a single entry.
        c.add(RelationMeta::stream("R", ["A"]));
        assert_eq!(c.get("R").unwrap().columns, vec!["A"]);
        assert_eq!(c.relations().len(), 2);
    }

    #[test]
    fn statement_reads_distinguish_views_from_base() {
        let s = Statement {
            target: "Q".into(),
            key_vars: vec!["a".into()],
            loop_vars: vec!["a".into()],
            op: StmtOp::Increment,
            rhs: Expr::product_of([Expr::view("M1", ["a"]), Expr::rel("R", ["a", "b"])]),
        };
        assert!(s.reads().contains("M1"));
        assert!(!s.reads().contains("R"));
        assert!(s.base_reads().contains("R"));
        assert!(s.to_string().contains("foreach a do Q[a] +="));
    }

    #[test]
    fn options_per_mode() {
        let ho = CompileOptions::for_mode(CompileMode::HigherOrder);
        assert!(ho.enable_decomposition);
        let ivm = CompileOptions::for_mode(CompileMode::FirstOrder);
        assert_eq!(ivm.max_depth, 1);
        let naive = CompileOptions::for_mode(CompileMode::NaiveViewlet);
        assert!(!naive.enable_decomposition && !naive.enable_range_restriction);
        let rep = CompileOptions::for_mode(CompileMode::Reevaluate);
        assert_eq!(rep.max_depth, 0);
        assert_eq!(format!("{}", CompileMode::HigherOrder), "DBToaster");
    }

    #[test]
    fn display_of_statement_without_loop_vars() {
        let s = Statement {
            target: "Q".into(),
            key_vars: vec!["o_ck".into()],
            loop_vars: vec![],
            op: StmtOp::Replace,
            rhs: Expr::one(),
        };
        assert_eq!(s.to_string(), "Q[o_ck] := 1");
    }
}
