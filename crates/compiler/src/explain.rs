//! EXPLAIN / EXPLAIN ANALYZE for compiled trigger programs.
//!
//! Higher-order delta compilation turns a query into opaque flat trigger
//! kernels; this module renders them back into an operator tree an operator
//! can read. Per relation it reports the [`BatchStrategy`] a multi-entry
//! delta batch will use **and why** — whether second-order batch-delta
//! derivation succeeded or which eligibility gate bailed
//! ([`BatchDeltaBail`](crate::program::BatchDeltaBail)), and which
//! statement-major rule failed
//! ([`StatementMajorBlock`](crate::program::StatementMajorBlock)) — and per
//! statement the compiled plan: probes
//! vs scans, product order, fused-prelude signatures, band specs and slot
//! assignments, straight from [`dbtoaster_agca::plan`].
//!
//! The same tree doubles as **EXPLAIN ANALYZE**: callers with a live engine
//! attach per-target-view counters ([`ViewStats`] — rows written, probes,
//! scans, entries scanned, fused/banded prelude hits, correction firings,
//! current map size) via [`ProgramExplain::attach_stats`]. Both a text
//! rendering and a dependency-free JSON form (round-trippable through
//! [`ProgramExplain::parse_json`]) are provided; the server's `/explain`
//! endpoint serves both.

use crate::program::{BatchStrategy, StmtOp, Trigger, TriggerProgram};
use dbtoaster_agca::plan::{FastOp, FusedScan, NumExpr, Op, Scalar};
use dbtoaster_agca::UpdateSign;
use std::fmt::Write as _;

/// Live per-view kernel counters joined into the tree for EXPLAIN ANALYZE.
/// All counts are cumulative since engine start; `map_size` is the current
/// entry count of the target map.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Rows written to the view by trigger statements.
    pub rows_written: u64,
    /// Fully bound index probes executed by kernels targeting the view.
    pub probes: u64,
    /// Full scans executed (plan scans plus fused-prelude traversals).
    pub scans: u64,
    /// Entries visited by those scans.
    pub entries_scanned: u64,
    /// Fused prelude traversals.
    pub fused_scans: u64,
    /// Banded prelude lookups answered from the sorted cache.
    pub banded_hits: u64,
    /// Banded prelude lookups that fell back to a full traversal.
    pub banded_bails: u64,
    /// Second-order batch-correction statement firings.
    pub correction_firings: u64,
    /// Current number of entries in the map.
    pub map_size: u64,
}

/// One explained trigger statement: its source text, compilation status,
/// fused-prelude signatures, rendered plan tree, and (after
/// [`ProgramExplain::attach_stats`]) the live counters of its target view.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StmtExplain {
    /// The statement, as the trigger program prints it.
    pub statement: String,
    /// Target map name (the ANALYZE attribution key).
    pub target: String,
    /// `+=` or `:=`.
    pub op: String,
    /// Did the statement lower to a compiled kernel (`false` = interpreted)?
    pub compiled: bool,
    /// One line per hoisted fused-prelude scan.
    pub prelude: Vec<String>,
    /// The plan tree, one indented line per operator.
    pub plan: Vec<String>,
    /// Live counters of the target view (EXPLAIN ANALYZE only).
    pub analyze: Option<ViewStats>,
}

/// The explained statements of one `(relation, sign)` trigger.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TriggerExplain {
    /// `"insert"` or `"delete"`.
    pub sign: String,
    /// Statements in execution order.
    pub statements: Vec<StmtExplain>,
}

/// The batch execution story of one stream relation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RelationExplain {
    /// The stream relation.
    pub relation: String,
    /// The chosen [`BatchStrategy`], as its stable lowercase name.
    pub strategy: String,
    /// Why that strategy was chosen (derivation success, the exact bail gate,
    /// the failed statement-major rule, or the forced override).
    pub reason: String,
    /// The shardability verdict for the relation (see
    /// [`crate::shard::analyze_sharding`]): `shard-local (...)` or
    /// `exchanges deltas: ...`, in the same stable style as `reason`.
    pub shard: String,
    /// Sign triggers present for the relation.
    pub triggers: Vec<TriggerExplain>,
    /// Second-order batch-correction statements, when batch-delta eligible.
    pub corrections: Vec<StmtExplain>,
}

/// A full EXPLAIN (or, with stats attached, EXPLAIN ANALYZE) of a compiled
/// trigger program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProgramExplain {
    /// The forced strategy override in effect, if any (the stable name).
    pub forced: Option<String>,
    /// Per-relation strategy, reason and plans.
    pub relations: Vec<RelationExplain>,
}

/// Explain `program` under an optional forced strategy override (the
/// `DBTOASTER_FORCE_BATCH_STRATEGY` resolution — pass the engine's forced
/// strategy so EXPLAIN reports exactly what the dispatch table holds).
pub fn explain(program: &TriggerProgram, force: Option<BatchStrategy>) -> ProgramExplain {
    let shard_plan = crate::shard::analyze_sharding(program);
    let relations = program
        .batch_dispatch_forced(force)
        .into_iter()
        .map(|d| {
            let triggers = [d.insert, d.delete]
                .into_iter()
                .flatten()
                .map(|i| explain_trigger(program, i))
                .collect();
            let corrections = program
                .batch_correction(&d.relation)
                .map(|c| {
                    c.statements
                        .iter()
                        .enumerate()
                        .map(|(j, s)| {
                            explain_statement(s, c.compiled.get(j).and_then(|k| k.as_ref()))
                        })
                        .collect()
                })
                .unwrap_or_default();
            RelationExplain {
                reason: strategy_reason(program, &d.relation, d.strategy, force),
                shard: shard_plan
                    .relation_plan(&d.relation)
                    .map(|r| r.reason.clone())
                    .unwrap_or_default(),
                relation: d.relation,
                strategy: d.strategy.as_str().to_string(),
                triggers,
                corrections,
            }
        })
        .collect();
    ProgramExplain {
        forced: force.map(|f| f.as_str().to_string()),
        relations,
    }
}

fn strategy_reason(
    program: &TriggerProgram,
    relation: &str,
    strategy: BatchStrategy,
    force: Option<BatchStrategy>,
) -> String {
    if force == Some(BatchStrategy::EntryMajor) {
        return "forced entry-major override".to_string();
    }
    let derivation = || match program.batch_correction(relation) {
        Some(c) if c.statements.is_empty() => {
            "second-order correction derived (all affected maps linear; no interaction terms)"
                .to_string()
        }
        Some(c) => format!(
            "second-order correction derived ({} interaction statements)",
            c.statements.len()
        ),
        None => match program
            .batch_delta_reason(relation)
            .and_then(|o| o.bail.as_ref())
        {
            Some(bail) => format!("batch-delta ineligible: {}", bail.describe()),
            None => "batch-delta correction not derived".to_string(),
        },
    };
    let rules = || match program.statement_major_block(relation) {
        None => "read-before-write analysis passed".to_string(),
        Some(block) => format!("statement-major illegal: {}", block.describe()),
    };
    match strategy {
        BatchStrategy::BatchDelta => derivation(),
        BatchStrategy::StatementMajor if force == Some(BatchStrategy::StatementMajor) => {
            format!("batch-delta disabled by forced override; {}", rules())
        }
        BatchStrategy::StatementMajor => format!("{}; {}", derivation(), rules()),
        BatchStrategy::EntryMajor => format!("{}; {}", derivation(), rules()),
    }
}

fn explain_trigger(program: &TriggerProgram, idx: usize) -> TriggerExplain {
    let t: &Trigger = &program.triggers[idx];
    let statements = t
        .statements
        .iter()
        .enumerate()
        .map(|(j, s)| {
            let kernel = program
                .compiled
                .get(idx)
                .and_then(|c| c.stmts.get(j))
                .and_then(|k| k.as_ref());
            explain_statement(s, kernel)
        })
        .collect();
    TriggerExplain {
        sign: match t.sign {
            UpdateSign::Insert => "insert".to_string(),
            UpdateSign::Delete => "delete".to_string(),
        },
        statements,
    }
}

fn explain_statement(
    s: &crate::program::Statement,
    kernel: Option<&dbtoaster_agca::CompiledStmt>,
) -> StmtExplain {
    let (prelude, plan) = match kernel {
        Some(k) => {
            let prelude = k.prelude.iter().map(fused_scan_line).collect();
            let mut plan = Vec::new();
            push_op(&mut plan, 0, &k.plan);
            (prelude, plan)
        }
        None => (Vec::new(), vec!["<interpreted: AST evaluator>".to_string()]),
    };
    StmtExplain {
        statement: s.to_string(),
        target: s.target.clone(),
        op: match s.op {
            StmtOp::Increment => "+=".to_string(),
            StmtOp::Replace => ":=".to_string(),
        },
        compiled: kernel.is_some(),
        prelude,
        plan,
        analyze: None,
    }
}

// --- plan rendering --------------------------------------------------------

fn pattern_str(template: &[Option<u16>], binds: &[(u16, u16)]) -> String {
    let cells: Vec<String> = template
        .iter()
        .enumerate()
        .map(|(pos, cell)| match cell {
            Some(slot) => format!("=${slot}"),
            None => match binds.iter().find(|(p, _)| *p as usize == pos) {
                Some((_, slot)) => format!(">${slot}"),
                None => "_".to_string(),
            },
        })
        .collect();
    cells.join(", ")
}

fn num_str(n: &NumExpr) -> String {
    match n {
        NumExpr::Const(c) => format!("{c}"),
        NumExpr::Slot(s) => format!("${s}"),
        NumExpr::Neg(i) => format!("-({})", num_str(i)),
        NumExpr::Add(ts) => ts.iter().map(num_str).collect::<Vec<_>>().join(" + "),
        NumExpr::Mul(ts) => ts.iter().map(num_str).collect::<Vec<_>>().join(" * "),
    }
}

fn scalar_str(s: &Scalar) -> String {
    match s {
        Scalar::Const(v) => format!("{v}"),
        Scalar::Slot(slot) => format!("${slot}"),
        Scalar::Neg(i) => format!("-({})", scalar_str(i)),
        Scalar::Add(ts) => ts.iter().map(scalar_str).collect::<Vec<_>>().join(" + "),
        Scalar::Mul(ts) => ts.iter().map(scalar_str).collect::<Vec<_>>().join(" * "),
        Scalar::Apply(f, args) => format!(
            "{f}({})",
            args.iter().map(scalar_str).collect::<Vec<_>>().join(", ")
        ),
        Scalar::Cmp(op, l, r) => format!("({} {op} {})", scalar_str(l), scalar_str(r)),
        Scalar::SubSum(op) => format!("subsum({})", op_summary(op)),
    }
}

/// One-line summary of an op (used inside scalar positions).
fn op_summary(op: &Op) -> String {
    match op {
        Op::ConstMult(c) => format!("const ×{c}"),
        Op::SlotMult(s) => format!("slot ×${s}"),
        Op::ScalarMult(s) => format!("scalar ×{}", scalar_str(s)),
        Op::Probe { rel, template, .. } => format!(
            "probe {rel}[{}]",
            template
                .iter()
                .map(|s| format!("${s}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Op::Scan {
            rel,
            template,
            binds,
            ..
        } => {
            format!("scan {rel}[{}]", pattern_str(template, binds))
        }
        Op::Product(ops) => format!("product({})", ops.len()),
        Op::Sum(ts) => format!("sum({})", ts.len()),
        Op::Neg(_) => "neg".to_string(),
        Op::AggSum(_) => "agg-sum".to_string(),
        Op::LiftBind { slot, value } => format!("lift ${slot} := {}", scalar_str(value)),
        Op::LiftEq { slot, value } => format!("lift-eq ${slot} == {}", scalar_str(value)),
        Op::CmpFilter { cmp, left, right } => {
            format!("filter {} {cmp} {}", scalar_str(left), scalar_str(right))
        }
        Op::Exists { slots, .. } => format!(
            "exists key=[{}]",
            slots
                .iter()
                .map(|s| format!("${s}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

/// Append the tree rendering of `op` (children indented two spaces per level).
fn push_op(lines: &mut Vec<String>, depth: usize, op: &Op) {
    let indent = "  ".repeat(depth);
    match op {
        Op::Product(ops) => {
            lines.push(format!("{indent}product"));
            for o in ops {
                push_op(lines, depth + 1, o);
            }
        }
        Op::Sum(ts) => {
            lines.push(format!("{indent}sum"));
            for t in ts {
                push_op(lines, depth + 1, t);
            }
        }
        Op::Neg(inner) => {
            lines.push(format!("{indent}neg"));
            push_op(lines, depth + 1, inner);
        }
        Op::AggSum(inner) => {
            lines.push(format!("{indent}agg-sum"));
            push_op(lines, depth + 1, inner);
        }
        Op::Exists { inner, .. } => {
            lines.push(format!("{indent}{}", op_summary(op)));
            push_op(lines, depth + 1, inner);
        }
        Op::Scan {
            rel,
            template,
            binds,
            eqs,
            ..
        } => {
            let eq_note = if eqs.is_empty() {
                String::new()
            } else {
                let pairs: Vec<String> = eqs.iter().map(|(a, b)| format!("t{a}==t{b}")).collect();
                format!(" where {}", pairs.join(", "))
            };
            lines.push(format!(
                "{indent}scan {rel}[{}]{eq_note}",
                pattern_str(template, binds)
            ));
        }
        other => {
            lines.push(format!("{indent}{}", op_summary(other)));
            // Sub-plans hidden inside scalar positions (decorrelated nested
            // aggregates) still deserve a subtree.
            for sub in scalar_subplans(other) {
                lines.push(format!("{indent}  subsum:"));
                push_op(lines, depth + 2, sub);
            }
        }
    }
}

/// The `SubSum` sub-plans reachable from an op's scalar positions.
fn scalar_subplans(op: &Op) -> Vec<&Op> {
    fn walk<'a>(s: &'a Scalar, out: &mut Vec<&'a Op>) {
        match s {
            Scalar::SubSum(op) => out.push(op),
            Scalar::Neg(i) => walk(i, out),
            Scalar::Add(ts) | Scalar::Mul(ts) | Scalar::Apply(_, ts) => {
                ts.iter().for_each(|t| walk(t, out))
            }
            Scalar::Cmp(_, l, r) => {
                walk(l, out);
                walk(r, out);
            }
            Scalar::Const(_) | Scalar::Slot(_) => {}
        }
    }
    let mut out = Vec::new();
    match op {
        Op::ScalarMult(s) | Op::LiftBind { value: s, .. } | Op::LiftEq { value: s, .. } => {
            walk(s, &mut out)
        }
        Op::CmpFilter { left, right, .. } => {
            walk(left, &mut out);
            walk(right, &mut out);
        }
        _ => {}
    }
    out
}

fn fused_scan_line(fs: &FusedScan) -> String {
    let mut line = format!(
        "fused scan {}[{}] members={}",
        fs.rel,
        pattern_str(&fs.template, &fs.binds),
        fs.members.len()
    );
    if fs.entry_invariant {
        line.push_str(" entry-invariant");
    }
    if let Some(pos) = fs.band_pos {
        line.push_str(&format!(" banded@t{pos}"));
    }
    for m in &fs.members {
        let _ = write!(line, "; →${}", m.dest);
        if let Some(fast) = &m.fast {
            let steps: Vec<String> = fast
                .iter()
                .map(|f| match f {
                    FastOp::Pred(cmp, l, r) => format!("{} {cmp} {}", num_str(l), num_str(r)),
                    FastOp::Weight(w) => format!("×{}", num_str(w)),
                })
                .collect();
            let _ = write!(line, " fast[{}]", steps.join(", "));
        }
        if let Some(band) = &m.band {
            let ranges: Vec<String> = band
                .ranges
                .iter()
                .map(|(cmp, b)| format!("key {cmp} {}", num_str(b)))
                .collect();
            let _ = write!(line, " band(t{}: {})", band.key_pos, ranges.join(", "));
        }
    }
    line
}

// --- ANALYZE join ----------------------------------------------------------

impl ProgramExplain {
    /// Attach live per-view counters: `lookup` maps a target view name to its
    /// [`ViewStats`]. Statements whose target the lookup cannot resolve keep
    /// `analyze: None`.
    pub fn attach_stats<F>(&mut self, lookup: F)
    where
        F: Fn(&str) -> Option<ViewStats>,
    {
        for rel in &mut self.relations {
            for stmt in rel
                .triggers
                .iter_mut()
                .flat_map(|t| t.statements.iter_mut())
                .chain(rel.corrections.iter_mut())
            {
                stmt.analyze = lookup(&stmt.target);
            }
        }
    }

    /// Render the tree as indented text (the `harness --explain` / `/explain`
    /// default).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if let Some(f) = &self.forced {
            let _ = writeln!(out, "forced strategy override: {f}");
        }
        for rel in &self.relations {
            let _ = writeln!(out, "== relation {} ==", rel.relation);
            let _ = writeln!(out, "strategy: {}", rel.strategy);
            let _ = writeln!(out, "reason: {}", rel.reason);
            if !rel.shard.is_empty() {
                let _ = writeln!(out, "shard: {}", rel.shard);
            }
            for t in &rel.triggers {
                let _ = writeln!(out, "on {}:", t.sign);
                for s in &t.statements {
                    render_stmt(&mut out, s);
                }
            }
            if !rel.corrections.is_empty() {
                let _ = writeln!(out, "batch corrections:");
                for s in &rel.corrections {
                    render_stmt(&mut out, s);
                }
            }
        }
        out
    }

    /// Render the tree as a self-contained JSON document (no dependencies;
    /// parseable back via [`ProgramExplain::parse_json`]).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"forced\":");
        match &self.forced {
            Some(f) => {
                let _ = write!(out, "\"{}\"", json_escape(f));
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"relations\":[");
        for (i, rel) in self.relations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"relation\":\"{}\",\"strategy\":\"{}\",\"reason\":\"{}\",\"shard\":\"{}\",\"triggers\":[",
                json_escape(&rel.relation),
                json_escape(&rel.strategy),
                json_escape(&rel.reason),
                json_escape(&rel.shard)
            );
            for (j, t) in rel.triggers.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"sign\":\"{}\",\"statements\":[",
                    json_escape(&t.sign)
                );
                for (k, s) in t.statements.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    stmt_json(&mut out, s);
                }
                out.push_str("]}");
            }
            out.push_str("],\"corrections\":[");
            for (k, s) in rel.corrections.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                stmt_json(&mut out, s);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Parse a [`ProgramExplain::render_json`] document back. Returns `None`
    /// on any structural mismatch.
    pub fn parse_json(s: &str) -> Option<ProgramExplain> {
        let v = json::parse(s)?;
        let obj = v.as_object()?;
        let forced = match obj.get("forced")? {
            json::Json::Null => None,
            json::Json::Str(f) => Some(f.clone()),
            _ => return None,
        };
        let mut relations = Vec::new();
        for rv in obj.get("relations")?.as_array()? {
            let r = rv.as_object()?;
            let mut triggers = Vec::new();
            for tv in r.get("triggers")?.as_array()? {
                let t = tv.as_object()?;
                let mut statements = Vec::new();
                for sv in t.get("statements")?.as_array()? {
                    statements.push(stmt_from_json(sv)?);
                }
                triggers.push(TriggerExplain {
                    sign: t.get("sign")?.as_str()?.to_string(),
                    statements,
                });
            }
            let mut corrections = Vec::new();
            for sv in r.get("corrections")?.as_array()? {
                corrections.push(stmt_from_json(sv)?);
            }
            relations.push(RelationExplain {
                relation: r.get("relation")?.as_str()?.to_string(),
                strategy: r.get("strategy")?.as_str()?.to_string(),
                reason: r.get("reason")?.as_str()?.to_string(),
                // Absent in pre-shard documents: tolerate for forward compat.
                shard: r
                    .get("shard")
                    .and_then(|v| v.as_str())
                    .unwrap_or_default()
                    .to_string(),
                triggers,
                corrections,
            });
        }
        Some(ProgramExplain { forced, relations })
    }
}

fn render_stmt(out: &mut String, s: &StmtExplain) {
    let _ = writeln!(out, "  {}", s.statement);
    let _ = writeln!(
        out,
        "    kernel: {}",
        if s.compiled {
            "compiled"
        } else {
            "interpreted"
        }
    );
    for p in &s.prelude {
        let _ = writeln!(out, "    prelude: {p}");
    }
    for line in &s.plan {
        let _ = writeln!(out, "    | {line}");
    }
    if let Some(a) = &s.analyze {
        let _ = writeln!(
            out,
            "    analyze: rows={} probes={} scans={} entries={} fused={} banded={}/{} \
             corrections={} map_size={}",
            a.rows_written,
            a.probes,
            a.scans,
            a.entries_scanned,
            a.fused_scans,
            a.banded_hits,
            a.banded_bails,
            a.correction_firings,
            a.map_size
        );
    }
}

fn stmt_json(out: &mut String, s: &StmtExplain) {
    let _ = write!(
        out,
        "{{\"statement\":\"{}\",\"target\":\"{}\",\"op\":\"{}\",\"compiled\":{}",
        json_escape(&s.statement),
        json_escape(&s.target),
        json_escape(&s.op),
        s.compiled
    );
    out.push_str(",\"prelude\":[");
    for (i, p) in s.prelude.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json_escape(p));
    }
    out.push_str("],\"plan\":[");
    for (i, p) in s.plan.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json_escape(p));
    }
    out.push_str("],\"analyze\":");
    match &s.analyze {
        Some(a) => {
            let _ = write!(
                out,
                "{{\"rows_written\":{},\"probes\":{},\"scans\":{},\"entries_scanned\":{},\
                 \"fused_scans\":{},\"banded_hits\":{},\"banded_bails\":{},\
                 \"correction_firings\":{},\"map_size\":{}}}",
                a.rows_written,
                a.probes,
                a.scans,
                a.entries_scanned,
                a.fused_scans,
                a.banded_hits,
                a.banded_bails,
                a.correction_firings,
                a.map_size
            );
        }
        None => out.push_str("null"),
    }
    out.push('}');
}

fn stmt_from_json(v: &json::Json) -> Option<StmtExplain> {
    let o = v.as_object()?;
    let strings = |key: &str| -> Option<Vec<String>> {
        o.get(key)?
            .as_array()?
            .iter()
            .map(|e| e.as_str().map(str::to_string))
            .collect()
    };
    let analyze = match o.get("analyze")? {
        json::Json::Null => None,
        a => {
            let a = a.as_object()?;
            let field = |k: &str| a.get(k).and_then(json::Json::as_u64);
            Some(ViewStats {
                rows_written: field("rows_written")?,
                probes: field("probes")?,
                scans: field("scans")?,
                entries_scanned: field("entries_scanned")?,
                fused_scans: field("fused_scans")?,
                banded_hits: field("banded_hits")?,
                banded_bails: field("banded_bails")?,
                correction_firings: field("correction_firings")?,
                map_size: field("map_size")?,
            })
        }
    };
    Some(StmtExplain {
        statement: o.get("statement")?.as_str()?.to_string(),
        target: o.get("target")?.as_str()?.to_string(),
        op: o.get("op")?.as_str()?.to_string(),
        compiled: o.get("compiled")?.as_bool()?,
        prelude: strings("prelude")?,
        plan: strings("plan")?,
        analyze,
    })
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A minimal JSON reader — just enough to round-trip
/// [`ProgramExplain::render_json`] documents and to assert on the server's
/// JSON endpoints in tests. Std-only by policy (the build environment has no
/// registry access, and the real `serde_json` would be the only consumer).
pub mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (parsed as f64; integers up to 2^53 are exact).
        Num(f64),
        /// A string (escapes decoded).
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object.
        Obj(BTreeMap<String, Json>),
    }

    impl Json {
        /// The string value, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The boolean value, if this is a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Json::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The number as a `u64`, if this is a non-negative integer number.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }

        /// The number, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(a) => Some(a),
                _ => None,
            }
        }

        /// The fields, if this is an object.
        pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
            match self {
                Json::Obj(o) => Some(o),
                _ => None,
            }
        }
    }

    /// Parse one JSON document (trailing whitespace allowed, trailing content
    /// rejected). Returns `None` on any syntax error.
    pub fn parse(s: &str) -> Option<Json> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Option<Json> {
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b'{' => {
                *pos += 1;
                let mut obj = BTreeMap::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Some(Json::Obj(obj));
                }
                loop {
                    skip_ws(b, pos);
                    let key = match parse_value(b, pos)? {
                        Json::Str(s) => s,
                        _ => return None,
                    };
                    skip_ws(b, pos);
                    if b.get(*pos) != Some(&b':') {
                        return None;
                    }
                    *pos += 1;
                    let val = parse_value(b, pos)?;
                    obj.insert(key, val);
                    skip_ws(b, pos);
                    match b.get(*pos)? {
                        b',' => *pos += 1,
                        b'}' => {
                            *pos += 1;
                            return Some(Json::Obj(obj));
                        }
                        _ => return None,
                    }
                }
            }
            b'[' => {
                *pos += 1;
                let mut arr = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Some(Json::Arr(arr));
                }
                loop {
                    arr.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos)? {
                        b',' => *pos += 1,
                        b']' => {
                            *pos += 1;
                            return Some(Json::Arr(arr));
                        }
                        _ => return None,
                    }
                }
            }
            b'"' => {
                *pos += 1;
                let mut out = String::new();
                loop {
                    match *b.get(*pos)? {
                        b'"' => {
                            *pos += 1;
                            return Some(Json::Str(out));
                        }
                        b'\\' => {
                            *pos += 1;
                            match *b.get(*pos)? {
                                b'"' => out.push('"'),
                                b'\\' => out.push('\\'),
                                b'/' => out.push('/'),
                                b'n' => out.push('\n'),
                                b'r' => out.push('\r'),
                                b't' => out.push('\t'),
                                b'b' => out.push('\u{8}'),
                                b'f' => out.push('\u{c}'),
                                b'u' => {
                                    let hex = b.get(*pos + 1..*pos + 5)?;
                                    let code =
                                        u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16)
                                            .ok()?;
                                    // Surrogate pairs are not produced by any
                                    // in-tree writer; reject rather than
                                    // mis-decode.
                                    out.push(char::from_u32(code)?);
                                    *pos += 4;
                                }
                                _ => return None,
                            }
                            *pos += 1;
                        }
                        _ => {
                            // Consume one UTF-8 scalar (multi-byte safe).
                            let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                            let c = rest.chars().next()?;
                            out.push(c);
                            *pos += c.len_utf8();
                        }
                    }
                }
            }
            b't' => {
                if b.get(*pos..*pos + 4)? == b"true" {
                    *pos += 4;
                    Some(Json::Bool(true))
                } else {
                    None
                }
            }
            b'f' => {
                if b.get(*pos..*pos + 5)? == b"false" {
                    *pos += 5;
                    Some(Json::Bool(false))
                } else {
                    None
                }
            }
            b'n' => {
                if b.get(*pos..*pos + 4)? == b"null" {
                    *pos += 4;
                    Some(Json::Null)
                } else {
                    None
                }
            }
            _ => {
                let start = *pos;
                while *pos < b.len()
                    && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *pos += 1;
                }
                std::str::from_utf8(&b[start..*pos])
                    .ok()?
                    .parse::<f64>()
                    .ok()
                    .map(Json::Num)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::program::{Catalog, CompileMode, CompileOptions, QuerySpec, RelationMeta};
    use dbtoaster_agca::Expr;

    fn program() -> TriggerProgram {
        let catalog: Catalog = [
            RelationMeta::stream("R", ["A", "B"]),
            RelationMeta::stream("S", ["B", "C"]),
        ]
        .into_iter()
        .collect();
        let q = QuerySpec {
            name: "Q".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["a", "b"]),
                    Expr::rel("S", ["b", "c"]),
                    Expr::var("c"),
                ]),
            ),
        };
        compile(
            &[q],
            &catalog,
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap()
    }

    #[test]
    fn explain_reports_strategy_and_reason_per_relation() {
        let p = program();
        let ex = explain(&p, None);
        assert_eq!(ex.relations.len(), 2);
        for rel in &ex.relations {
            assert_eq!(rel.strategy, "batch-delta");
            assert!(
                rel.reason.contains("second-order correction derived"),
                "{}",
                rel.reason
            );
            assert!(!rel.triggers.is_empty());
            for t in &rel.triggers {
                for s in &t.statements {
                    assert!(s.compiled, "workload statements lower: {}", s.statement);
                    assert!(!s.plan.is_empty());
                }
            }
        }
    }

    #[test]
    fn forced_overrides_are_reflected() {
        let p = program();
        let entry = explain(&p, Some(BatchStrategy::EntryMajor));
        assert_eq!(entry.forced.as_deref(), Some("entry-major"));
        for rel in &entry.relations {
            assert_eq!(rel.strategy, "entry-major");
            assert_eq!(rel.reason, "forced entry-major override");
        }
        let stmt = explain(&p, Some(BatchStrategy::StatementMajor));
        for rel in &stmt.relations {
            assert_ne!(rel.strategy, "batch-delta");
            assert!(rel.reason.contains("disabled by forced override"));
        }
    }

    #[test]
    fn json_round_trips_with_and_without_stats() {
        let p = program();
        let mut ex = explain(&p, None);
        let parsed = ProgramExplain::parse_json(&ex.render_json()).expect("parses");
        assert_eq!(parsed, ex);
        ex.attach_stats(|_| {
            Some(ViewStats {
                rows_written: 7,
                probes: 3,
                entries_scanned: 11,
                map_size: 5,
                ..ViewStats::default()
            })
        });
        let parsed = ProgramExplain::parse_json(&ex.render_json()).expect("parses");
        assert_eq!(parsed, ex);
    }

    #[test]
    fn text_rendering_contains_the_load_bearing_lines() {
        let p = program();
        let text = explain(&p, None).render_text();
        assert!(text.contains("== relation R =="));
        assert!(text.contains("strategy: batch-delta"));
        assert!(text.contains("reason: "));
        assert!(text.contains("shard: "));
        assert!(text.contains("kernel: compiled"));
    }

    #[test]
    fn json_parser_handles_escapes_and_rejects_garbage() {
        let v = json::parse(r#"{"a":"x\"\\\né","b":[1,2.5,-3],"c":null}"#).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(o.get("a").unwrap().as_str().unwrap(), "x\"\\\né");
        assert_eq!(
            o.get("b").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-3.0)
        );
        assert!(json::parse("{\"a\":}").is_none());
        assert!(json::parse("[1,2,]").is_none());
        assert!(json::parse("{} trailing").is_none());
    }
}
