//! The compilation pipeline: viewlet transform and Higher-Order IVM (Sections 4–5).
//!
//! [`compile`] turns a set of AGCA queries into a [`TriggerProgram`]. The recursion
//! follows Algorithm 2 of the paper:
//!
//! 1. the query itself is registered as a materialized view;
//! 2. for every view awaiting maintenance and every `(relation, ±)` pair, the delta is
//!    taken, simplified and turned into an update statement whose subexpressions are
//!    materialized by the [`crate::materialize::Materializer`];
//! 3. the newly created views are themselves queued for maintenance, until no view with
//!    a non-zero delta remains.
//!
//! The baseline strategies of the evaluation (REP, classical IVM, the naive viewlet
//! transform) are obtained from the same pipeline through [`CompileOptions`].

use crate::materialize::{contains_base_atoms, MapRegistry, Materializer};
use crate::program::{
    Catalog, CompileMode, CompileOptions, CompileReport, CompiledTrigger, MapDecl, QueryResult,
    QuerySpec, ResultAccess, Statement, StmtOp, Trigger, TriggerProgram,
};
use dbtoaster_agca::opt::{extract_range_restrictions, order_factors, unify_factors, Monomial};
use dbtoaster_agca::scope::output_vars;
use dbtoaster_agca::{
    decorrelate, delta, expand, simplify, AtomKind, Expr, TupleUpdate, UpdateSign,
};
use dbtoaster_gmr::FastMap;
use std::collections::BTreeSet;
use std::fmt;

/// Errors raised during compilation.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// A relation atom refers to a relation missing from the catalog.
    UnknownRelation(String),
    /// A relation atom's arity does not match the catalog.
    ArityMismatch {
        relation: String,
        expected: usize,
        actual: usize,
    },
    /// No queries were given.
    NoQueries,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            CompileError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "relation {relation} has {actual} columns, atom uses {expected}"
            ),
            CompileError::NoQueries => write!(f, "no queries to compile"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compile a set of queries into a trigger program under the given options.
pub fn compile(
    queries: &[QuerySpec],
    catalog: &Catalog,
    options: &CompileOptions,
) -> Result<TriggerProgram, CompileError> {
    if queries.is_empty() {
        return Err(CompileError::NoQueries);
    }
    let mut registry = MapRegistry::new();
    let mut report = CompileReport::default();
    let mut triggers: Vec<Trigger> = Vec::new();
    let mut results: Vec<QueryResult> = Vec::new();

    // ------------------------------------------------------------- register queries
    for q in queries {
        let mut expr = fix_atom_kinds(&q.expr, catalog)?;
        if options.enable_decorrelation {
            // Rewrite equality-correlated nested aggregates into group-by form; purely
            // structural (the nested-rewrite report flag is set by the materializer when
            // rule 4 actually fires).
            expr = decorrelate(&expr);
        }
        let expr = simplify(&expr);

        results.push(QueryResult {
            name: q.name.clone(),
            out_vars: q.out_vars.clone(),
            access: ResultAccess::Map(q.name.clone()),
        });

        if options.mode == CompileMode::Reevaluate {
            registry.register_named(&q.name, expr.clone(), q.out_vars.clone(), true, 0);
            for rel in expr.stream_relations() {
                for sign in UpdateSign::both() {
                    let meta = catalog
                        .get(&rel)
                        .ok_or_else(|| CompileError::UnknownRelation(rel.clone()))?;
                    let update = TupleUpdate::new(&rel, sign, &meta.columns);
                    let stmt = Statement {
                        target: q.name.clone(),
                        key_vars: q.out_vars.clone(),
                        loop_vars: q.out_vars.clone(),
                        op: StmtOp::Replace,
                        rhs: expr.clone(),
                    };
                    report.statements += 1;
                    push_statement(&mut triggers, &rel, sign, &update.trigger_vars, stmt);
                }
            }
        } else {
            registry.register_named(&q.name, expr, q.out_vars.clone(), true, 0);
        }
    }

    // ----------------------------------------------------- viewlet / HO-IVM recursion
    if options.mode != CompileMode::Reevaluate {
        while let Some((idx, depth)) = registry.pop_pending() {
            let decl = registry.decl(idx).clone();
            let my_canon = registry.canon_key(idx).to_string();
            if !decl.definition.contains_atom_kind(AtomKind::Stream) {
                continue; // static view: initialized from tables, never updated.
            }
            let streams = decl.definition.stream_relations();
            for rel_name in streams {
                let meta = catalog
                    .get(&rel_name)
                    .ok_or_else(|| CompileError::UnknownRelation(rel_name.clone()))?;
                if meta.kind != AtomKind::Stream {
                    continue;
                }
                let reeval = options.enable_reevaluation_heuristic
                    && nested_requires_reevaluation(&decl.definition, &rel_name);
                for sign in UpdateSign::both() {
                    let update = TupleUpdate::new(&rel_name, sign, &meta.columns);
                    let bound: BTreeSet<String> = update.trigger_vars.iter().cloned().collect();
                    report.max_delta_order = report.max_delta_order.max(depth + 1);

                    let stmt = if reeval {
                        report.used_reevaluation = true;
                        let mut mat = Materializer {
                            registry: &mut registry,
                            options,
                            report: &mut report,
                            depth: depth + 1,
                            avoid: Some(my_canon.clone()),
                            name_hint: short_hint(&decl.name),
                        };
                        let rhs = mat.materialize_body(
                            &decl.definition,
                            &decl.out_vars,
                            &BTreeSet::new(),
                        );
                        let rhs = reorder_products(&rhs, &BTreeSet::new());
                        Some(Statement {
                            target: decl.name.clone(),
                            key_vars: decl.out_vars.clone(),
                            loop_vars: decl.out_vars.clone(),
                            op: StmtOp::Replace,
                            rhs,
                        })
                    } else {
                        if has_equality_correlated_nested(&decl.definition, &rel_name) {
                            report.used_incremental_nested = true;
                        }
                        let d = simplify(&delta(&decl.definition, &update));
                        if d.is_zero() {
                            None
                        } else {
                            let materialize_here =
                                options.materialize_deltas && depth < options.max_depth;
                            make_increment_statement(
                                &decl,
                                d,
                                &bound,
                                &mut registry,
                                options,
                                &mut report,
                                depth,
                                materialize_here,
                            )
                        }
                    };
                    if let Some(stmt) = stmt {
                        report.statements += 1;
                        push_statement(&mut triggers, &rel_name, sign, &update.trigger_vars, stmt);
                    }
                }
            }
        }
    }

    // ----------------------------------------------------------------- finalize
    let maps = registry.into_maps();
    let mut stored_relations = BTreeSet::new();
    let mut static_tables = BTreeSet::new();
    for t in &triggers {
        for s in &t.statements {
            for rel in s.base_reads() {
                match catalog.get(&rel).map(|m| m.kind) {
                    Some(AtomKind::Table) => {
                        static_tables.insert(rel);
                    }
                    _ => {
                        stored_relations.insert(rel);
                    }
                }
            }
        }
    }
    for m in &maps {
        for atom in m.definition.atoms() {
            if atom.kind == AtomKind::Table
                || catalog.get(&atom.name).map(|r| r.kind) == Some(AtomKind::Table)
            {
                static_tables.insert(atom.name.clone());
            }
        }
    }
    for t in &mut triggers {
        order_statements(t);
    }

    // Lower every statement to a compiled kernel where its shape allows (the
    // runtime interprets the rest). This is the compile-once step that retires
    // per-event AST interpretation on the hot path; it must run after
    // `order_statements` so kernels align index-for-index with the statements.
    let compiled: Vec<CompiledTrigger> = triggers
        .iter()
        .map(|t| CompiledTrigger {
            stmts: t
                .statements
                .iter()
                .map(|s| dbtoaster_agca::lower_statement(&t.trigger_vars, &s.key_vars, &s.rhs))
                .collect(),
        })
        .collect();

    // Second-order batch corrections: per eligible relation, the statements
    // completing pre-run-state batch execution (see `crate::batch_delta`).
    // Lowered through the same kernel pipeline as trigger statements, with no
    // trigger variables — a correction runs once per run, scanning the run's
    // delta pseudo-relations.
    let (mut batch_corrections, batch_delta_reasons) =
        crate::batch_delta::derive_batch_corrections_with_reasons(&maps, &triggers, catalog);
    for c in &mut batch_corrections {
        c.compiled = c
            .statements
            .iter()
            .map(|s| dbtoaster_agca::lower_statement(&[], &s.key_vars, &s.rhs))
            .collect();
    }
    // A correction may read a *surviving* stream atom — another relation's
    // stored slice, constant during the run (see `crate::batch_delta` gate
    // 3b). Keep those relations stored even when no trigger statement reads
    // them directly, so the correction's pre-run read has state to probe.
    for c in &batch_corrections {
        for s in &c.statements {
            for rel in s.base_reads() {
                match catalog.get(&rel).map(|m| m.kind) {
                    Some(AtomKind::Table) => {
                        static_tables.insert(rel);
                    }
                    _ => {
                        stored_relations.insert(rel);
                    }
                }
            }
        }
    }

    Ok(TriggerProgram {
        maps,
        triggers,
        compiled,
        results,
        stored_relations,
        static_tables,
        batch_corrections,
        batch_delta_reasons,
        report,
    })
}

/// Set the `AtomKind` of every base atom from the catalog and validate arities.
pub fn fix_atom_kinds(expr: &Expr, catalog: &Catalog) -> Result<Expr, CompileError> {
    let result = match expr {
        Expr::Rel(r) if r.kind != AtomKind::View => {
            let meta = catalog
                .get(&r.name)
                .ok_or_else(|| CompileError::UnknownRelation(r.name.clone()))?;
            if meta.columns.len() != r.args.len() {
                return Err(CompileError::ArityMismatch {
                    relation: r.name.clone(),
                    expected: r.args.len(),
                    actual: meta.columns.len(),
                });
            }
            Expr::Rel(dbtoaster_agca::RelRef {
                name: r.name.clone(),
                args: r.args.clone(),
                kind: meta.kind,
            })
        }
        Expr::Rel(_) => expr.clone(),
        _ => {
            let mut err = None;
            let mapped = expr.map_children(&mut |c| match fix_atom_kinds(c, catalog) {
                Ok(e) => e,
                Err(e) => {
                    err = Some(e);
                    c.clone()
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            mapped
        }
    };
    Ok(result)
}

fn short_hint(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_alphanumeric())
        .take(8)
        .collect()
}

fn push_statement(
    triggers: &mut Vec<Trigger>,
    relation: &str,
    sign: UpdateSign,
    trigger_vars: &[String],
    stmt: Statement,
) {
    if let Some(t) = triggers
        .iter_mut()
        .find(|t| t.relation == relation && t.sign == sign)
    {
        t.statements.push(stmt);
    } else {
        triggers.push(Trigger {
            relation: relation.to_string(),
            sign,
            trigger_vars: trigger_vars.to_vec(),
            statements: vec![stmt],
        });
    }
}

/// Build an incremental (`+=`) update statement from a simplified delta expression.
#[allow(clippy::too_many_arguments)]
fn make_increment_statement(
    decl: &MapDecl,
    d: Expr,
    bound: &BTreeSet<String>,
    registry: &mut MapRegistry,
    options: &CompileOptions,
    report: &mut CompileReport,
    depth: usize,
    materialize: bool,
) -> Option<Statement> {
    // Strip a top-level AggSum that matches the target's key columns.
    let out_vars = decl.out_vars.clone();
    let body = match d {
        Expr::AggSum(gb, b)
            if gb.len() == out_vars.len() && gb.iter().all(|g| out_vars.contains(g)) =>
        {
            *b
        }
        other => other,
    };
    let protected: BTreeSet<String> = out_vars.iter().cloned().collect();
    let poly = expand(&body);
    if poly.monomials.is_empty() {
        return None;
    }
    if poly.monomials.len() > 1 {
        report.used_expansion = true;
    }
    let unified: Vec<Monomial> = poly
        .monomials
        .iter()
        .map(|m| Monomial {
            coef: m.coef,
            factors: order_factors(&unify_factors(&m.factors, bound, &protected), bound),
        })
        .collect();

    // Range restrictions shared by every clause can be applied to the statement's key.
    let mut common: Option<FastMap<String, String>> = None;
    if options.enable_range_restriction {
        for m in &unified {
            let (subst, _) = extract_range_restrictions(&m.factors, &out_vars, bound);
            common = Some(match common {
                None => subst,
                Some(c) => c
                    .into_iter()
                    .filter(|(k, v)| subst.get(k) == Some(v))
                    .collect(),
            });
        }
    }
    let common = common.unwrap_or_default();

    let mut key_vars = out_vars.clone();
    let mut loop_vars = Vec::new();
    for kv in key_vars.iter_mut() {
        match common.get(kv) {
            Some(t) => *kv = t.clone(),
            None => loop_vars.push(kv.clone()),
        }
    }

    let mut opts = options.clone();
    opts.materialize_deltas = materialize;
    let mut mat = Materializer {
        registry,
        options: &opts,
        report,
        depth: depth + 1,
        avoid: None,
        name_hint: short_hint(&decl.name),
    };
    let mut terms = Vec::with_capacity(unified.len());
    for m in &unified {
        // Drop the extracted range-restriction lifts and rename their variables to the
        // trigger arguments everywhere else in the clause.
        let mut factors: Vec<Expr> = Vec::with_capacity(m.factors.len());
        for f in &m.factors {
            if let Expr::Lift(x, e) = f {
                if let (Some(t), Expr::Var(v)) = (common.get(x), &**e) {
                    if v == t {
                        continue;
                    }
                }
            }
            factors.push(f.clone());
        }
        let factors: Vec<Expr> = factors.iter().map(|f| f.rename_vars(&common)).collect();
        let term = mat.materialize_monomial(
            &Monomial {
                coef: m.coef,
                factors,
            },
            &loop_vars,
            bound,
        );
        // Normalize every clause to exactly the loop variables so the clauses of the
        // statement's right-hand side union cleanly at runtime.
        terms.push(crate::materialize::normalize_schema(
            term, &loop_vars, bound,
        ));
    }
    let rhs = simplify(&Expr::sum_of(terms));
    if rhs.is_zero() {
        return None;
    }
    let rhs = reorder_products(&rhs, bound);
    Some(Statement {
        target: decl.name.clone(),
        key_vars,
        loop_vars,
        op: StmtOp::Increment,
        rhs,
    })
}

/// Recursively re-order the factors of every product so that each factor's input
/// variables are produced to its left (or are bound). The optimizer's rewrites operate
/// on products as multisets; this final pass restores an evaluable sideways-information-
/// passing order before a statement is emitted. Factors whose inputs come from an
/// enclosing scope are left in their original relative order.
pub(crate) fn reorder_products(e: &Expr, bound: &BTreeSet<String>) -> Expr {
    match e {
        Expr::Mul(fs) => {
            let fs: Vec<Expr> = fs.iter().map(|f| reorder_products(f, bound)).collect();
            Expr::product_of(order_factors(&fs, bound))
        }
        _ => e.map_children(&mut |c| reorder_products(c, bound)),
    }
}

/// Output variables of the base atoms that are *not* nested inside a lift or `Exists`
/// (the "outer" query of a nested-aggregate pattern).
fn outer_atom_vars(expr: &Expr, out: &mut BTreeSet<String>) {
    match expr {
        Expr::Rel(r) if r.kind != AtomKind::View => out.extend(r.args.iter().cloned()),
        Expr::Lift(..) | Expr::Exists(..) | Expr::Cmp(..) | Expr::Apply(..) => {}
        Expr::Add(ts) | Expr::Mul(ts) => {
            for t in ts {
                outer_atom_vars(t, out);
            }
        }
        Expr::Neg(e) | Expr::AggSum(_, e) => outer_atom_vars(e, out),
        _ => {}
    }
}

fn nested_bodies(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    expr.visit(&mut |e| match e {
        Expr::Lift(_, b) | Expr::Exists(b) if contains_base_atoms(b) => {
            out.push((**b).clone());
        }
        _ => {}
    });
    out
}

/// Variables appearing as arguments of base atoms anywhere in the expression (including
/// inside nested aggregates).
fn inner_atom_arg_vars(expr: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    expr.visit(&mut |e| {
        if let Expr::Rel(r) = e {
            if r.kind != AtomKind::View {
                out.extend(r.args.iter().cloned());
            }
        }
    });
    out
}

fn equality_correlated(body: &Expr, outer: &BTreeSet<String>) -> bool {
    // A nested aggregate is equality-correlated with the outer query when it shares a
    // variable with the outer atoms — either because decorrelation turned the equality
    // into a group-by variable, or because the SQL frontend unified the correlation
    // columns into a single shared variable used in an inner atom argument.
    output_vars(body).iter().any(|v| outer.contains(v))
        || inner_atom_arg_vars(body).iter().any(|v| outer.contains(v))
}

/// Does maintaining this view for updates to `relation` require re-evaluation rather
/// than an incremental delta? Per Section 5.1, re-evaluation is chosen when the view has
/// a nested aggregate over `relation` that is *not* correlated with the outer query on
/// an equality (i.e. uncorrelated, or correlated only through inequalities).
pub fn nested_requires_reevaluation(definition: &Expr, relation: &str) -> bool {
    let mut outer = BTreeSet::new();
    outer_atom_vars(definition, &mut outer);
    nested_bodies(definition)
        .iter()
        .any(|b| b.references_relation(relation) && !equality_correlated(b, &outer))
}

/// Does the view have an equality-correlated nested aggregate over `relation`?
pub fn has_equality_correlated_nested(definition: &Expr, relation: &str) -> bool {
    let mut outer = BTreeSet::new();
    outer_atom_vars(definition, &mut outer);
    nested_bodies(definition)
        .iter()
        .any(|b| b.references_relation(relation) && equality_correlated(b, &outer))
}

/// Order the statements of a trigger so that incremental statements read the *old*
/// versions of the views they use and re-evaluation statements read the *new* versions:
/// increments that read a view precede the increment writing it; replaces come last,
/// after everything they read has been updated.
fn order_statements(trigger: &mut Trigger) {
    let stmts = std::mem::take(&mut trigger.statements);
    let (increments, replaces): (Vec<_>, Vec<_>) =
        stmts.into_iter().partition(|s| s.op == StmtOp::Increment);

    // Kahn's algorithm over "must precede" edges: reader -> writer for increments.
    let ordered_inc = topo_order(&increments, |a, b| a.reads().contains(&b.target));
    // For replaces: writer -> reader (a replace reading map m runs after m's replace).
    let ordered_rep = topo_order(&replaces, |a, b| b.reads().contains(&a.target));

    trigger.statements = ordered_inc.into_iter().chain(ordered_rep).collect();
}

/// Stable topological order where `precedes(a, b)` means `a` must come before `b`.
/// Falls back to the original order if the constraint graph has a cycle.
fn topo_order(
    stmts: &[Statement],
    precedes: impl Fn(&Statement, &Statement) -> bool,
) -> Vec<Statement> {
    let n = stmts.len();
    let mut indegree = vec![0usize; n];
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if i != j && precedes(&stmts[i], &stmts[j]) {
                edges[i].push(j);
                indegree[j] += 1;
            }
        }
    }
    let mut out = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    loop {
        let next = (0..n).find(|&i| !placed[i] && indegree[i] == 0);
        match next {
            Some(i) => {
                placed[i] = true;
                out.push(stmts[i].clone());
                for &j in &edges[i] {
                    indegree[j] = indegree[j].saturating_sub(1);
                }
            }
            None => break,
        }
    }
    if out.len() != n {
        // Cycle: keep the original order.
        return stmts.to_vec();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::RelationMeta;
    use dbtoaster_agca::CmpOp as Op;

    fn rs_catalog() -> Catalog {
        [
            RelationMeta::stream("R", ["A", "B"]),
            RelationMeta::stream("S", ["B", "C"]),
            RelationMeta::stream("T", ["C", "D"]),
            RelationMeta::table("Nation", ["NK", "NAME"]),
        ]
        .into_iter()
        .collect()
    }

    fn count_query() -> QuerySpec {
        // Example 1: count of R x S (no join condition).
        QuerySpec {
            name: "Q".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([Expr::rel("R", ["A", "B"]), Expr::rel("S", ["B1", "C"])]),
            ),
        }
    }

    fn join_sum_query() -> QuerySpec {
        // Example 2: SUM(price * xch) over an equijoin.
        QuerySpec {
            name: "Q".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["K", "XCH"]),
                    Expr::rel("S", ["K", "PRICE"]),
                    Expr::var("XCH"),
                    Expr::var("PRICE"),
                ]),
            ),
        }
    }

    #[test]
    fn higher_order_compilation_of_example1() {
        let prog = compile(
            &[count_query()],
            &rs_catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        // Q plus the two first-order views (count of S, count of R); the second-order
        // deltas are constants and are inlined.
        assert!(prog.maps.len() >= 3, "{prog}");
        assert!(prog.trigger("R", UpdateSign::Insert).is_some());
        assert!(prog.trigger("S", UpdateSign::Delete).is_some());
        // No statement in HO mode reads a base relation: everything is views+constants.
        assert!(prog.stored_relations.is_empty(), "{prog}");
        // The insert-into-R trigger updates Q using the materialized count of S.
        let tr = prog.trigger("R", UpdateSign::Insert).unwrap();
        assert!(tr.statements.iter().any(|s| s.target == "Q"));
    }

    #[test]
    fn first_order_mode_reads_base_relations() {
        let prog = compile(
            &[count_query()],
            &rs_catalog(),
            &CompileOptions::for_mode(CompileMode::FirstOrder),
        )
        .unwrap();
        // Only the query map is materialized; deltas read the stored base relations.
        assert_eq!(prog.maps.len(), 1);
        assert!(!prog.stored_relations.is_empty());
    }

    #[test]
    fn reevaluation_mode_replaces_result() {
        let prog = compile(
            &[count_query()],
            &rs_catalog(),
            &CompileOptions::for_mode(CompileMode::Reevaluate),
        )
        .unwrap();
        let tr = prog.trigger("R", UpdateSign::Insert).unwrap();
        assert_eq!(tr.statements.len(), 1);
        assert_eq!(tr.statements[0].op, StmtOp::Replace);
        assert!(prog.stored_relations.contains("R") && prog.stored_relations.contains("S"));
    }

    #[test]
    fn example2_triggers_are_constant_time() {
        let prog = compile(
            &[join_sum_query()],
            &rs_catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        // Every statement in the R/S triggers has no loop variables (constant work).
        for t in &prog.triggers {
            for s in &t.statements {
                assert!(
                    s.loop_vars.is_empty(),
                    "expected constant-time statement, got {s} in {t}"
                );
            }
        }
        assert!(prog.report.max_delta_order >= 2);
    }

    #[test]
    fn static_tables_do_not_get_triggers() {
        let q = QuerySpec {
            name: "QN".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["A", "NK"]),
                    Expr::rel("Nation", ["NK", "NAME"]),
                ]),
            ),
        };
        let prog = compile(
            &[q],
            &rs_catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        assert!(prog.trigger("Nation", UpdateSign::Insert).is_none());
        assert!(prog.static_tables.contains("Nation"));
        // The delta map over Nation alone is initialized from tables.
        assert!(prog.maps.iter().any(|m| m.init_from_tables));
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let q = QuerySpec {
            name: "Q".into(),
            out_vars: vec![],
            expr: Expr::rel("Mystery", ["x"]),
        };
        let err = compile(
            &[q],
            &rs_catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::UnknownRelation(_)));
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let q = QuerySpec {
            name: "Q".into(),
            out_vars: vec![],
            expr: Expr::rel("R", ["x"]),
        };
        let err = compile(
            &[q],
            &rs_catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::ArityMismatch { .. }));
    }

    #[test]
    fn reevaluation_heuristic_for_uncorrelated_nested_aggregate() {
        // Q = Sum[](R(A,B) * (z := Sum[](S(C,D)*D)) * (B < z)) — PSP-like: the nested
        // aggregate is uncorrelated, so updates to S re-evaluate the top level.
        let nested = Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([Expr::rel("S", ["C", "D"]), Expr::var("D")]),
        );
        let q = QuerySpec {
            name: "Q".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["A", "B"]),
                    Expr::lift("z", nested),
                    Expr::cmp(Op::Lt, Expr::var("B"), Expr::var("z")),
                ]),
            ),
        };
        let prog = compile(
            &[q],
            &rs_catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        assert!(prog.report.used_reevaluation);
        let s_trigger = prog.trigger("S", UpdateSign::Insert).unwrap();
        assert!(s_trigger
            .statements
            .iter()
            .any(|s| s.op == StmtOp::Replace && s.target == "Q"));
        // Replaces are ordered after the increments that maintain the views they read.
        let last = s_trigger.statements.last().unwrap();
        assert_eq!(last.op, StmtOp::Replace);
    }

    #[test]
    fn equality_correlated_nested_aggregate_stays_incremental() {
        // Q17a-like: nested aggregate correlated on an equality (shared variable K after
        // decorrelation).
        let nested = Expr::agg_sum(
            ["K"],
            Expr::product_of([Expr::rel("S", ["K", "D"]), Expr::var("D")]),
        );
        let q = QuerySpec {
            name: "Q".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["K", "B"]),
                    Expr::lift("z", nested),
                    Expr::cmp(Op::Lt, Expr::var("B"), Expr::var("z")),
                    Expr::var("B"),
                ]),
            ),
        };
        let prog = compile(
            &[q],
            &rs_catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        assert!(!prog.report.used_reevaluation, "{prog}");
        assert!(prog.report.used_incremental_nested);
    }

    #[test]
    fn statement_ordering_reads_before_writes() {
        let prog = compile(
            &[join_sum_query()],
            &rs_catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        for t in &prog.triggers {
            for (i, s) in t.statements.iter().enumerate() {
                if s.op != StmtOp::Increment {
                    continue;
                }
                for later in &t.statements[i + 1..] {
                    // No later increment statement writes a map this one reads... i.e.
                    // if it does, that is exactly the allowed "read old value" pattern,
                    // so here we check the inverse: nothing written earlier is read here.
                    let _ = later;
                }
                for earlier in &t.statements[..i] {
                    assert!(
                        !s.reads().contains(&earlier.target),
                        "statement {s} reads {} which was already updated",
                        earlier.target
                    );
                }
            }
        }
    }

    #[test]
    fn naive_mode_creates_more_expensive_maps() {
        let ho = compile(
            &[count_query()],
            &rs_catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        let naive = compile(
            &[count_query()],
            &rs_catalog(),
            &CompileOptions::for_mode(CompileMode::NaiveViewlet),
        )
        .unwrap();
        // Both compile; the naive program materializes at least as many maps.
        assert!(naive.maps.len() >= ho.maps.len());
    }
}
