//! Shardability analysis and per-shard program slicing.
//!
//! ## The idea
//!
//! Partition every base relation by the hash of one of its columns (its
//! *partition key*) across `N` engine instances. A trigger statement can then
//! run **shard-local** — on the shard that owns the firing tuple, against that
//! shard's slice of the state — exactly when every piece of state it probes is
//! *co-partitioned* with the firing tuple: the probe key equals the trigger's
//! partition variable, so all rows the probe can reach hash to the same shard
//! the event was routed to. This extends the read-before-write analysis behind
//! [`TriggerProgram::batch_dispatch`]: where that analysis asks *when* a read
//! sees consistent state within a batch, this one asks *where* the read's
//! state lives.
//!
//! Statements that fail the test (a probe off the partition key, a scalar
//! aggregate read by a keyed trigger, a `:=` re-evaluation) are sliced out
//! into a **global program** run by a single *exchange executor* engine that
//! receives every shard's [`RelationDelta`] (the bounded-channel interchange
//! unit, with [`RelationDelta::to_gmr`] as the merge form) and maintains the
//! unpartitionable maps exactly.
//!
//! ## Classification
//!
//! Every map lands in one [`MapClass`]:
//!
//! * [`Replicated`](MapClass::Replicated) — never stream-written (static
//!   table aggregates). Every engine initializes an identical copy; a merged
//!   read takes any one of them.
//! * [`Partitioned`](MapClass::Partitioned)`(i)` — every statement targeting
//!   the map writes key column `i` from its trigger's partition variable, so
//!   the key space is split disjointly across shards and a merged read is a
//!   disjoint union. A probe of the map is local iff its `i`-th argument is
//!   the reading trigger's partition variable.
//! * [`Summed`](MapClass::Summed) — stream-written, read by no statement, and
//!   writes are not key-aligned (typically scalar query results). Each shard
//!   accumulates its slice of the delta stream; a merged read **adds** the
//!   per-shard values. Exact because every statement *writing* it is local,
//!   i.e. each event's full contribution is computed on one shard. (Over
//!   integer-weighted streams the addition is exact; float workloads
//!   reassociate the sum — same caveat as batch-delta corrections.)
//! * [`Global`](MapClass::Global) — everything else, maintained only by the
//!   exchange executor.
//!
//! Globality is a fixpoint: a statement is global if it is structurally
//! unshardable *or* touches a global map; a stream-written map is global if
//! any statement targeting **or reading** it is global (the executor must own
//! the full value it reads). The local and global slices are therefore closed
//! under their own reads, and [`slice_program`] can re-derive each slice's
//! second-order batch corrections independently.
//!
//! Within one shard, a run's intra-batch pair interactions are handled by the
//! slice's own batch-delta corrections; *cross-shard* pairs cannot arise for
//! local statements, because any surviving pair term joins the two updates
//! through the very probe key the analysis proved equal to both partition
//! variables — co-partitioned pairs land on the same shard.
//!
//! [`TriggerProgram::batch_dispatch`]: crate::program::TriggerProgram::batch_dispatch
//! [`RelationDelta`]: dbtoaster_agca::RelationDelta
//! [`RelationDelta::to_gmr`]: dbtoaster_agca::RelationDelta::to_gmr

use crate::program::{
    Catalog, CompiledTrigger, MapDecl, ResultAccess, Statement, StmtOp, Trigger, TriggerProgram,
};
use dbtoaster_agca::{AtomKind, CmpOp, Expr};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Where a map lives in a sharded deployment and how per-shard slices merge
/// into the global value (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapClass {
    /// Identical on every engine (static-table derived); merge = take one.
    Replicated,
    /// Key column `i` is the owning shard's partition key; keys are disjoint
    /// across shards and merge is a disjoint union.
    Partitioned(usize),
    /// Per-shard partial aggregates; merge adds multiplicities.
    Summed,
    /// Maintained only by the exchange executor.
    Global,
}

/// Per-relation shardability verdict, with a human-readable reason string in
/// the style of the batch-strategy reasons (surfaced by EXPLAIN).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RelationShardPlan {
    /// The stream relation.
    pub relation: String,
    /// Name of the partition column (trigger variable), when the relation has
    /// at least one column.
    pub partition_column: Option<String>,
    /// Do all of this relation's trigger statements run shard-local?
    pub local: bool,
    /// Why (first offending statement when not local).
    pub reason: String,
}

/// The complete shardability analysis of a trigger program.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Partition column index per stream relation (positional, into the
    /// relation's tuple). Relations with no columns are absent.
    pub partition: BTreeMap<String, usize>,
    /// Classification of every map.
    pub map_class: BTreeMap<String, MapClass>,
    /// `local_stmts[t][s]` — does statement `s` of trigger `t` (indices into
    /// [`TriggerProgram::triggers`]) run shard-local?
    pub local_stmts: Vec<Vec<bool>>,
    /// Per-relation verdicts, in trigger order.
    pub relations: Vec<RelationShardPlan>,
}

impl ShardPlan {
    /// Partition column index for `relation`, if assigned.
    pub fn partition_index(&self, relation: &str) -> Option<usize> {
        self.partition.get(relation).copied()
    }

    /// The per-relation verdict for `relation`.
    pub fn relation_plan(&self, relation: &str) -> Option<&RelationShardPlan> {
        self.relations.iter().find(|r| r.relation == relation)
    }

    /// Classification of `map` (unknown maps are conservatively global).
    pub fn class(&self, map: &str) -> MapClass {
        self.map_class.get(map).copied().unwrap_or(MapClass::Global)
    }

    /// Does any statement or map need the exchange executor?
    pub fn has_global(&self) -> bool {
        self.map_class.values().any(|c| *c == MapClass::Global)
            || self.local_stmts.iter().flatten().any(|l| !l)
    }

    /// Does every statement run shard-local (no exchange at all)?
    pub fn fully_local(&self) -> bool {
        !self.has_global()
    }
}

/// The two programs a sharded deployment runs: the shard-local slice (on
/// every shard, over its partition of the stream) and the global slice (on
/// the exchange executor, over the full stream), if any statement needs it.
#[derive(Clone, Debug)]
pub struct ShardSlices {
    /// Statements proven co-partitioned, with their own re-derived kernels
    /// and batch corrections.
    pub local: TriggerProgram,
    /// The exchange executor's program (`None` when fully local).
    pub global: Option<TriggerProgram>,
}

/// How many rounds of coordinate-descent the partition-key search runs; each
/// round sweeps every relation once, so a handful of rounds converges on the
/// small programs the compiler emits.
const PCOL_SEARCH_ROUNDS: usize = 8;

/// Analyze a compiled trigger program for shardability: pick a partition
/// column per relation (maximizing the number of shard-local statements) and
/// classify every map and statement. Pure over the program — deterministic
/// for a given input.
pub fn analyze_sharding(program: &TriggerProgram) -> ShardPlan {
    let maps: BTreeMap<&str, &MapDecl> =
        program.maps.iter().map(|m| (m.name.as_str(), m)).collect();
    // One (relation, trigger_vars) entry per relation: both signs bind the
    // same positional variable names (they come from the catalog columns).
    let mut rels: Vec<(&str, &[String])> = Vec::new();
    for t in &program.triggers {
        if !rels.iter().any(|(r, _)| *r == t.relation.as_str()) {
            rels.push((&t.relation, &t.trigger_vars));
        }
    }
    // writers[m] = statements targeting map m.
    let mut writers: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (ti, t) in program.triggers.iter().enumerate() {
        for (si, s) in t.statements.iter().enumerate() {
            writers.entry(&s.target).or_default().push((ti, si));
        }
    }

    // --- partition-key search: coordinate descent on the count of one-step
    // local statements (deterministic: relations in first-trigger order,
    // ties to the smaller column index).
    let mut assign: BTreeMap<String, usize> = rels
        .iter()
        .filter(|(_, tv)| !tv.is_empty())
        .map(|(r, _)| (r.to_string(), 0))
        .collect();
    let objective = |assign: &BTreeMap<String, usize>| -> usize {
        program
            .triggers
            .iter()
            .flat_map(|t| t.statements.iter().map(move |s| (t, s)))
            .filter(|(t, s)| structural_cause(program, t, s, assign, &maps, &writers).is_none())
            .count()
    };
    let mut best = objective(&assign);
    for _ in 0..PCOL_SEARCH_ROUNDS {
        let mut improved = false;
        for (rel, tv) in &rels {
            if tv.is_empty() {
                continue;
            }
            let current = assign[*rel];
            let mut best_col = current;
            for col in 0..tv.len() {
                if col == current {
                    continue;
                }
                assign.insert(rel.to_string(), col);
                let score = objective(&assign);
                if score > best {
                    best = score;
                    best_col = col;
                }
            }
            assign.insert(rel.to_string(), best_col);
            improved |= best_col != current;
        }
        if !improved {
            break;
        }
    }

    // --- globality fixpoint: start from structural causes, then let global
    // maps drag in every statement that targets or reads them, and global
    // statements drag in every stream-written map they touch.
    let mut cause: Vec<Vec<Option<String>>> = program
        .triggers
        .iter()
        .map(|t| {
            t.statements
                .iter()
                .map(|s| structural_cause(program, t, s, &assign, &maps, &writers))
                .collect()
        })
        .collect();
    let mut global_maps: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        for (ti, t) in program.triggers.iter().enumerate() {
            for (si, s) in t.statements.iter().enumerate() {
                let mut touched: Vec<String> = vec![s.target.clone()];
                touched.extend(s.reads());
                if cause[ti][si].is_some() {
                    // Global statement: the executor must own its target and
                    // every stream-written map it reads.
                    for m in touched {
                        if writers.contains_key(m.as_str()) && global_maps.insert(m) {
                            changed = true;
                        }
                    }
                } else if let Some(m) = touched.iter().find(|m| global_maps.contains(*m)) {
                    // Local so far: demoted if anything it touches went global.
                    cause[ti][si] = Some(format!(
                        "`{}` depends on `{m}`, which lives on the exchange executor",
                        s.target
                    ));
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // --- map classification.
    let mut map_class = BTreeMap::new();
    for m in &program.maps {
        let class = if !writers.contains_key(m.name.as_str()) {
            MapClass::Replicated
        } else if global_maps.contains(&m.name) || m.init_from_tables {
            // (A stream-written map with a table-only init would double-count
            // its init under addition; the compiler never emits one, but the
            // executor handles it exactly if it ever appears.)
            MapClass::Global
        } else {
            match aligned_positions(&m.name, &assign, &writers, program) {
                Some(a) if !a.is_empty() => MapClass::Partitioned(*a.iter().next().unwrap()),
                _ => MapClass::Summed,
            }
        };
        map_class.insert(m.name.clone(), class);
    }

    // --- per-relation verdicts.
    let mut relations: Vec<RelationShardPlan> = Vec::new();
    for (ti, t) in program.triggers.iter().enumerate() {
        if relations.iter().any(|r| r.relation == t.relation) {
            // Merge the second sign's verdict into the first entry.
            let entry = relations
                .iter_mut()
                .find(|r| r.relation == t.relation)
                .unwrap();
            if entry.local {
                if let Some(c) = cause[ti].iter().flatten().next() {
                    entry.local = false;
                    entry.reason = format!("exchanges deltas: {c}");
                }
            }
            continue;
        }
        let partition_column = assign
            .get(&t.relation)
            .and_then(|&i| t.trigger_vars.get(i))
            .cloned();
        let (local, reason) = match cause[ti].iter().flatten().next() {
            Some(c) => (false, format!("exchanges deltas: {c}")),
            None => (
                true,
                match &partition_column {
                    Some(col) => format!(
                        "shard-local (partition {}.{col}): every probe is on the partition key",
                        t.relation
                    ),
                    None => "shard-local: no keyed state probed".to_string(),
                },
            ),
        };
        relations.push(RelationShardPlan {
            relation: t.relation.clone(),
            partition_column,
            local,
            reason,
        });
    }

    ShardPlan {
        partition: assign,
        map_class,
        local_stmts: cause
            .iter()
            .map(|t| t.iter().map(|c| c.is_none()).collect())
            .collect(),
        relations,
    }
}

/// Slice a program along its shard plan into the shard-local program (run by
/// every shard over its partition of the stream) and the exchange executor's
/// global program (run over the full stream), if one is needed. Each slice is
/// a complete, self-contained [`TriggerProgram`]: kernels are re-lowered and
/// second-order batch corrections re-derived over the slice's own maps, so a
/// slice engine dispatches batch strategies exactly as an unsharded engine
/// would for that statement subset.
pub fn slice_program(program: &TriggerProgram, plan: &ShardPlan, catalog: &Catalog) -> ShardSlices {
    ShardSlices {
        local: build_slice(program, plan, catalog, true),
        global: plan
            .has_global()
            .then(|| build_slice(program, plan, catalog, false)),
    }
}

fn build_slice(
    program: &TriggerProgram,
    plan: &ShardPlan,
    catalog: &Catalog,
    local: bool,
) -> TriggerProgram {
    let keep_map = |name: &str| match plan.class(name) {
        MapClass::Global => !local,
        // Both slices keep replicated maps: local statements and global
        // statements may each read them, and they are never stream-written,
        // so double maintenance cannot arise.
        MapClass::Replicated => true,
        MapClass::Partitioned(_) | MapClass::Summed => local,
    };
    let maps: Vec<MapDecl> = program
        .maps
        .iter()
        .filter(|m| keep_map(&m.name))
        .cloned()
        .collect();
    let mut triggers: Vec<Trigger> = Vec::new();
    for (ti, t) in program.triggers.iter().enumerate() {
        // Keeping a subsequence preserves the read-before-write order the
        // compiler established: dropped statements never write state the kept
        // ones read (cross-slice reads are ruled out by the fixpoint).
        let statements: Vec<Statement> = t
            .statements
            .iter()
            .enumerate()
            .filter(|(si, _)| plan.local_stmts[ti][*si] == local)
            .map(|(_, s)| s.clone())
            .collect();
        if !statements.is_empty() {
            triggers.push(Trigger {
                relation: t.relation.clone(),
                sign: t.sign,
                trigger_vars: t.trigger_vars.clone(),
                statements,
            });
        }
    }
    let compiled: Vec<CompiledTrigger> = triggers
        .iter()
        .map(|t| CompiledTrigger {
            stmts: t
                .statements
                .iter()
                .map(|s| dbtoaster_agca::lower_statement(&t.trigger_vars, &s.key_vars, &s.rhs))
                .collect(),
        })
        .collect();
    let (mut batch_corrections, batch_delta_reasons) =
        crate::batch_delta::derive_batch_corrections_with_reasons(&maps, &triggers, catalog);
    for c in &mut batch_corrections {
        c.compiled = c
            .statements
            .iter()
            .map(|s| dbtoaster_agca::lower_statement(&[], &s.key_vars, &s.rhs))
            .collect();
    }
    // Stored relations / static tables, recomputed for the slice exactly as
    // `compile` does for the full program.
    let mut stored_relations = BTreeSet::new();
    let mut static_tables = BTreeSet::new();
    let mut classify = |rel: String| match catalog.get(&rel).map(|m| m.kind) {
        Some(AtomKind::Table) => {
            static_tables.insert(rel);
        }
        _ => {
            stored_relations.insert(rel);
        }
    };
    for t in &triggers {
        for s in &t.statements {
            s.base_reads().into_iter().for_each(&mut classify);
        }
    }
    for c in &batch_corrections {
        for s in &c.statements {
            s.base_reads().into_iter().for_each(&mut classify);
        }
    }
    for m in &maps {
        for atom in m.definition.atoms() {
            if atom.kind == AtomKind::Table
                || catalog.get(&atom.name).map(|r| r.kind) == Some(AtomKind::Table)
            {
                static_tables.insert(atom.name.clone());
            }
        }
    }
    // Results stay with the slice that holds every map they touch; merged
    // serving assembles results from the *merged* snapshot, so slices only
    // carry them for introspection.
    let results = program
        .results
        .iter()
        .filter(|r| match &r.access {
            ResultAccess::Map(m) => maps.iter().any(|d| &d.name == m),
            ResultAccess::Computed { expr, .. } => expr
                .atoms()
                .iter()
                .all(|a| maps.iter().any(|d| d.name == a.name)),
        })
        .cloned()
        .collect();
    TriggerProgram {
        maps,
        triggers,
        compiled,
        results,
        stored_relations,
        static_tables,
        batch_corrections,
        batch_delta_reasons,
        report: program.report.clone(),
    }
}

/// Key positions of `map` written from the partition variable by **every**
/// targeting statement (`None` when nothing writes the map).
fn aligned_positions(
    map: &str,
    assign: &BTreeMap<String, usize>,
    writers: &BTreeMap<&str, Vec<(usize, usize)>>,
    program: &TriggerProgram,
) -> Option<BTreeSet<usize>> {
    let stmts = writers.get(map)?;
    let mut acc: Option<BTreeSet<usize>> = None;
    for &(ti, si) in stmts {
        let t = &program.triggers[ti];
        let s = &t.statements[si];
        let pvar = assign.get(&t.relation).and_then(|&i| t.trigger_vars.get(i));
        let here: BTreeSet<usize> = match pvar {
            Some(p) => s
                .key_vars
                .iter()
                .enumerate()
                .filter(|(_, k)| *k == p)
                .map(|(i, _)| i)
                .collect(),
            None => BTreeSet::new(),
        };
        acc = Some(match acc {
            None => here,
            Some(prev) => prev.intersection(&here).copied().collect(),
        });
    }
    acc
}

/// Is the statement *structurally* unshardable under the given partition
/// assignment — ignoring globality contagion? Returns the reason when so.
fn structural_cause(
    program: &TriggerProgram,
    t: &Trigger,
    s: &Statement,
    assign: &BTreeMap<String, usize>,
    maps: &BTreeMap<&str, &MapDecl>,
    writers: &BTreeMap<&str, Vec<(usize, usize)>>,
) -> Option<String> {
    if s.op != StmtOp::Increment {
        return Some(format!("`{}` is rebuilt by a `:=` statement", s.target));
    }
    let Some(pvar) = assign.get(&t.relation).and_then(|&i| t.trigger_vars.get(i)) else {
        // No partition variable (zero-column relation): any keyed probe is
        // off-shard; a probe-free statement is trivially local.
        return if s.rhs.atoms().is_empty() {
            None
        } else {
            Some(format!(
                "`{}` probes state from an unkeyed trigger",
                s.target
            ))
        };
    };
    let mut probes = Vec::new();
    collect_probes(&s.rhs, &[], &mut probes);
    for (atom, env) in probes {
        match atom.kind {
            AtomKind::Table => continue,
            AtomKind::View | AtomKind::Stream => {
                if maps.contains_key(atom.name.as_str()) {
                    if !writers.contains_key(atom.name.as_str()) {
                        continue; // static/replicated: identical everywhere
                    }
                    let aligned =
                        aligned_positions(&atom.name, assign, writers, program).unwrap_or_default();
                    if aligned.is_empty() {
                        return Some(format!(
                            "`{}` reads `{}`, which no key column can partition",
                            s.target, atom.name
                        ));
                    }
                    let probe_on_key = aligned
                        .iter()
                        .any(|&i| atom.args.get(i).is_some_and(|a| same_var(a, pvar, &env)));
                    if !probe_on_key {
                        return Some(format!(
                            "`{}` probes `{}` off the partition key",
                            s.target, atom.name
                        ));
                    }
                } else {
                    // Stored base-relation read: local iff probed on the
                    // relation's own partition column.
                    let ok = assign
                        .get(&atom.name)
                        .and_then(|&i| atom.args.get(i))
                        .is_some_and(|arg| same_var(arg, pvar, &env));
                    if !ok {
                        return Some(format!(
                            "`{}` probes stored `{}` off the partition key",
                            s.target, atom.name
                        ));
                    }
                }
            }
        }
    }
    None
}

/// Collect every relation atom of `e` together with the variable equalities
/// in scope at that atom: `x := y` lifts and `x = y` comparisons among the
/// *direct* factors of each enclosing product. Equalities from one additive
/// branch never leak into another. A probe argument equated with the
/// partition variable only reaches rows whose key equals it — rows the firing
/// shard owns — so clause-scoped equalities are sound evidence of locality.
fn collect_probes(
    e: &Expr,
    env: &[(String, String)],
    out: &mut Vec<(dbtoaster_agca::RelRef, Vec<(String, String)>)>,
) {
    match e {
        Expr::Rel(r) => out.push((r.clone(), env.to_vec())),
        Expr::Mul(factors) => {
            let mut scoped = env.to_vec();
            for f in factors {
                match f {
                    Expr::Lift(v, inner) => {
                        if let Expr::Var(w) = &**inner {
                            scoped.push((v.clone(), w.clone()));
                        }
                    }
                    Expr::Cmp(CmpOp::Eq, a, b) => {
                        if let (Expr::Var(x), Expr::Var(y)) = (&**a, &**b) {
                            scoped.push((x.clone(), y.clone()));
                        }
                    }
                    _ => {}
                }
            }
            for f in factors {
                collect_probes(f, &scoped, out);
            }
        }
        Expr::Add(terms) => {
            for t in terms {
                collect_probes(t, env, out);
            }
        }
        Expr::Neg(x) | Expr::AggSum(_, x) | Expr::Lift(_, x) | Expr::Exists(x) => {
            collect_probes(x, env, out)
        }
        Expr::Cmp(_, a, b) => {
            collect_probes(a, env, out);
            collect_probes(b, env, out);
        }
        Expr::Apply(_, args) => {
            for a in args {
                collect_probes(a, env, out);
            }
        }
        Expr::Const(_) | Expr::Var(_) => {}
    }
}

/// Are `a` and `b` the same variable under the equalities in `env`?
fn same_var(a: &str, b: &str, env: &[(String, String)]) -> bool {
    if a == b {
        return true;
    }
    let mut reach: BTreeSet<&str> = BTreeSet::new();
    reach.insert(a);
    loop {
        let mut grew = false;
        for (x, y) in env {
            if reach.contains(x.as_str()) && reach.insert(y.as_str()) {
                grew = true;
            }
            if reach.contains(y.as_str()) && reach.insert(x.as_str()) {
                grew = true;
            }
        }
        if !grew {
            return reach.contains(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::program::{CompileMode, CompileOptions, QuerySpec, RelationMeta};
    use dbtoaster_agca::Expr;

    fn catalog() -> Catalog {
        [
            RelationMeta::stream("R", ["A", "B"]),
            RelationMeta::stream("S", ["B", "C"]),
            RelationMeta::stream("T", ["A", "C"]),
        ]
        .into_iter()
        .collect()
    }

    fn ho(queries: &[QuerySpec]) -> TriggerProgram {
        compile(
            queries,
            &catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap()
    }

    /// R ⋈ S on B, grouped by B: both relations partition on the join key and
    /// every probe is on it — the axfinder shape, fully shard-local.
    fn join_on_b() -> QuerySpec {
        QuerySpec {
            name: "JOINB".into(),
            out_vars: vec!["b".into()],
            expr: Expr::agg_sum(
                ["b"],
                Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::rel("S", ["b", "c"])]),
            ),
        }
    }

    /// Scalar self-join with a join key: quadratic, but co-partitioned pairs
    /// always share a shard, so the per-shard corrections stay exact.
    fn selfj() -> QuerySpec {
        QuerySpec {
            name: "SELFJ".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::rel("R", ["a2", "b"])]),
            ),
        }
    }

    /// Scalar cross product: every pair of events interacts regardless of
    /// key, which surfaces as a scalar map read — unpartitionable.
    fn cross() -> QuerySpec {
        QuerySpec {
            name: "CROSS".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::rel("R", ["a2", "b2"])]),
            ),
        }
    }

    fn stmt_count(p: &TriggerProgram) -> usize {
        p.triggers.iter().map(|t| t.statements.len()).sum()
    }

    #[test]
    fn co_partitioned_join_is_fully_local() {
        let program = ho(&[join_on_b()]);
        let plan = analyze_sharding(&program);
        assert!(plan.fully_local(), "plan: {plan:#?}");
        assert_eq!(plan.partition_index("R"), Some(1), "R partitions on B");
        assert_eq!(plan.partition_index("S"), Some(0), "S partitions on B");
        assert_eq!(plan.class("JOINB"), MapClass::Partitioned(0));
        for r in &plan.relations {
            assert!(r.local, "{r:?}");
            assert!(r.reason.starts_with("shard-local"), "{r:?}");
        }
        let slices = slice_program(&program, &plan, &catalog());
        assert!(slices.global.is_none());
        assert_eq!(stmt_count(&slices.local), stmt_count(&program));
    }

    #[test]
    fn keyed_self_join_is_local_with_summed_result() {
        let program = ho(&[selfj()]);
        let plan = analyze_sharding(&program);
        assert!(plan.fully_local(), "plan: {plan:#?}");
        assert_eq!(plan.partition_index("R"), Some(1), "join key B");
        assert_eq!(plan.class("SELFJ"), MapClass::Summed);
        // The local slice must re-derive the second-order correction for the
        // quadratic map: within-shard pair interactions still need it.
        let slices = slice_program(&program, &plan, &catalog());
        let corr = slices.local.batch_correction("R").expect("R eligible");
        assert!(
            !corr.statements.is_empty(),
            "quadratic self-join needs a pair correction on each shard"
        );
    }

    #[test]
    fn cross_product_exchanges_deltas() {
        let program = ho(&[cross()]);
        let plan = analyze_sharding(&program);
        assert!(!plan.fully_local());
        assert_eq!(plan.class("CROSS"), MapClass::Global);
        let r = plan.relation_plan("R").expect("R planned");
        assert!(!r.local);
        assert!(r.reason.starts_with("exchanges deltas:"), "{}", r.reason);
        let slices = slice_program(&program, &plan, &catalog());
        let global = slices.global.expect("needs the exchange executor");
        assert_eq!(
            stmt_count(&slices.local) + stmt_count(&global),
            stmt_count(&program),
            "slices must partition the statement set"
        );
        assert!(
            global.maps.iter().any(|m| m.name == "CROSS"),
            "executor owns the unpartitionable result"
        );
    }

    #[test]
    fn conflicting_join_keys_split_the_program() {
        // Q1 pins R to column B, Q2 pins R to column A: one of them must go
        // through the exchange executor, the other stays local.
        let q2 = QuerySpec {
            name: "JOINA".into(),
            out_vars: vec!["a".into()],
            expr: Expr::agg_sum(
                ["a"],
                Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::rel("T", ["a", "c"])]),
            ),
        };
        let program = ho(&[join_on_b(), q2]);
        let plan = analyze_sharding(&program);
        assert!(!plan.fully_local(), "conflict must force an exchange");
        let global = [plan.class("JOINB"), plan.class("JOINA")]
            .iter()
            .filter(|c| **c == MapClass::Global)
            .count();
        assert_eq!(
            global, 1,
            "exactly one result moves to the executor: {plan:#?}"
        );
        let slices = slice_program(&program, &plan, &catalog());
        let g = slices.global.expect("executor needed");
        assert!(
            stmt_count(&slices.local) > 0,
            "the aligned query stays local"
        );
        assert_eq!(
            stmt_count(&slices.local) + stmt_count(&g),
            stmt_count(&program)
        );
    }

    #[test]
    fn replace_statements_go_global() {
        let program = compile(
            &[join_on_b()],
            &catalog(),
            &CompileOptions::for_mode(CompileMode::Reevaluate),
        )
        .unwrap();
        let plan = analyze_sharding(&program);
        assert!(!plan.fully_local());
        for r in &plan.relations {
            assert!(!r.local, "re-evaluation is inherently global: {r:?}");
        }
        let slices = slice_program(&program, &plan, &catalog());
        assert_eq!(stmt_count(&slices.local), 0);
        assert_eq!(
            stmt_count(&slices.global.expect("executor")),
            stmt_count(&program)
        );
    }
}
