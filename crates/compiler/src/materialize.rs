//! Materialization decisions (Section 5.1 of the paper).
//!
//! Instead of materializing an entire delta query as a single view (the naive viewlet
//! transform), Higher-Order IVM selects a set of subqueries `~M` to materialize and
//! rewrites the delta into an equivalent expression over those views. The heuristics
//! implemented here correspond to the rewrite rules of Figure 1:
//!
//! 1. **Query decomposition** — each connected component of a clause's join graph is
//!    materialized independently (bound trigger variables do not connect components,
//!    which is exactly why single-tuple deltas decompose so well).
//! 2. **Polynomial expansion** — clauses are produced by [`dbtoaster_agca::opt::expand`]
//!    before decomposition.
//! 3. **Input variables** — factors that reference bound (trigger or correlation)
//!    variables in value positions are never pulled inside a materialized view; the view
//!    is keyed by the columns those factors need instead.
//! 4. **Nested aggregates** — lifted subqueries containing relation atoms are
//!    materialized separately; the lift itself stays in the rewritten expression and
//!    references the nested view.
//!
//! Duplicate view elimination is performed by the [`MapRegistry`], which keys maps by
//! the canonical form of their definition.

use crate::program::{CompileOptions, CompileReport, MapDecl};
use dbtoaster_agca::opt::{canonical_key, order_factors, unify_factors, Monomial};
use dbtoaster_agca::scope::var_info;
use dbtoaster_agca::{simplify, AtomKind, Expr};
use std::collections::{BTreeSet, VecDeque};

/// Registry of materialized views created during compilation, with structural
/// deduplication and a work queue for the Higher-Order IVM recursion.
#[derive(Debug, Default)]
pub struct MapRegistry {
    maps: Vec<MapDecl>,
    /// Canonical key of `AggSum(out_vars, definition)` per map, used for dedup.
    canon_keys: Vec<String>,
    /// Depth (delta order) at which each map was created.
    depths: Vec<usize>,
    /// Indices of maps whose maintenance statements have not been generated yet.
    pending: VecDeque<usize>,
    counter: usize,
}

impl MapRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        MapRegistry::default()
    }

    /// All registered maps.
    pub fn maps(&self) -> &[MapDecl] {
        &self.maps
    }

    /// Consume the registry, returning the map declarations.
    pub fn into_maps(self) -> Vec<MapDecl> {
        self.maps
    }

    /// Canonical key of a prospective map (definition + key order).
    pub fn key_of(definition: &Expr, out_vars: &[String]) -> String {
        canonical_key(&Expr::AggSum(
            out_vars.to_vec(),
            Box::new(definition.clone()),
        ))
    }

    /// Register a view with an explicit name (used for query results). Returns its index.
    pub fn register_named(
        &mut self,
        name: &str,
        definition: Expr,
        out_vars: Vec<String>,
        is_query_result: bool,
        depth: usize,
    ) -> usize {
        let key = Self::key_of(&definition, &out_vars);
        let init_from_tables = !definition.contains_atom_kind(AtomKind::Stream);
        self.maps.push(MapDecl {
            name: name.to_string(),
            out_vars,
            definition,
            is_query_result,
            init_from_tables,
        });
        self.canon_keys.push(key);
        self.depths.push(depth);
        let idx = self.maps.len() - 1;
        self.pending.push_back(idx);
        idx
    }

    /// Register (or reuse) an auxiliary view for `definition` keyed by `out_vars`.
    ///
    /// Returns `(map name, key columns in the map's order, newly created)`. When
    /// deduplication finds an existing structurally-equivalent map, the caller's key
    /// variables are positionally compatible with the existing map's key order (both
    /// canonicalize the key list first), so they can be used directly as reference
    /// arguments.
    pub fn register(
        &mut self,
        definition: Expr,
        out_vars: Vec<String>,
        depth: usize,
        dedup: bool,
        name_hint: &str,
    ) -> (String, Vec<String>, bool) {
        let key = Self::key_of(&definition, &out_vars);
        if dedup {
            if let Some(idx) = self.canon_keys.iter().position(|k| *k == key) {
                return (self.maps[idx].name.clone(), out_vars, false);
            }
        }
        self.counter += 1;
        let name = format!("m_{}_{}", name_hint.to_lowercase(), self.counter);
        // Alpha-rename key columns inherited from trigger variables (they contain
        // `@`). A map keyed by a literal trigger-variable name — e.g.
        // `m[r@b] := Sum[r@b](S(r@b, c) * R(c, d))` from a ΔR term — is a capture
        // hazard: deriving *this map's* maintenance statements w.r.t. a later
        // update of the same relation re-introduces the trigger variable `r@b`
        // as a bound runtime value, silently pinning what should be a `foreach`
        // loop column to the updated tuple. Renaming to a per-map key name at
        // registration makes the definition's free variables disjoint from every
        // possible trigger variable (`<rel>@<col>` never contains `@@`). View
        // references are positional, so callers keep their own argument names.
        let (stored_out_vars, definition) = if out_vars.iter().any(|v| v.contains('@')) {
            let subst: dbtoaster_gmr::FastMap<String, String> = out_vars
                .iter()
                .enumerate()
                .filter(|(_, v)| v.contains('@'))
                .map(|(i, v)| (v.clone(), format!("{name}@@k{i}")))
                .collect();
            let renamed: Vec<String> = out_vars
                .iter()
                .map(|v| subst.get(v).cloned().unwrap_or_else(|| v.clone()))
                .collect();
            (renamed, definition.rename_vars(&subst))
        } else {
            (out_vars.clone(), definition)
        };
        let init_from_tables = !definition.contains_atom_kind(AtomKind::Stream);
        self.maps.push(MapDecl {
            name: name.clone(),
            out_vars: stored_out_vars,
            definition,
            is_query_result: false,
            init_from_tables,
        });
        self.canon_keys.push(key);
        self.depths.push(depth);
        let idx = self.maps.len() - 1;
        self.pending.push_back(idx);
        (name, out_vars, true)
    }

    /// Next map awaiting maintenance-statement generation, with its depth.
    pub fn pop_pending(&mut self) -> Option<(usize, usize)> {
        self.pending.pop_front().map(|i| (i, self.depths[i]))
    }

    /// Map declaration by index.
    pub fn decl(&self, idx: usize) -> &MapDecl {
        &self.maps[idx]
    }

    /// Canonical key of a registered map.
    pub fn canon_key(&self, idx: usize) -> &str {
        &self.canon_keys[idx]
    }
}

/// Context for one materialization pass.
pub struct Materializer<'a> {
    /// Map registry shared across the whole compilation.
    pub registry: &'a mut MapRegistry,
    /// Compilation options.
    pub options: &'a CompileOptions,
    /// Rule-usage report being accumulated.
    pub report: &'a mut CompileReport,
    /// Depth (delta order) of the maps created by this pass.
    pub depth: usize,
    /// Canonical key that must not be re-used (the map currently being re-evaluated),
    /// to avoid self-referential materialization decisions.
    pub avoid: Option<String>,
    /// Short name used in generated map names.
    pub name_hint: String,
}

impl<'a> Materializer<'a> {
    /// Rewrite `expr` (whose result columns are `needed` and whose externally bound
    /// variables are `bound`) into an equivalent expression over materialized views,
    /// registering the views as a side effect.
    pub fn materialize_body(
        &mut self,
        expr: &Expr,
        needed: &[String],
        bound: &BTreeSet<String>,
    ) -> Expr {
        let expr = simplify(expr);
        match expr {
            Expr::AggSum(gb, body) => {
                let inner = self.materialize_sum(&body, &gb, bound);
                simplify(&Expr::AggSum(gb, Box::new(inner)))
            }
            other => self.materialize_sum(&other, needed, bound),
        }
    }

    fn materialize_sum(
        &mut self,
        expr: &Expr,
        needed: &[String],
        bound: &BTreeSet<String>,
    ) -> Expr {
        let poly = dbtoaster_agca::expand(expr);
        if poly.monomials.len() > 1 {
            self.report.used_expansion = true;
        }
        let terms: Vec<Expr> = poly
            .monomials
            .iter()
            .map(|m| {
                let term = self.materialize_monomial(m, needed, bound);
                normalize_schema(term, needed, bound)
            })
            .collect();
        simplify(&Expr::sum_of(terms))
    }

    /// Materialization decision for a single multiplicative clause.
    pub fn materialize_monomial(
        &mut self,
        mono: &Monomial,
        needed: &[String],
        bound: &BTreeSet<String>,
    ) -> Expr {
        if !self.options.materialize_deltas {
            return mono.to_expr();
        }
        let needed_set: BTreeSet<String> = needed.iter().cloned().collect();
        let factors = unify_factors(&mono.factors, bound, &needed_set);
        let factors = order_factors(&factors, bound);

        // Rewrite nested aggregates (rule 4): lifted subqueries, Exists bodies and bare
        // group-by aggregates that contain base-relation atoms are materialized
        // recursively (so that comparisons referencing bound correlation variables stay
        // outside the maps); the lift / Exists / AggSum node itself stays in the clause.
        let mut scope = bound.clone();
        let mut rewritten: Vec<Expr> = Vec::with_capacity(factors.len());
        for f in factors {
            let nf = match &f {
                Expr::Lift(x, e) if contains_base_atoms(e) => {
                    self.report.used_nested_rewrite = true;
                    let inner_out = var_info(e, &scope).map(|i| i.outputs).unwrap_or_default();
                    let e2 = self.materialize_body(e, &inner_out, &scope);
                    Expr::Lift(x.clone(), Box::new(e2))
                }
                Expr::Exists(e) if contains_base_atoms(e) => {
                    self.report.used_nested_rewrite = true;
                    let inner_out = var_info(e, &scope).map(|i| i.outputs).unwrap_or_default();
                    let e2 = self.materialize_body(e, &inner_out, &scope);
                    Expr::Exists(Box::new(e2))
                }
                Expr::AggSum(_, body) if contains_base_atoms(body) => {
                    self.materialize_body(&f, &[], &scope)
                }
                _ => f,
            };
            if let Ok(info) = var_info(&nf, &scope) {
                scope.extend(info.outputs);
            }
            rewritten.push(nf);
        }

        // Partition into relational factors (containing base atoms) and the rest.
        let relational: Vec<usize> = rewritten
            .iter()
            .enumerate()
            .filter(|(_, f)| contains_base_atoms(f))
            .map(|(i, _)| i)
            .collect();
        if relational.is_empty() {
            return Monomial {
                coef: mono.coef,
                factors: rewritten,
            }
            .to_expr();
        }

        // Connected components of the join graph: factors are connected when they share
        // an output variable that is not bound (bound variables are lookup keys and do
        // not force co-materialization — this is what makes single-tuple deltas cheap).
        let outputs_of: Vec<BTreeSet<String>> = rewritten
            .iter()
            .map(|f| {
                var_info(f, bound)
                    .map(|i| i.outputs.into_iter().collect())
                    .unwrap_or_default()
            })
            .collect();
        let mut components: Vec<Vec<usize>> = Vec::new();
        if self.options.enable_decomposition {
            for &i in &relational {
                let connects = components.iter().position(|comp: &Vec<usize>| {
                    comp.iter().any(|&j| {
                        outputs_of[i]
                            .intersection(&outputs_of[j])
                            .any(|v| !bound.contains(v))
                    })
                });
                match connects {
                    Some(c) => components[c].push(i),
                    None => components.push(vec![i]),
                }
            }
            // Merging may cascade (a later factor can connect two earlier components);
            // run a fix-point pass.
            loop {
                let mut merged = false;
                'outer: for a in 0..components.len() {
                    for b in (a + 1)..components.len() {
                        let connect = components[a].iter().any(|&i| {
                            components[b].iter().any(|&j| {
                                outputs_of[i]
                                    .intersection(&outputs_of[j])
                                    .any(|v| !bound.contains(v))
                            })
                        });
                        if connect {
                            let bs = components.remove(b);
                            components[a].extend(bs);
                            merged = true;
                            break 'outer;
                        }
                    }
                }
                if !merged {
                    break;
                }
            }
        } else {
            components.push(relational.clone());
        }
        if components.len() > 1 {
            self.report.used_decomposition = true;
        }

        // Assign non-relational scalar factors to a component when all their variables
        // come from that component and none are bound (rule 3 keeps factors that touch
        // input variables outside the materialization).
        let mut assigned: Vec<Option<usize>> = vec![None; rewritten.len()];
        for (i, f) in rewritten.iter().enumerate() {
            if relational.contains(&i) {
                continue;
            }
            let mergeable = matches!(f, Expr::Var(_) | Expr::Cmp(..) | Expr::Apply(..));
            if !mergeable {
                continue;
            }
            let vars = f.all_variables();
            if vars.is_empty() || vars.iter().any(|v| bound.contains(v)) {
                if vars.iter().any(|v| bound.contains(v)) {
                    self.report.used_input_var_extraction = true;
                }
                continue;
            }
            let home = components.iter().position(|comp| {
                vars.iter()
                    .all(|v| comp.iter().any(|&j| outputs_of[j].contains(v)))
            });
            match home {
                Some(c) => assigned[i] = Some(c),
                None => self.report.used_input_var_extraction = true,
            }
        }

        // Variables needed outside each component: statement keys, bound lookups, and
        // variables referenced by factors outside the component.
        let mut result_factors: Vec<Expr> = Vec::new();
        for (ci, comp) in components.iter().enumerate() {
            let mut comp_factors: Vec<Expr> = Vec::new();
            let mut comp_outputs: BTreeSet<String> = BTreeSet::new();
            for (i, f) in rewritten.iter().enumerate() {
                if comp.contains(&i) || assigned[i] == Some(ci) {
                    comp_factors.push(f.clone());
                    comp_outputs.extend(outputs_of[i].iter().cloned());
                }
            }
            // Variables referenced by everything *not* in this component.
            let mut external_vars: BTreeSet<String> = needed.iter().cloned().collect();
            external_vars.extend(bound.iter().cloned());
            for (i, f) in rewritten.iter().enumerate() {
                if comp.contains(&i) || assigned[i] == Some(ci) {
                    continue;
                }
                external_vars.extend(f.all_variables());
            }
            let out_vars: Vec<String> = comp_outputs
                .iter()
                .filter(|v| external_vars.contains(*v))
                .cloned()
                .collect();

            let body = Expr::product_of(comp_factors.clone());
            let def = simplify(&Expr::AggSum(out_vars.clone(), Box::new(body.clone())));
            let key = MapRegistry::key_of(&def, &out_vars);
            if self.avoid.as_deref() == Some(key.as_str()) {
                // Would materialize the very map we are re-evaluating: keep the factors
                // inline over the base relations instead.
                result_factors.extend(comp_factors);
                continue;
            }
            let (name, ref_args, created) = self.registry.register(
                def,
                out_vars,
                self.depth,
                self.options.enable_dedup,
                &self.name_hint,
            );
            if created {
                self.report.maps_created += 1;
            } else {
                self.report.maps_deduplicated += 1;
            }
            result_factors.push(Expr::view(name, ref_args));
        }

        // Keep the unassigned non-relational factors.
        for (i, f) in rewritten.iter().enumerate() {
            if relational.contains(&i) || assigned[i].is_some() {
                continue;
            }
            result_factors.push(f.clone());
        }

        let ordered = order_factors(&result_factors, bound);
        Monomial {
            coef: mono.coef,
            factors: ordered,
        }
        .to_expr()
    }
}

/// Does the expression contain any stream or static-table atom (i.e. anything that must
/// be materialized before it can appear in a trigger statement)?
pub fn contains_base_atoms(expr: &Expr) -> bool {
    expr.contains_atom_kind(AtomKind::Stream) || expr.contains_atom_kind(AtomKind::Table)
}

/// Project a rewritten clause down to exactly the `needed` output columns by wrapping it
/// in a group-by summation. The clauses of one sum may otherwise expose different
/// (superset) schemas — e.g. a clause whose views still carry bound lookup columns next
/// to a clause that is a pure trigger-variable constant — and generalized union requires
/// uniform schemas.
///
/// When the clause is a product of groups of factors that share no (unbound) variables,
/// the summation is pushed into each group — `Sum(Q1 * Q2) = Sum(Q1) * Sum(Q2)` for
/// disconnected `Q1`, `Q2`. This is the statement-level form of rule 1 and is what gives
/// the PSP/MST re-evaluation statements of Section 6.2 their `O(|B| + |A|)` (rather than
/// `O(|B| · |A|)`) evaluation cost.
pub fn normalize_schema(term: Expr, needed: &[String], bound: &BTreeSet<String>) -> Expr {
    if term.is_zero() {
        return term;
    }
    if let Expr::Mul(factors) = &term {
        if let Some(decomposed) = push_down_aggregation(factors, needed, bound) {
            return decomposed;
        }
    }
    simplify(&Expr::AggSum(needed.to_vec(), Box::new(term)))
}

/// Split a product into groups connected through unbound variables and aggregate each
/// group independently. Returns `None` when the product does not decompose (or a needed
/// column cannot be attributed to exactly one group).
fn push_down_aggregation(
    factors: &[Expr],
    needed: &[String],
    bound: &BTreeSet<String>,
) -> Option<Expr> {
    // Variables that connect factors: everything except bound (trigger / correlation)
    // variables, which are constants at evaluation time.
    let vars_of: Vec<BTreeSet<String>> = factors
        .iter()
        .map(|f| {
            f.all_variables()
                .into_iter()
                .filter(|v| !bound.contains(v))
                .collect()
        })
        .collect();
    let mut groups: Vec<(BTreeSet<String>, Vec<usize>)> = Vec::new();
    for (i, vars) in vars_of.iter().enumerate() {
        let hit = groups
            .iter()
            .position(|(gvars, _)| !gvars.is_disjoint(vars) && !vars.is_empty());
        match hit {
            Some(g) => {
                groups[g].0.extend(vars.iter().cloned());
                groups[g].1.push(i);
            }
            None => groups.push((vars.clone(), vec![i])),
        }
    }
    // Transitive closure of the merging (a later factor may bridge two earlier groups).
    loop {
        let mut merged = false;
        'outer: for a in 0..groups.len() {
            for b in (a + 1)..groups.len() {
                if !groups[a].0.is_disjoint(&groups[b].0)
                    && !groups[a].0.is_empty()
                    && !groups[b].0.is_empty()
                {
                    let (vars, idxs) = groups.remove(b);
                    groups[a].0.extend(vars);
                    groups[a].1.extend(idxs);
                    merged = true;
                    break 'outer;
                }
            }
        }
        if !merged {
            break;
        }
    }
    if groups.len() <= 1 {
        return None;
    }
    // Attribute each needed column to the (unique) group that can produce it.
    let mut group_needed: Vec<Vec<String>> = vec![Vec::new(); groups.len()];
    for col in needed {
        let owners: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, (vars, _))| vars.contains(col))
            .map(|(i, _)| i)
            .collect();
        match owners.as_slice() {
            [single] => group_needed[*single].push(col.clone()),
            _ => return None,
        }
    }
    let parts: Vec<Expr> = groups
        .iter()
        .zip(group_needed.iter())
        .map(|((_, idxs), gb)| {
            let body = Expr::product_of(idxs.iter().map(|&i| factors[i].clone()));
            simplify(&Expr::AggSum(gb.clone(), Box::new(body)))
        })
        .collect();
    Some(simplify(&Expr::product_of(parts)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::CompileMode;

    fn ho_options() -> CompileOptions {
        CompileOptions::for_mode(CompileMode::HigherOrder)
    }

    fn bound(vars: &[&str]) -> BTreeSet<String> {
        vars.iter().map(|s| s.to_string()).collect()
    }

    fn run_monomial(
        factors: Vec<Expr>,
        needed: &[&str],
        bnd: &[&str],
        options: &CompileOptions,
    ) -> (Expr, Vec<MapDecl>, CompileReport) {
        let mut reg = MapRegistry::new();
        let mut report = CompileReport::default();
        let mut mat = Materializer {
            registry: &mut reg,
            options,
            report: &mut report,
            depth: 1,
            avoid: None,
            name_hint: "q".into(),
        };
        let needed: Vec<String> = needed.iter().map(|s| s.to_string()).collect();
        let e = mat.materialize_monomial(&Monomial::of(factors), &needed, &bound(bnd));
        (e, reg.into_maps(), report)
    }

    #[test]
    fn example10_decomposition_of_disconnected_join() {
        // Delta of Sum[](R(A,B)*S(B,C)*T(C,D)) for +S(b,c): Sum[](R(A,b)*T(c,D)).
        // R and T are disconnected once b, c are bound: two separate maps.
        let (e, maps, report) = run_monomial(
            vec![Expr::rel("R", ["A", "b"]), Expr::rel("T", ["c", "D"])],
            &[],
            &["b", "c"],
            &ho_options(),
        );
        assert_eq!(maps.len(), 2, "expected M1[b] and M2[c], got {maps:?}");
        assert!(report.used_decomposition);
        // Both maps are keyed by the bound variable they contain.
        let keys: Vec<Vec<String>> = maps.iter().map(|m| m.out_vars.clone()).collect();
        assert!(keys.contains(&vec!["b".to_string()]));
        assert!(keys.contains(&vec!["c".to_string()]));
        // The rewritten clause references both views.
        let views: Vec<_> = e
            .atoms()
            .into_iter()
            .filter(|a| a.kind == AtomKind::View)
            .collect();
        assert_eq!(views.len(), 2);
    }

    #[test]
    fn naive_mode_materializes_cross_product() {
        let mut options = CompileOptions::for_mode(CompileMode::NaiveViewlet);
        options.materialize_deltas = true;
        let (_, maps, _) = run_monomial(
            vec![Expr::rel("R", ["A", "b"]), Expr::rel("T", ["c", "D"])],
            &[],
            &["b", "c"],
            &options,
        );
        // Without decomposition the whole cross product is one map keyed by (b, c).
        assert_eq!(maps.len(), 1);
        assert_eq!(maps[0].out_vars.len(), 2);
    }

    #[test]
    fn value_terms_are_pushed_into_the_component() {
        // Example 2: delta of SUM(price * xch) w.r.t. +O(ordk, xch):
        //   LI(o_ordk, PRICE) * PRICE * o_xch
        // PRICE is aggregated inside the map; o_xch (a trigger variable) stays outside.
        let (e, maps, report) = run_monomial(
            vec![
                Expr::rel("LI", ["o_ordk", "PRICE"]),
                Expr::var("PRICE"),
                Expr::var("o_xch"),
            ],
            &[],
            &["o_ordk", "o_xch"],
            &ho_options(),
        );
        assert_eq!(maps.len(), 1);
        assert_eq!(maps[0].out_vars, vec!["o_ordk"]);
        let def = maps[0].definition.to_string();
        assert!(
            def.contains("PRICE"),
            "aggregated value folded into the map: {def}"
        );
        assert!(
            !def.contains("o_xch"),
            "trigger variable must stay outside: {def}"
        );
        assert!(e.to_string().contains("o_xch"));
        assert!(report.used_input_var_extraction);
    }

    #[test]
    fn nested_aggregate_is_materialized_separately() {
        // C(ck) * (x := Sum[](LI(ok, qty) * qty)) * (100 < x)
        let nested = Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([Expr::rel("LI", ["ok", "qty"]), Expr::var("qty")]),
        );
        let (e, maps, report) = run_monomial(
            vec![
                Expr::rel("C", ["ck"]),
                Expr::lift("x", nested),
                Expr::cmp(dbtoaster_agca::CmpOp::Lt, Expr::val(100), Expr::var("x")),
            ],
            &["ck"],
            &[],
            &ho_options(),
        );
        assert!(report.used_nested_rewrite);
        // Two maps: one for C(ck) and one for the nested aggregate.
        assert_eq!(maps.len(), 2, "{maps:?}");
        // The lift remains in the rewritten expression and references a view.
        let s = e.to_string();
        assert!(s.contains(":="), "lift still present: {s}");
        assert!(s.contains("$"), "references a view: {s}");
    }

    #[test]
    fn dedup_reuses_structurally_equal_maps() {
        let mut reg = MapRegistry::new();
        let mut report = CompileReport::default();
        let options = ho_options();
        let def = Expr::agg_sum(
            ["ok"],
            Expr::product_of([Expr::rel("LI", ["ok", "q"]), Expr::var("q")]),
        );
        {
            let mut mat = Materializer {
                registry: &mut reg,
                options: &options,
                report: &mut report,
                depth: 1,
                avoid: None,
                name_hint: "q".into(),
            };
            let m1 = mat.materialize_monomial(
                &Monomial::of(vec![def.clone()]),
                &["ok".to_string()],
                &bound(&[]),
            );
            // Same definition with renamed variables: must reuse the same map.
            let def2 = Expr::agg_sum(
                ["o2"],
                Expr::product_of([Expr::rel("LI", ["o2", "q2"]), Expr::var("q2")]),
            );
            let m2 = mat.materialize_monomial(
                &Monomial::of(vec![def2]),
                &["o2".to_string()],
                &bound(&[]),
            );
            let name1 = match &m1 {
                Expr::Rel(r) => r.name.clone(),
                other => panic!("expected view ref, got {other}"),
            };
            let name2 = match &m2 {
                Expr::Rel(r) => r.name.clone(),
                other => panic!("expected view ref, got {other}"),
            };
            assert_eq!(name1, name2);
        }
        assert_eq!(reg.maps().len(), 1);
        assert_eq!(report.maps_deduplicated, 1);
    }

    #[test]
    fn first_order_mode_keeps_base_relations_inline() {
        let options = CompileOptions::for_mode(CompileMode::FirstOrder);
        let (e, maps, _) = run_monomial(
            vec![Expr::rel("R", ["A", "b"]), Expr::rel("T", ["c", "D"])],
            &[],
            &["b", "c"],
            &options,
        );
        assert!(maps.is_empty());
        assert!(e.contains_atom_kind(AtomKind::Stream));
    }

    #[test]
    fn inequality_join_keeps_comparison_outside() {
        // Bids(B) * Asks(A) * (B < A): the comparison spans two components, so both maps
        // are keyed by their price column and the comparison stays in the statement.
        let (e, maps, _) = run_monomial(
            vec![
                Expr::rel("Bids", ["B"]),
                Expr::rel("Asks", ["A"]),
                Expr::cmp(dbtoaster_agca::CmpOp::Lt, Expr::var("B"), Expr::var("A")),
            ],
            &[],
            &[],
            &ho_options(),
        );
        assert_eq!(maps.len(), 2);
        assert!(e.to_string().contains("<"));
        assert!(maps.iter().any(|m| m.out_vars == vec!["B".to_string()]));
        assert!(maps.iter().any(|m| m.out_vars == vec!["A".to_string()]));
    }
}
