//! # DBToaster Higher-Order IVM compiler
//!
//! This crate implements the paper's primary contribution: the compilation of SQL-like
//! AGCA queries into *trigger programs* that maintain the query result (and a hierarchy
//! of auxiliary views) incrementally as single-tuple updates arrive.
//!
//! * [`program`] — the trigger-program IR ([`TriggerProgram`], [`MapDecl`],
//!   [`Statement`], [`Trigger`]), the relation [`Catalog`] and the
//!   [`CompileOptions`]/[`CompileMode`] corresponding to the systems compared in the
//!   paper's evaluation (DBToaster, IVM, Naive, REP).
//! * [`materialize`] — materialization decisions: the heuristic rewrite rules of
//!   Figure 1 (query decomposition, input-variable extraction, nested-aggregate
//!   decorrelation) and duplicate view elimination.
//! * [`mod@compile`] — the viewlet transform / Higher-Order IVM recursion (Algorithms 1–3)
//!   producing the trigger program.
//!
//! ```
//! use dbtoaster_compiler::prelude::*;
//! use dbtoaster_agca::Expr;
//!
//! // Example 2 of the paper: SUM(LI.PRICE * O.XCH) over an equijoin.
//! let catalog: Catalog = [
//!     RelationMeta::stream("O", ["ORDK", "XCH"]),
//!     RelationMeta::stream("LI", ["ORDK", "PRICE"]),
//! ].into_iter().collect();
//! let q = QuerySpec {
//!     name: "Q".into(),
//!     out_vars: vec![],
//!     expr: Expr::agg_sum(Vec::<String>::new(), Expr::product_of([
//!         Expr::rel("O", ["ORDK", "XCH"]),
//!         Expr::rel("LI", ["ORDK", "PRICE"]),
//!         Expr::var("XCH"),
//!         Expr::var("PRICE"),
//!     ])),
//! };
//! let program = compile(&[q], &catalog, &CompileOptions::default()).unwrap();
//! assert!(program.trigger("O", UpdateSign::Insert).is_some());
//! ```

pub mod batch_delta;
pub mod compile;
pub mod explain;
pub mod materialize;
pub mod program;
pub mod shard;

pub use batch_delta::{derive_batch_corrections, derive_batch_corrections_with_reasons};
pub use compile::{compile, fix_atom_kinds, CompileError};
pub use explain::{explain, ProgramExplain, RelationExplain, StmtExplain, ViewStats};
pub use materialize::{MapRegistry, Materializer};
pub use program::{
    BatchCorrection, BatchDeltaBail, BatchDeltaOutcome, BatchStrategy, Catalog, CompileMode,
    CompileOptions, CompileReport, CompiledTrigger, MapDecl, QueryResult, QuerySpec,
    RelationDispatch, RelationMeta, ResultAccess, Statement, StatementMajorBlock, StmtOp, Trigger,
    TriggerProgram,
};
pub use shard::{
    analyze_sharding, slice_program, MapClass, RelationShardPlan, ShardPlan, ShardSlices,
};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::compile::{compile, CompileError};
    pub use crate::explain::{explain, ProgramExplain, ViewStats};
    pub use crate::program::{
        BatchCorrection, BatchDeltaBail, BatchDeltaOutcome, BatchStrategy, Catalog, CompileMode,
        CompileOptions, CompileReport, CompiledTrigger, MapDecl, QueryResult, QuerySpec,
        RelationDispatch, RelationMeta, ResultAccess, Statement, StatementMajorBlock, StmtOp,
        Trigger, TriggerProgram,
    };
    pub use crate::shard::{
        analyze_sharding, slice_program, MapClass, RelationShardPlan, ShardPlan, ShardSlices,
    };
    pub use dbtoaster_agca::UpdateSign;
}
