//! Second-order **batch** delta derivation: compile whole-run trigger
//! corrections so batch execution no longer depends on sequential per-entry
//! application.
//!
//! ## The problem
//!
//! A trigger statement's right-hand side is the *single-tuple* delta of its
//! target map, evaluated at the pre-event state. Driving it over a multi-entry
//! [`RelationDelta`](dbtoaster_agca::RelationDelta) against the **pre-run**
//! state drops the interaction between entries of the same run: for a map `M`
//! quadratic in the updated relation `R`, the delta of a later entry depends
//! on the earlier entries already being applied.
//!
//! ## The fix: differentiate once more
//!
//! Write the run's net delta as the GMR `Δ = Σₑ mₑ·tₑ` and expand `M` around
//! the pre-run state `R`:
//!
//! ```text
//! M(R + Δ) − M(R) = L(Δ) + B(Δ, Δ)
//! ```
//!
//! with `L` the linear part at `R` and `B` the (state-free, by the gates
//! below) bilinear part. The compiled per-tuple statement computes
//! `rhs^s(x) = M(R ± x) − M(R) = ±L(x) + B(x, x)`, so firing it `|mₑ|` times
//! per entry at the pre-run state accumulates
//!
//! ```text
//! S1 = Σₑ |mₑ|·rhs^{sₑ}(tₑ) = L(Δ) + Σₑ |mₑ|·B(tₑ, tₑ)
//! ```
//!
//! The missing piece is exactly
//!
//! ```text
//! S2 = B(Δ, Δ) − Σₑ |mₑ|·B(tₑ, tₑ)
//!    = ½·Σₑ,f mₑ·m_f·d²M(tₑ, t_f)  −  Σₑ |mₑ|·½·d²M(tₑ, tₑ)
//! ```
//!
//! where `d²M(x, y) = δ_y δ_x M` is the **second delta of the map's
//! definition** with two independent fresh tuples of trigger variables (so
//! cross-entry join constraints — e.g. both tuples sharing a group key —
//! survive; extracting `B` from the diagonal of `rhs` alone would lose them).
//! This module compiles `S2` into ordinary increment statements whose atoms
//! are the run's delta pseudo-relations [`@delta:R`] (signed net
//! multiplicities `mₑ`) and [`@delta_abs:R`] (absolute multiplicities
//! `|mₑ|`), joined with `d²M`; the engine resolves those atoms against the
//! in-flight `RelationDelta` instead of the store.
//!
//! All identities above are exact in the GMR ring; over floating-point
//! multiplicities they are exact whenever the stream arithmetic is (integer
//! weights and aggregates below 2⁵³ reproduce per-event results bit for bit —
//! the `½` factors are powers of two and lossless). When a run nets to a
//! single firing, `S2` is identically zero and the engine skips it.
//!
//! ## Eligibility (per relation)
//!
//! Derivation succeeds — and [`BatchStrategy::BatchDelta`] is chosen — iff:
//!
//! 1. every statement of both sign triggers is an increment (`:=`
//!    re-evaluation statements are bound to one specific event of the run and
//!    have no delta form);
//! 2. the statement order realizes pre-event reads: no statement reads its
//!    own target or the target of an earlier statement in its trigger (this
//!    is the topological order the compiler aims for; a cycle falls back to
//!    an order whose per-event semantics a pre-state evaluation cannot
//!    reproduce);
//! 3. for every map the relation affects, the **third** delta of its
//!    definition vanishes (the map is at most quadratic in `R`), and the
//!    second delta reads no state that changes mid-run: static tables and
//!    the stored slices of *other* stream relations (constant during an
//!    `R`-run) are fine, derived views are not.
//!
//! Underivable relations keep the read-before-write analysis of
//! [`TriggerProgram::batch_dispatch`]: statement-major where legal,
//! entry-major as the exact per-event oracle.
//!
//! [`@delta:R`]: dbtoaster_agca::batch::delta_relation_name
//! [`@delta_abs:R`]: dbtoaster_agca::batch::delta_abs_relation_name
//! [`BatchStrategy::BatchDelta`]: crate::program::BatchStrategy::BatchDelta
//! [`TriggerProgram::batch_dispatch`]: crate::program::TriggerProgram::batch_dispatch

use crate::compile::reorder_products;
use crate::program::{
    BatchCorrection, BatchDeltaBail, BatchDeltaOutcome, Catalog, MapDecl, Statement, StmtOp,
    Trigger,
};
use dbtoaster_agca::batch::{delta_abs_relation_name, delta_relation_name};
use dbtoaster_agca::{delta, simplify, AtomKind, Expr, TupleUpdate, UpdateSign};
use dbtoaster_gmr::FastMap;
use std::collections::BTreeSet;

/// Derive the per-relation second-order batch corrections of a trigger
/// program (see the module docs). Returns one [`BatchCorrection`] per
/// eligible relation — possibly with zero statements, when every affected map
/// is linear in it. Kernels are **not** lowered here; the caller lowers each
/// statement alongside the trigger statements.
pub fn derive_batch_corrections(
    maps: &[MapDecl],
    triggers: &[Trigger],
    catalog: &Catalog,
) -> Vec<BatchCorrection> {
    derive_batch_corrections_with_reasons(maps, triggers, catalog).0
}

/// [`derive_batch_corrections`] plus the per-relation outcome record: for each
/// relation, either eligibility or the first bail gate that fired (the data
/// behind EXPLAIN's strategy reasons).
pub fn derive_batch_corrections_with_reasons(
    maps: &[MapDecl],
    triggers: &[Trigger],
    catalog: &Catalog,
) -> (Vec<BatchCorrection>, Vec<BatchDeltaOutcome>) {
    let mut relations: Vec<&str> = Vec::new();
    for t in triggers {
        if !relations.contains(&t.relation.as_str()) {
            relations.push(&t.relation);
        }
    }
    let mut corrections = Vec::new();
    let mut outcomes = Vec::new();
    for rel in relations {
        let bail = match derive_relation(rel, maps, triggers, catalog) {
            Ok(c) => {
                corrections.push(c);
                None
            }
            Err(bail) => Some(bail),
        };
        outcomes.push(BatchDeltaOutcome {
            relation: rel.to_string(),
            bail,
        });
    }
    (corrections, outcomes)
}

fn derive_relation(
    relation: &str,
    maps: &[MapDecl],
    triggers: &[Trigger],
    catalog: &Catalog,
) -> Result<BatchCorrection, BatchDeltaBail> {
    let rel_triggers: Vec<&Trigger> = triggers.iter().filter(|t| t.relation == relation).collect();
    // Gate 1: increments only.
    if rel_triggers
        .iter()
        .any(|t| t.statements.iter().any(|s| s.op != StmtOp::Increment))
    {
        return Err(BatchDeltaBail::ReplaceStatement);
    }
    // Gate 2: every read of an in-trigger target precedes its write.
    for t in &rel_triggers {
        for (i, s) in t.statements.iter().enumerate() {
            let reads = s.reads();
            if let Some(w) = t.statements[..=i]
                .iter()
                .find(|w| reads.contains(&w.target))
            {
                return Err(BatchDeltaBail::ReadAfterWrite {
                    target: w.target.clone(),
                });
            }
        }
    }

    let meta = catalog
        .get(relation)
        .ok_or(BatchDeltaBail::UnknownRelation)?;
    let u1 = TupleUpdate::new(relation, UpdateSign::Insert, &meta.columns);
    let fresh = |n: u32| TupleUpdate {
        relation: u1.relation.clone(),
        sign: UpdateSign::Insert,
        trigger_vars: u1.trigger_vars.iter().map(|v| format!("{v}@{n}")).collect(),
    };
    let (u2, u3) = (fresh(2), fresh(3));
    let signed = delta_relation_name(relation);
    let absolute = delta_abs_relation_name(relation);
    let rename_y_to_x: FastMap<String, String> = u2
        .trigger_vars
        .iter()
        .cloned()
        .zip(u1.trigger_vars.iter().cloned())
        .collect();

    let mut statements = Vec::new();
    for m in maps {
        let d1 = simplify(&delta(&m.definition, &u1));
        if d1.is_zero() {
            continue; // map unaffected by this relation
        }
        let d2 = simplify(&delta(&d1, &u2));
        if d2.is_zero() {
            continue; // map linear in this relation: no interaction term
        }
        // Gate 3: at most quadratic, and the bilinear part is state-free
        // (static tables excepted — they never change mid-run).
        if !simplify(&delta(&d2, &u3)).is_zero() {
            return Err(BatchDeltaBail::NonzeroThirdDelta {
                map: m.name.clone(),
            });
        }
        // A *stream* atom `X ≠ R` surviving into the bilinear part is
        // constant for the duration of an `R`-run: runs are per-relation and
        // corrections evaluate at the pre-run store, so `X`'s stored slice IS
        // its pre-run state. (`X = R` cannot survive — its delta would make
        // the third delta nonzero, caught above.) The compiler keeps every
        // such relation in `stored_relations` (see `compile`). Only a derived
        // *view* atom — whose mid-run value the pre-state evaluation cannot
        // see — forces a bail; map definitions range over base relations, so
        // this gate is defensive.
        if d2.atoms().iter().any(|a| a.kind == AtomKind::View) {
            return Err(BatchDeltaBail::SurvivingViewAtom {
                map: m.name.clone(),
            });
        }

        // ½·Σₑ,f mₑ·m_f·d²M(tₑ, t_f): join the signed delta with itself.
        let pair = Expr::agg_sum(
            m.out_vars.clone(),
            Expr::product_of([
                Expr::view(&signed, u1.trigger_vars.clone()),
                Expr::view(&signed, u2.trigger_vars.clone()),
                Expr::val(0.5),
                d2.clone(),
            ]),
        );
        // −Σₑ |mₑ|·½·d²M(tₑ, tₑ): the diagonal the first-order firings
        // already accumulated.
        let diag = Expr::agg_sum(
            m.out_vars.clone(),
            Expr::product_of([
                Expr::view(&absolute, u1.trigger_vars.clone()),
                Expr::val(-0.5),
                d2.rename_vars(&rename_y_to_x),
            ]),
        );
        for rhs in [pair, diag] {
            let rhs = reorder_products(&simplify(&rhs), &BTreeSet::new());
            if rhs.is_zero() {
                continue;
            }
            statements.push(Statement {
                target: m.name.clone(),
                key_vars: m.out_vars.clone(),
                loop_vars: m.out_vars.clone(),
                op: StmtOp::Increment,
                rhs,
            });
        }
    }
    Ok(BatchCorrection {
        relation: relation.to_string(),
        statements,
        compiled: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use crate::compile::compile;
    use crate::program::{
        BatchStrategy, Catalog, CompileMode, CompileOptions, QuerySpec, RelationMeta,
    };
    use dbtoaster_agca::{CmpOp, Expr};

    fn catalog() -> Catalog {
        [
            RelationMeta::stream("R", ["A", "B"]),
            RelationMeta::stream("S", ["B", "C"]),
        ]
        .into_iter()
        .collect()
    }

    fn selfj() -> QuerySpec {
        QuerySpec {
            name: "SELFJ".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::rel("R", ["a2", "b"])]),
            ),
        }
    }

    fn linear() -> QuerySpec {
        QuerySpec {
            name: "TOTAL".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["a", "b"]),
                    Expr::rel("S", ["b", "c"]),
                    Expr::var("c"),
                ]),
            ),
        }
    }

    #[test]
    fn quadratic_query_gets_a_nonzero_correction_and_batch_delta_dispatch() {
        let program = compile(
            &[selfj()],
            &catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        let corr = program.batch_correction("R").expect("R eligible");
        assert!(
            !corr.statements.is_empty(),
            "self-join must produce interaction terms"
        );
        for s in &corr.statements {
            assert_eq!(s.op, crate::program::StmtOp::Increment);
        }
        assert_eq!(corr.compiled.len(), corr.statements.len());
        let dispatch = program.batch_dispatch();
        let r = dispatch.iter().find(|d| d.relation == "R").unwrap();
        assert_eq!(r.strategy, BatchStrategy::BatchDelta);
    }

    #[test]
    fn linear_query_is_eligible_with_empty_correction() {
        let program = compile(
            &[linear()],
            &catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        for rel in ["R", "S"] {
            let corr = program.batch_correction(rel).expect("linear is eligible");
            assert!(
                corr.statements.is_empty(),
                "{rel}: linear maps need no interaction terms: {:?}",
                corr.statements
            );
            let dispatch = program.batch_dispatch();
            let d = dispatch.iter().find(|d| d.relation == rel).unwrap();
            assert_eq!(d.strategy, BatchStrategy::BatchDelta);
        }
    }

    #[test]
    fn replace_statements_disable_derivation() {
        let program = compile(
            &[linear()],
            &catalog(),
            &CompileOptions::for_mode(CompileMode::Reevaluate),
        )
        .unwrap();
        assert!(program.batch_corrections.is_empty());
        for d in program.batch_dispatch() {
            assert_ne!(d.strategy, BatchStrategy::BatchDelta);
        }
    }

    #[test]
    fn nested_aggregate_shapes_fall_back() {
        let inner = Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([Expr::rel("S", ["b2", "c"]), Expr::var("c")]),
        );
        let nested = QuerySpec {
            name: "NESTED".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["a", "b"]),
                    Expr::lift("z", inner),
                    Expr::cmp(CmpOp::Lt, Expr::var("b"), Expr::var("z")),
                ]),
            ),
        };
        let program = compile(
            &[nested],
            &catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        // Whatever statement shapes the heuristic picked, no relation with a
        // state-reading or replace-bearing trigger may claim batch-delta.
        for d in program.batch_dispatch() {
            if d.strategy == BatchStrategy::BatchDelta {
                let corr = program.batch_correction(&d.relation).unwrap();
                assert!(corr.statements.iter().all(|s| !s.rhs.is_zero()));
            }
        }
    }

    #[test]
    fn forced_dispatch_downgrades() {
        let program = compile(
            &[selfj()],
            &catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        for d in program.batch_dispatch_forced(Some(BatchStrategy::EntryMajor)) {
            assert_eq!(d.strategy, BatchStrategy::EntryMajor);
        }
        for d in program.batch_dispatch_forced(Some(BatchStrategy::StatementMajor)) {
            assert_ne!(d.strategy, BatchStrategy::BatchDelta);
        }
    }
}
