//! Kill-and-recover equivalence, end to end through the facade.
//!
//! Drives ≥50k events into a durable `ViewServer`, hard-drops it mid-stream
//! with `ViewServer::kill()` (no flush, no final checkpoint — the closest a
//! live process comes to `kill -9`), reopens the directory with
//! `open_or_create`, and requires:
//!
//! * every served view equals a never-crashed reference engine over the
//!   applied prefix, **bit for bit** (all maintained maps, not just results);
//! * recovery replayed only the events above the newest checkpoint watermark
//!   (asserted exactly via `recovery_replayed_events`);
//! * replaying the remainder of the stream converges both runs to the same
//!   final state, bit for bit;
//! * a clean shutdown then reopens with zero replay (the final checkpoint
//!   covers everything).

use dbtoaster::prelude::*;
use dbtoaster::QueryEngineBuilder;
use dbtoaster_durability::checkpoint;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const EVENTS: usize = 60_000;
const CHECKPOINT_EVERY: u64 = 8_192;

fn catalog() -> SqlCatalog {
    [
        TableDef::stream("Orders", ["ordk", "ck", "xch"]),
        TableDef::stream("Lineitem", ["ordk", "price"]),
    ]
    .into_iter()
    .collect()
}

fn builder() -> QueryEngineBuilder {
    QueryEngineBuilder::new(catalog())
        .add_query(
            "revenue",
            "SELECT o.ck, SUM(li.price * o.xch) AS total \
             FROM Orders o, Lineitem li WHERE o.ordk = li.ordk GROUP BY o.ck",
        )
        .mode(CompileMode::HigherOrder)
}

fn config(dir: &std::path::Path) -> ServerConfig {
    let mut d = DurabilityConfig::new(dir);
    d.checkpoint_every_events = CHECKPOINT_EVERY;
    // `kill()` models a process crash; the completed write syscalls survive it
    // under any policy, so the fast one keeps the test snappy.
    d.fsync = FsyncPolicy::Never;
    ServerConfig {
        durability: Some(d),
        ..ServerConfig::default()
    }
}

/// A mixed insert/delete stream over both relations.
fn events() -> Vec<UpdateEvent> {
    let mut rng = StdRng::seed_from_u64(0x4B31);
    let mut out = Vec::with_capacity(EVENTS);
    let mut live_items: Vec<(i64, i64)> = Vec::new();
    let mut next_order = 0i64;
    for _ in 0..EVENTS {
        match rng.random_range(0..10u32) {
            0..=2 => {
                out.push(UpdateEvent::insert(
                    "Orders",
                    vec![
                        Value::long(next_order),
                        Value::long(next_order % 97),
                        Value::double((next_order % 5) as f64 + 0.5),
                    ],
                ));
                next_order += 1;
            }
            3..=8 => {
                let ordk = rng.random_range(0..(next_order + 1).max(1));
                let price = rng.random_range(1..1000i64);
                live_items.push((ordk, price));
                out.push(UpdateEvent::insert(
                    "Lineitem",
                    vec![Value::long(ordk), Value::double(price as f64)],
                ));
            }
            _ if !live_items.is_empty() => {
                let (ordk, price) = live_items.swap_remove(rng.random_range(0..live_items.len()));
                out.push(UpdateEvent::delete(
                    "Lineitem",
                    vec![Value::long(ordk), Value::double(price as f64)],
                ));
            }
            _ => {
                out.push(UpdateEvent::insert(
                    "Lineitem",
                    vec![Value::long(0), Value::double(1.0)],
                ));
            }
        }
    }
    out
}

/// Bit-exact comparison of every view in a served snapshot against a
/// single-threaded engine.
fn assert_snapshot_matches_engine(snap: &Snapshot, engine: &dbtoaster::QueryEngine, context: &str) {
    let mut compared = 0;
    for name in snap.names() {
        let served = snap.view(name).unwrap();
        let reference = engine
            .view(name)
            .unwrap_or_else(|| panic!("{context}: reference lacks view {name}"));
        assert_eq!(
            served.len(),
            reference.len(),
            "{context}: view {name} sizes differ"
        );
        for (t, m) in served.iter() {
            assert_eq!(
                reference.get(t).to_bits(),
                m.to_bits(),
                "{context}: {name}[{t:?}] differs"
            );
        }
        compared += 1;
    }
    assert!(compared >= 2, "{context}: expected several maintained maps");
}

#[test]
fn kill_and_recover_is_bit_exact_and_replays_only_above_the_watermark() {
    let dir: PathBuf = std::env::temp_dir().join(format!("dbt-kill-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let stream = events();

    // --- Phase 1: durable server, killed mid-stream -----------------------
    let server = builder().open_or_create_with(config(&dir)).unwrap();
    let ingest = server.handle();
    // The feeder offers only the first 2/3 of the stream: however the kill
    // races the writer, the crash is guaranteed to land mid-stream.
    let offered = EVENTS * 2 / 3;
    let feeder = {
        let part: Vec<UpdateEvent> = stream[..offered].to_vec();
        std::thread::spawn(move || match ingest.send_batch(part) {
            Ok(n) => n,
            Err(e) => e.accepted,
        })
    };
    // Let it run until a periodic checkpoint has completed (beyond the
    // initial one at watermark 0) and plenty of further events applied, then
    // pull the plug mid-stream.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let s = server.stats();
        if s.checkpoints_taken >= 2 && s.events >= 2 * CHECKPOINT_EVERY {
            break;
        }
        assert!(Instant::now() < deadline, "writer made no progress");
        std::thread::yield_now();
    }
    server.kill();
    let accepted = feeder.join().expect("feeder thread");

    // --- Phase 2: reopen and verify the recovered prefix ------------------
    let server = builder().open_or_create_with(config(&dir)).unwrap();
    let stats = server.stats();
    let applied = stats.events as usize;
    assert!(
        applied <= accepted,
        "recovered {applied} events but only {accepted} were ever accepted"
    );
    assert!(applied >= 2 * CHECKPOINT_EVERY as usize);
    assert!(applied <= offered, "kill was supposed to land mid-stream");

    // Replay must start exactly at the newest durable checkpoint watermark.
    let (ckpt, _) = checkpoint::load_latest(
        &dir,
        dbtoaster_durability::program_fingerprint(builder().build().unwrap().program()),
    )
    .unwrap();
    let watermark = ckpt.expect("checkpoint present").watermark;
    assert!(
        watermark >= CHECKPOINT_EVERY,
        "no periodic checkpoint survived"
    );
    assert_eq!(
        stats.recovery_replayed_events,
        applied as u64 - watermark,
        "recovery must replay exactly the events above the checkpoint watermark"
    );

    // Bit-exact prefix equivalence against a never-crashed reference.
    let mut reference = builder().build().unwrap();
    reference.init().unwrap();
    reference.process_all(&stream[..applied]).unwrap();
    let reader = server.reader();
    assert_snapshot_matches_engine(&reader.snapshot(), &reference, "after recovery");
    assert_eq!(
        server.reader().query("revenue").unwrap().len(),
        reference.result("revenue").unwrap().len(),
        "served result table diverged"
    );

    // --- Phase 3: replay the remainder and converge ------------------------
    let n = server
        .handle()
        .send_batch(stream[applied..].to_vec())
        .unwrap();
    assert_eq!(n, EVENTS - applied);
    server.flush().unwrap();
    reference.process_all(&stream[applied..]).unwrap();
    let final_stats = server.stats();
    assert_eq!(final_stats.events as usize, EVENTS);
    assert!(final_stats.wal_bytes_written > 0);
    assert_snapshot_matches_engine(&reader.snapshot(), &reference, "after full replay");

    // --- Phase 4: clean shutdown reopens with zero replay ------------------
    let engine = server.shutdown().unwrap();
    assert_eq!(engine.stats().events as usize, EVENTS);
    assert!(engine.stats().checkpoints_taken > 0);
    let server = builder().open_or_create_with(config(&dir)).unwrap();
    let stats = server.stats();
    assert_eq!(stats.events as usize, EVENTS);
    assert_eq!(
        stats.recovery_replayed_events, 0,
        "a cleanly shut down server must reopen from its final checkpoint alone"
    );
    assert_snapshot_matches_engine(
        &server.reader().snapshot(),
        &reference,
        "after clean reopen",
    );
    drop(server);
    let _ = fs::remove_dir_all(&dir);
}

/// Group commit under `FsyncPolicy::Always`: a wide window lets WAL appends
/// share fsyncs (the telemetry counter proves coalescing happened), a flush
/// barrier forces the deferred sync, and a kill + reopen still recovers the
/// flushed prefix bit-exactly.
#[test]
fn group_commit_coalesces_fsyncs_and_recovers() {
    let dir: PathBuf = std::env::temp_dir().join(format!("dbt-gc-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let stream: Vec<UpdateEvent> = events().into_iter().take(4_000).collect();

    let mut d = DurabilityConfig::new(&dir);
    d.checkpoint_every_events = CHECKPOINT_EVERY;
    d.fsync = FsyncPolicy::Always;
    // Wide open: every append inside the run defers its fsync; only barriers
    // (flush), rotation, and shutdown actually sync.
    d.group_commit_window = Duration::from_secs(3600);
    let cfg = ServerConfig {
        durability: Some(d),
        ..ServerConfig::default()
    };

    let server = builder().open_or_create_with(cfg.clone()).unwrap();
    let ingest = server.handle();
    // Many sends in small chunks → many drained micro-batches → many WAL
    // appends, all coalescing into the open window.
    for chunk in stream.chunks(64) {
        ingest.send_batch(chunk.to_vec()).unwrap();
    }
    server.flush().unwrap();

    let coalesced = server
        .metrics()
        .counters
        .iter()
        .find(|(n, _)| n == "wal_group_commit_coalesced_total")
        .map(|(_, v)| *v)
        .expect("coalesce counter registered");
    assert!(
        coalesced > 0,
        "appends under Always with a window must coalesce fsyncs"
    );
    assert_eq!(server.stats().events as usize, stream.len());

    // The flush barrier forced the deferred sync, so even a hard kill loses
    // nothing that was acked: reopen and compare bit for bit.
    server.kill();
    let server = builder().open_or_create_with(cfg).unwrap();
    assert_eq!(server.stats().events as usize, stream.len());
    let mut reference = builder().build().unwrap();
    reference.init().unwrap();
    reference.process_all(&stream).unwrap();
    assert_snapshot_matches_engine(
        &server.reader().snapshot(),
        &reference,
        "after group-commit recovery",
    );
    drop(server);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_poison_event_does_not_desync_the_wal_from_the_watermark() {
    // A failing event (wrong arity) is WAL'd with its sequence slot but
    // applies nothing. The watermark must advance past it all the same, or
    // every later checkpoint would lag the log and recovery would double-apply
    // the suffix. Recovery of the degraded stream must also succeed.
    let dir: PathBuf = std::env::temp_dir().join(format!("dbt-poison-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let mut stream: Vec<UpdateEvent> = events()[..300].to_vec();
    stream.insert(150, UpdateEvent::insert("Orders", vec![Value::long(1)]));

    let server = builder().open_or_create_with(config(&dir)).unwrap();
    server.handle().send_batch(stream.clone()).unwrap();
    server.flush().unwrap();
    assert!(
        server.last_error().is_some(),
        "poison event must be surfaced"
    );
    assert_eq!(server.stats().events as usize, stream.len());
    server.kill();

    let server = builder().open_or_create_with(config(&dir)).unwrap();
    let stats = server.stats();
    assert_eq!(
        stats.events as usize,
        stream.len(),
        "recovered watermark must cover the poison event's slot"
    );
    assert_eq!(stats.recovery_replayed_events as usize, stream.len());
    // The arity check fires before any statement runs, so the degraded state
    // equals the clean stream's state: compare against a reference that skips
    // the poison event.
    let mut reference = builder().build().unwrap();
    reference.init().unwrap();
    for ev in &stream {
        let _ = reference.process(ev);
    }
    assert_snapshot_matches_engine(&server.reader().snapshot(), &reference, "poison recovery");
    drop(server);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_poison_event_mid_batch_leaves_live_and_recovered_state_identical() {
    // The batch-first contract for poison events: a failing event *inside* a
    // multi-event batch (here: an arity-mismatched insert surrounded by good
    // same-relation events, all drained into one micro-batch = one WAL
    // record) keeps its WAL sequence slot, the rest of the batch applies, and
    // replay — which rebuilds the same DeltaBatch per record — reproduces the
    // live degraded state bit for bit.
    let dir: PathBuf =
        std::env::temp_dir().join(format!("dbt-poison-midbatch-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let mut stream: Vec<UpdateEvent> = events()[..400].to_vec();
    stream.insert(200, UpdateEvent::insert("Lineitem", vec![Value::long(3)]));

    let server = builder().open_or_create_with(config(&dir)).unwrap();
    server.handle().send_batch(stream.clone()).unwrap();
    server.flush().unwrap();
    assert!(
        server.last_error().is_some(),
        "mid-batch poison event must be surfaced"
    );
    assert_eq!(
        server.stats().events as usize,
        stream.len(),
        "the poison event must keep its WAL sequence slot"
    );
    // Capture the live (degraded) state and the live strategy mix, then crash
    // without a final checkpoint.
    let live: Vec<(String, Gmr)> = {
        let snap = server.reader().snapshot();
        snap.names()
            .map(|n| (n.to_string(), snap.view(n).unwrap().clone()))
            .collect()
    };
    assert!(live.len() >= 2, "expected several maintained maps");
    let live_stats = server.stats();
    assert!(
        live_stats.batch_delta_runs > 0,
        "this workload's relations should dispatch batch-delta"
    );
    server.kill();

    let server = builder().open_or_create_with(config(&dir)).unwrap();
    let stats = server.stats();
    assert_eq!(
        stats.events as usize,
        stream.len(),
        "recovered watermark must cover the poison event's slot"
    );
    assert!(
        server.durability_warning().is_some(),
        "replaying past a poison event is a degraded recovery and must say so"
    );
    // Replay rebuilds one delta batch per WAL record, so it must make the
    // same per-run strategy choices the live writer made — counter for
    // counter, poison batch included.
    let stats = server.stats();
    assert_eq!(
        (
            stats.batch_delta_runs,
            stats.statement_major_runs,
            stats.entry_major_runs
        ),
        (
            live_stats.batch_delta_runs,
            live_stats.statement_major_runs,
            live_stats.entry_major_runs
        ),
        "replay must choose the same batch strategies as the live run"
    );
    let snap = server.reader().snapshot();
    for (name, g) in &live {
        let recovered = snap
            .view(name)
            .unwrap_or_else(|| panic!("recovered snapshot lacks view {name}"));
        assert_eq!(
            recovered.len(),
            g.len(),
            "view {name} sizes differ after mid-batch poison recovery"
        );
        for (t, m) in g.iter() {
            assert_eq!(
                recovered.get(t).to_bits(),
                m.to_bits(),
                "view {name}[{t:?}] differs between live and recovered state"
            );
        }
    }
    drop(server);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wal_replay_chooses_the_same_batch_strategies_as_the_live_run() {
    // Strategy equivalence under recovery, at run granularity: replay rebuilds
    // one delta batch per WAL record and drives it through the same
    // `process_batch` dispatch as the live writer, so the full sequence of
    // (relation, strategy, events) run records — across uneven micro-batches,
    // a mid-batch poison event, and any runtime batch-delta cost-gate
    // fallback — must be identical. The aggregate-counter check in the poison
    // test above could mask compensating swaps; this one cannot.
    use dbtoaster::agca::DeltaBatch;
    use dbtoaster::compiler::BatchStrategy;
    use dbtoaster::runtime::{Engine, RunRecord};
    use dbtoaster_durability::{program_fingerprint, WalReader, WalWriter};

    let dir: PathBuf = std::env::temp_dir().join(format!("dbt-runrec-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    // The revenue query's batch-delta corrections are empty (its deltas are
    // linear), so it alone never consults the correction cost gate. The
    // Lineitem self-join adds a query whose delta re-reads a map Lineitem
    // itself maintains — non-empty second-order corrections, and a per-batch
    // gate decision fed by observed map sizes.
    let program = QueryEngineBuilder::new(catalog())
        .add_query(
            "revenue",
            "SELECT o.ck, SUM(li.price * o.xch) AS total \
             FROM Orders o, Lineitem li WHERE o.ordk = li.ordk GROUP BY o.ck",
        )
        .add_query(
            "lineitem_pairs",
            "SELECT li1.ordk, SUM(li1.price * li2.price) AS pp \
             FROM Lineitem li1, Lineitem li2 WHERE li1.ordk = li2.ordk GROUP BY li1.ordk",
        )
        .mode(CompileMode::HigherOrder)
        .build()
        .unwrap()
        .program()
        .clone();
    let ccat = dbtoaster::to_compiler_catalog(&catalog());
    let fp = program_fingerprint(&program);

    let mut stream: Vec<UpdateEvent> = events()[..2_000].to_vec();
    // Arity-mismatched insert: poisons the middle of whatever micro-batch it
    // lands in without stopping the stream.
    stream.insert(700, UpdateEvent::insert("Lineitem", vec![Value::long(3)]));

    // Live run: uneven micro-batches, one WAL record each (the live writer's
    // contract: record boundaries == batch boundaries), run recording on.
    let mut live = Engine::new(program.clone(), &ccat);
    live.set_run_recording(true);
    let mut wal = WalWriter::open(&dir, fp, 1, FsyncPolicy::Never, u64::MAX).unwrap();
    let mut live_runs: Vec<RunRecord> = Vec::new();
    let mut live_failed = 0u64;
    let mut delta = DeltaBatch::new();
    let mut rest: &[UpdateEvent] = &stream;
    let mut size = 1usize;
    while !rest.is_empty() {
        let n = size.min(rest.len());
        let (chunk, tail) = rest.split_at(n);
        rest = tail;
        size = (size * 3 + 1) % 257 + 1;
        wal.append(chunk).unwrap();
        delta.clear();
        for ev in chunk {
            delta.push(ev);
        }
        let report = live.process_batch(&delta);
        live_failed += report.failed_events;
        live_runs.extend(report.runs);
    }
    wal.sync().unwrap();
    drop(wal);
    assert_eq!(live_failed, 1, "exactly the poison event must fail");

    // Replay: same records, same batches, same dispatch.
    let reader = WalReader::open(&dir, fp).unwrap();
    let mut replayed = Engine::new(program, &ccat);
    replayed.set_run_recording(true);
    let mut replay_runs: Vec<RunRecord> = Vec::new();
    let mut delta = DeltaBatch::new();
    reader
        .replay_records(1, &mut |_first_seq, events| {
            delta.clear();
            for ev in events {
                delta.push_owned(ev);
            }
            let report = replayed.process_batch(&delta);
            replay_runs.extend(report.runs);
            Ok(())
        })
        .unwrap();

    assert!(!live_runs.is_empty(), "run recording produced nothing");
    assert!(
        live_runs
            .iter()
            .any(|r| r.strategy == BatchStrategy::BatchDelta),
        "the revenue query's relations should dispatch batch-delta: {live_runs:?}"
    );
    // The deterministic correction cost gate (batch firing count vs the
    // observed sizes of the maps the relation's triggers read) must flip
    // within this stream: early wide batches meet near-empty maps and fall
    // back to entry-major, while later batches run their second-order
    // corrections once the maps outgrow the firing count. Both outcomes on
    // one batch-delta relation pin the decision path; the sequence equality
    // below then proves replay re-derives every decision from rebuilt engine
    // state rather than from anything the live process remembered.
    let gate_flipped = live_runs.iter().any(|r| {
        r.strategy == BatchStrategy::EntryMajor
            && r.events > 3
            && live_runs
                .iter()
                .any(|b| b.relation == r.relation && b.strategy == BatchStrategy::BatchDelta)
    });
    assert!(
        gate_flipped,
        "expected the batch-delta cost gate to fall back to entry-major at least once \
         while the read maps were small: {live_runs:?}"
    );
    assert_eq!(
        live_runs, replay_runs,
        "live and replayed run sequences must be identical"
    );
    // Identical runs must mean identical bits.
    for m in &live.program().maps {
        let (a, b) = (live.view(&m.name), replayed.view(&m.name));
        match (a, b) {
            (Some(ga), Some(gb)) => assert!(
                ga.equivalent(&gb, 0.0),
                "view {} diverges between live and replay",
                m.name
            ),
            (None, None) => {}
            _ => panic!("view {} present on only one side", m.name),
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn durable_serve_refuses_an_unrecovered_directory() {
    // `serve_with` + durability on a directory that already holds a checkpoint
    // ahead of the (fresh) engine must be refused: adopting it would fork
    // history. `open_or_create` is the path that recovers first.
    let dir: PathBuf = std::env::temp_dir().join(format!("dbt-stale-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let server = builder().open_or_create_with(config(&dir)).unwrap();
    server
        .handle()
        .send_batch(events()[..500].to_vec())
        .unwrap();
    server.flush().unwrap();
    drop(server); // clean shutdown: final checkpoint at watermark 500

    match builder().build().unwrap().serve_with(config(&dir)) {
        Err(e) => assert!(
            e.to_string().contains("open_or_create"),
            "unexpected error: {e}"
        ),
        Ok(_) => panic!("serving a stale durable dir with a fresh engine must fail"),
    }
    // The sanctioned path still works and comes back warm.
    let server = builder().open_or_create_with(config(&dir)).unwrap();
    assert_eq!(server.stats().events, 500);
    drop(server);

    // Same refusal when only the WAL is ahead (all checkpoints wiped) — and
    // crucially, the refused open must not have mutated the directory by
    // writing an initial checkpoint a later recovery would adopt.
    for (_, path) in dbtoaster_durability::list_checkpoints(&dir).unwrap() {
        fs::remove_file(path).unwrap();
    }
    match builder().build().unwrap().serve_with(config(&dir)) {
        Err(e) => assert!(
            e.to_string().contains("open_or_create"),
            "unexpected error: {e}"
        ),
        Ok(_) => panic!("serving a WAL-ahead durable dir with a fresh engine must fail"),
    }
    assert!(
        dbtoaster_durability::list_checkpoints(&dir)
            .unwrap()
            .is_empty(),
        "a refused open must not leave a checkpoint behind"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn send_batch_reports_partial_progress_when_the_server_dies() {
    let server = builder().serve().unwrap();
    let ingest = server.handle();
    let stream = events();
    let total = stream.len();
    let feeder = std::thread::spawn(move || match ingest.send_batch(stream) {
        Ok(n) => Ok(n),
        Err(e) => Err((e.accepted, e.unsent.len())),
    });
    // Kill while the feeder is (very likely) still pushing; either way the
    // contract must hold.
    while server.stats().events < 512 {
        std::thread::yield_now();
    }
    server.kill();
    match feeder.join().expect("feeder") {
        Ok(n) => assert_eq!(n, total, "a fully accepted batch reports its length"),
        Err((accepted, unsent)) => {
            assert!(accepted < total);
            assert!(unsent > 0, "the rejected chunk must come back");
            assert_eq!(
                accepted % 128,
                0,
                "chunks are accepted or rejected atomically"
            );
        }
    }
}

#[test]
fn transient_wal_fault_degrades_then_rearms_and_stays_bit_exact() {
    // ISSUE 9 acceptance: a server that hits a transient WAL fault must
    // degrade (serving from memory, durability suspended), then — once the
    // fault clears — re-arm onto a fresh segment and resume durable writes,
    // with the post-crash recovered state bit-exact against the live one.
    use dbtoaster_durability::vfs::EIO;
    use dbtoaster_durability::{FaultConfig, FaultVfs, RetryPolicy};
    use std::sync::Arc;

    let dir: PathBuf = std::env::temp_dir().join(format!("dbt-rearm-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let stream = events();
    let fault = Arc::new(FaultVfs::new(FaultConfig {
        seed: 11,
        fail_prob_ppm: 0,
        enospc_prob_ppm: 0,
        short_write_prob_ppm: 0,
        cut_at_op: None,
    }));
    let faulty_config = || {
        let mut d = DurabilityConfig::new(&dir);
        d.checkpoint_every_events = CHECKPOINT_EVERY;
        d.fsync = FsyncPolicy::EveryBatch;
        d.vfs = Arc::new(fault.clone());
        // Tiny backoffs keep the test fast; the policy shape is what matters.
        d.retry = RetryPolicy {
            max_inline_retries: 2,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
        };
        ServerConfig {
            durability: Some(d),
            ..ServerConfig::default()
        }
    };

    let server = builder().open_or_create_with(faulty_config()).unwrap();
    let ingest = server.handle();

    // Healthy prefix: durable, not degraded.
    assert_eq!(ingest.send_batch(stream[..1000].to_vec()).unwrap(), 1000);
    server.flush().unwrap();
    assert!(!server.reader().snapshot().degraded());

    // The disk goes bad: every write fails EIO. Bounded inline retries
    // exhaust and the writer enters degraded mode — loudly, not fatally.
    fault.fail_writes_with(EIO);
    assert_eq!(
        ingest.send_batch(stream[1000..2000].to_vec()).unwrap(),
        1000,
        "send_batch must keep accepting (backpressure, never drop) while retrying"
    );
    server.flush().unwrap();
    assert!(
        server.reader().snapshot().degraded(),
        "a fault surviving the retry budget must surface as degraded"
    );
    assert!(
        server.last_error().is_none(),
        "a transient fault must degrade, not latch a fatal durability error"
    );

    // Degraded mode still serves: ingest and reads continue from memory.
    assert_eq!(
        ingest.send_batch(stream[2000..3000].to_vec()).unwrap(),
        1000
    );
    server.flush().unwrap();
    assert_eq!(server.stats().events, 3000);
    assert!(server.reader().snapshot().degraded());

    // The disk recovers. The next batches tick the re-arm path: checkpoint at
    // the current watermark first (capturing the degraded-period events),
    // then a fresh WAL segment right above it.
    fault.heal();
    let mut at = 3000usize;
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.reader().snapshot().degraded() {
        assert!(
            Instant::now() < deadline,
            "server never re-armed after heal()"
        );
        let end = (at + 50).min(stream.len());
        assert_eq!(
            ingest.send_batch(stream[at..end].to_vec()).unwrap(),
            end - at
        );
        server.flush().unwrap();
        at = end;
    }
    // Durable traffic resumes on the fresh segment.
    let end = at + 1000;
    assert_eq!(ingest.send_batch(stream[at..end].to_vec()).unwrap(), 1000);
    server.flush().unwrap();
    let applied = server.stats().events as usize;
    assert_eq!(applied, end);

    // Live state is bit-exact against a never-faulted reference...
    let mut reference = builder().build().unwrap();
    reference.init().unwrap();
    reference.process_all(&stream[..applied]).unwrap();
    assert_snapshot_matches_engine(&server.reader().snapshot(), &reference, "live after re-arm");

    // ...and everything applied is durable again: kill -9, recover through
    // the real filesystem, and require live == recovered, bit for bit.
    server.kill();
    let server = builder().open_or_create_with(config(&dir)).unwrap();
    assert_eq!(
        server.stats().events as usize,
        applied,
        "the re-armed log plus its checkpoint must cover every applied event"
    );
    assert_snapshot_matches_engine(
        &server.reader().snapshot(),
        &reference,
        "recovered after re-arm",
    );
    drop(server);
    let _ = fs::remove_dir_all(&dir);
}
