//! Codec round-trip property tests: random `Value` / `Tuple` / `UpdateEvent`
//! (and whole GMR maps) must survive encode → decode **bit-exactly** — down to
//! `f64` payload bits, `-0.0` and NaN — and every strict prefix of an encoding
//! must fail to decode with an error, never panic or succeed.

use dbtoaster_agca::{UpdateEvent, UpdateSign};
use dbtoaster_durability::codec::{put_event, put_map, put_value, put_values, Reader};
use dbtoaster_gmr::{Gmr, Schema, Tuple, Value};
use proptest::prelude::*;

/// Random scalar values, including hostile doubles (arbitrary bit patterns:
/// NaNs with payloads, infinities, subnormals) and empty/unicode strings.
fn arb_value() -> impl Strategy<Value = Value> {
    (0usize..10, i64::MIN..i64::MAX, "[a-z]{0,6}").prop_map(|(tag, bits, s)| match tag {
        0..=2 => Value::long(bits),
        3 => Value::long(bits % 100),
        4..=5 => Value::double(f64::from_bits(bits as u64)),
        6 => Value::double(bits as f64 / 7.0),
        7 => Value::double(-0.0),
        _ => Value::str(s),
    })
}

fn arb_values() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(arb_value(), 0..7)
}

fn arb_event() -> impl Strategy<Value = UpdateEvent> {
    ("[A-Z]{1,5}", any::<bool>(), arb_values()).prop_map(|(rel, del, tuple)| UpdateEvent {
        relation: rel,
        sign: if del {
            UpdateSign::Delete
        } else {
            UpdateSign::Insert
        },
        tuple,
    })
}

/// Bit-level equality: `PartialEq` on `Value` coerces Long/Double and
/// canonicalizes NaN, which is exactly what a *wire* round trip must not rely
/// on.
fn value_bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Long(x), Value::Long(y)) => x == y,
        (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_round_trips_bit_exactly(v in arb_value()) {
        let mut buf = Vec::new();
        put_value(&mut buf, &v);
        let mut r = Reader::new(&buf);
        let back = r.value().unwrap();
        prop_assert!(r.is_empty(), "decoder must consume the exact encoding");
        prop_assert!(value_bits_eq(&v, &back), "{v:?} came back as {back:?}");
    }

    #[test]
    fn tuple_round_trips(vals in arb_values()) {
        let mut buf = Vec::new();
        put_values(&mut buf, &vals);
        let t: Tuple = Reader::new(&buf).tuple().unwrap();
        prop_assert_eq!(t.len(), vals.len());
        for (a, b) in vals.iter().zip(t.as_slice()) {
            prop_assert!(value_bits_eq(a, b));
        }
    }

    #[test]
    fn event_round_trips(ev in arb_event()) {
        let mut buf = Vec::new();
        put_event(&mut buf, &ev);
        let mut r = Reader::new(&buf);
        let back = r.event().unwrap();
        prop_assert!(r.is_empty());
        prop_assert_eq!(&back.relation, &ev.relation);
        prop_assert_eq!(back.sign, ev.sign);
        prop_assert_eq!(back.tuple.len(), ev.tuple.len());
        for (a, b) in ev.tuple.iter().zip(back.tuple.iter()) {
            prop_assert!(value_bits_eq(a, b));
        }
    }

    #[test]
    fn every_strict_prefix_of_an_event_fails_to_decode(ev in arb_event()) {
        let mut buf = Vec::new();
        put_event(&mut buf, &ev);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            prop_assert!(
                r.event().is_err(),
                "truncation to {cut}/{} bytes decoded successfully",
                buf.len()
            );
        }
    }

    #[test]
    fn map_round_trips(rows in prop::collection::vec((arb_values(), -5i64..6), 0..12)) {
        // Fixed arity 2 (maps require a uniform key schema); nonzero mults only.
        let mut g = Gmr::new(Schema::new(["a", "b"]));
        for (vals, m) in &rows {
            if *m == 0 {
                continue;
            }
            let key: Tuple = vals.iter().take(2).cloned()
                .chain(std::iter::repeat_n(Value::long(0), 2usize.saturating_sub(vals.len())))
                .collect();
            g.add_tuple(key, *m as f64);
        }
        let mut buf = Vec::new();
        put_map(&mut buf, "M", &g);
        let mut r = Reader::new(&buf);
        let (name, back) = r.map().unwrap();
        prop_assert!(r.is_empty());
        prop_assert_eq!(name, "M");
        prop_assert_eq!(back.len(), g.len());
        for (t, m) in g.iter() {
            prop_assert_eq!(back.get(t).to_bits(), m.to_bits(), "key {:?}", t);
        }
    }
}
