//! Targeted fault-injection regressions against the [`FaultVfs`].
//!
//! The headline invariant (ISSUE 9 satellite): **ENOSPC in the middle of a
//! checkpoint write must leave the durability directory exactly as it found
//! it** — no stray `.tmp` file, the previous checkpoint still loadable, and
//! WAL pruning never keyed on the watermark the failed checkpoint would have
//! established. The random torture harness (`harness torture`) covers broad
//! schedules; these tests pin the specific contracts with scripted faults.

use dbtoaster_agca::UpdateEvent;
use dbtoaster_durability::vfs::{EIO, ENOSPC};
use dbtoaster_durability::{
    checkpoint, wal, FaultConfig, FaultVfs, FsyncPolicy, Vfs, WalReader, WalWriter,
};
use dbtoaster_gmr::{Gmr, Value};
use std::path::PathBuf;
use std::sync::Arc;

const FP: u64 = 0xFEED_FACE_CAFE_BEEF;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbt-faultinj-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A quiet injector: no probabilistic faults, no power cut — faults are
/// scripted explicitly via `fail_writes_with` / `heal`.
fn quiet_fault() -> (Arc<FaultVfs>, Arc<dyn Vfs>) {
    let fault = Arc::new(FaultVfs::new(FaultConfig {
        seed: 7,
        fail_prob_ppm: 0,
        enospc_prob_ppm: 0,
        short_write_prob_ppm: 0,
        cut_at_op: None,
    }));
    let vfs: Arc<dyn Vfs> = Arc::new(fault.clone());
    (fault, vfs)
}

fn events(n: usize, base: i64) -> Vec<UpdateEvent> {
    (0..n)
        .map(|i| UpdateEvent::insert("R", vec![Value::long(base + i as i64), Value::long(1)]))
        .collect()
}

fn tmp_files(dir: &PathBuf) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "tmp"))
        .collect()
}

#[test]
fn enospc_during_checkpoint_is_invisible() {
    let dir = temp_dir("enospc");
    let (fault, vfs) = quiet_fault();

    // A healthy baseline: one checkpoint at watermark 10 and a WAL carrying
    // events 11.. across several small segments (rotate early and often).
    let map = Gmr::scalar(42.0);
    checkpoint::write_checkpoint_with(vfs.as_ref(), &dir, FP, 10, [("TOTAL", &map)]).unwrap();
    let mut w =
        WalWriter::open_with(&dir, FP, 11, FsyncPolicy::EveryBatch, 64, vfs.clone()).unwrap();
    for chunk in events(40, 11).chunks(5) {
        w.append(chunk).unwrap();
        w.batch_boundary().unwrap();
    }
    drop(w);
    let segments_before = wal::list_segments(&dir).unwrap();
    assert!(
        segments_before.len() > 1,
        "test needs several segments to make pruning observable"
    );

    // Disk full mid-checkpoint: the write at watermark 50 must fail loudly...
    fault.fail_writes_with(ENOSPC);
    let big = Gmr::scalar(51.0);
    let err = checkpoint::write_checkpoint_with(vfs.as_ref(), &dir, FP, 50, [("TOTAL", &big)])
        .expect_err("checkpoint under ENOSPC must fail");
    assert!(err.is_transient(), "ENOSPC must classify transient: {err}");
    fault.heal();

    // ...and leave no trace: no stray .tmp,
    assert!(
        tmp_files(&dir).is_empty(),
        "a failed checkpoint left a stray .tmp behind"
    );

    // the previous checkpoint still the loadable latest,
    let (latest, skipped) = checkpoint::load_latest(&dir, FP).unwrap();
    let latest = latest.expect("previous checkpoint must survive the failure");
    assert_eq!(latest.watermark, 10);
    assert_eq!(latest.maps.len(), 1);
    assert_eq!(latest.maps[0].1.scalar_value().to_bits(), 42f64.to_bits());
    assert!(skipped.is_empty(), "no checkpoint should need skipping");

    // and retention still keyed on watermark 10 — never on the failed 50:
    // every WAL segment the surviving checkpoint needs is still there.
    let keyed = checkpoint::retain_and_prune_wal(&dir, 1, FP).unwrap();
    assert_eq!(keyed, 10, "pruning keyed on a checkpoint that never landed");
    let reader = WalReader::open(&dir, FP).unwrap();
    let mut replayed = 0u64;
    reader
        .replay(11, &mut |_seq, _ev| {
            replayed += 1;
            Ok(())
        })
        .unwrap();
    assert_eq!(replayed, 40, "WAL events above the watermark were pruned");

    // The directory stays fully usable once space returns.
    checkpoint::write_checkpoint_with(vfs.as_ref(), &dir, FP, 50, [("TOTAL", &big)]).unwrap();
    let (latest, _) = checkpoint::load_latest(&dir, FP).unwrap();
    assert_eq!(latest.unwrap().watermark, 50);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_append_truncates_and_resumes_cleanly() {
    let dir = temp_dir("append-retry");
    let (fault, vfs) = quiet_fault();

    let mut w =
        WalWriter::open_with(&dir, FP, 1, FsyncPolicy::EveryBatch, 1 << 20, vfs.clone()).unwrap();
    w.append(&events(5, 1)).unwrap();
    w.batch_boundary().unwrap();

    // EIO mid-append may leave a partial frame on disk; the retry contract is
    // truncate-to-boundary first, then append again once the fault clears.
    fault.fail_writes_with(EIO);
    let err = w
        .append(&events(5, 6))
        .expect_err("append under EIO must fail");
    assert!(err.is_transient(), "EIO must classify transient: {err}");
    fault.heal();
    w.truncate_to_boundary().unwrap();
    w.append(&events(5, 6)).unwrap();
    w.batch_boundary().unwrap();
    drop(w);

    // The log replays both records with no gap, duplicate, or torn garbage.
    let reader = WalReader::open(&dir, FP).unwrap();
    let (records, torn) = reader.records().unwrap();
    assert!(!torn, "truncate_to_boundary left a torn tail");
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].first_seq, 1);
    assert_eq!(records[1].first_seq, 6);
    assert_eq!(
        records.iter().map(|r| r.events.len()).sum::<usize>(),
        10,
        "replay must see exactly the ten appended events"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
