//! Crash-point recovery: simulated torn writes and disk corruption.
//!
//! The invariant under test is the one a deterministic-replay log lives or
//! dies by: **for any damage to the files, recovery either reconstructs a
//! prefix-consistent engine — bit-exact with an uninterrupted run over some
//! prefix of the event stream, at a whole-record boundary, no shorter than the
//! checkpoint watermark — or it fails loudly. It never silently diverges.**
//!
//! * `truncating_the_log_at_every_byte_offset_recovers_a_prefix` chops the
//!   final segment at *every* byte offset (torn-write simulation: a crash can
//!   leave any prefix of the last record) and requires a successful
//!   prefix-consistent recovery each time.
//! * `random_mid_log_corruption_never_silently_diverges` flips bytes at random
//!   offsets anywhere in the log (deterministic RNG) and accepts only the two
//!   legal outcomes above.

use dbtoaster_agca::{Expr, UpdateEvent};
use dbtoaster_compiler::{
    compile, Catalog, CompileOptions, QuerySpec, RelationMeta, TriggerProgram,
};
use dbtoaster_durability::{checkpoint, program_fingerprint, recover, wal, FsyncPolicy, WalWriter};
use dbtoaster_gmr::Value;
use dbtoaster_runtime::Engine;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fs;
use std::path::{Path, PathBuf};

const EVENTS: usize = 240;
const BATCH: usize = 3;
const CHECKPOINT_AT: usize = 120;

fn catalog() -> Catalog {
    [RelationMeta::stream("R", ["A", "V"])]
        .into_iter()
        .collect()
}

fn program() -> TriggerProgram {
    // Two aggregates so several maps must stay mutually consistent.
    let total = QuerySpec {
        name: "TOTAL".into(),
        out_vars: vec![],
        expr: Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([Expr::rel("R", ["a", "v"]), Expr::var("v")]),
        ),
    };
    let per_key = QuerySpec {
        name: "PER_KEY".into(),
        out_vars: vec!["a".into()],
        expr: Expr::agg_sum(
            ["a".to_string()],
            Expr::product_of([Expr::rel("R", ["a", "v"]), Expr::var("v")]),
        ),
    };
    compile(&[total, per_key], &catalog(), &CompileOptions::default()).unwrap()
}

/// Deterministic event stream with inserts and cancelling deletes.
fn events() -> Vec<UpdateEvent> {
    let mut rng = StdRng::seed_from_u64(0xC4A5);
    let mut out = Vec::with_capacity(EVENTS);
    let mut live: Vec<(i64, i64)> = Vec::new();
    for _ in 0..EVENTS {
        if !live.is_empty() && rng.random_bool(0.3) {
            let (a, v) = live.swap_remove(rng.random_range(0..live.len()));
            out.push(UpdateEvent::delete(
                "R",
                vec![Value::long(a), Value::long(v)],
            ));
        } else {
            let (a, v) = (rng.random_range(0..20i64), rng.random_range(1..50i64));
            live.push((a, v));
            out.push(UpdateEvent::insert(
                "R",
                vec![Value::long(a), Value::long(v)],
            ));
        }
    }
    out
}

/// Reference engine over the first `k` events.
fn reference(k: usize, stream: &[UpdateEvent]) -> Engine {
    let mut e = Engine::new(program(), &catalog());
    e.process_all(&stream[..k]).unwrap();
    e
}

/// Bit-exact comparison of every materialized map of two engines.
fn assert_engines_bit_equal(a: &Engine, b: &Engine, context: &str) {
    let (sa, sb) = (a.snapshot(), b.snapshot());
    assert_eq!(sa.len(), sb.len(), "{context}: map sets differ");
    for (name, ga) in sa.iter() {
        let gb = sb
            .get(name)
            .unwrap_or_else(|| panic!("{context}: {name} missing"));
        assert_eq!(ga.len(), gb.len(), "{context}: {name} sizes differ");
        for (t, m) in ga.iter() {
            assert_eq!(
                gb.get(t).to_bits(),
                m.to_bits(),
                "{context}: {name}[{t:?}] differs"
            );
        }
    }
}

/// Populate `dir`: WAL of all events in batches of [`BATCH`], small segments
/// (so the log spans several files), one checkpoint at [`CHECKPOINT_AT`].
fn build_log(dir: &Path) {
    let prog = program();
    let fp = program_fingerprint(&prog);
    let stream = events();
    let mut engine = Engine::new(prog, &catalog());
    let mut w = WalWriter::open(dir, fp, 1, FsyncPolicy::Never, 2048).unwrap();
    for (i, chunk) in stream.chunks(BATCH).enumerate() {
        w.append(chunk).unwrap();
        engine.process_all(chunk).unwrap();
        if (i + 1) * BATCH == CHECKPOINT_AT {
            let snap = engine.snapshot();
            checkpoint::write_checkpoint(
                dir,
                fp,
                CHECKPOINT_AT as u64,
                snap.iter().map(|(n, g)| (n.as_str(), g)),
            )
            .unwrap();
        }
    }
    drop(w);
    assert!(
        wal::list_segments(dir).unwrap().len() >= 3,
        "test wants a multi-segment log"
    );
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbt-torn-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// The only two legal outcomes of recovering a damaged directory.
enum Outcome {
    /// Loud failure.
    Failed,
    /// Prefix-consistent success: `k` events, bit-exact with the reference.
    Prefix(usize),
}

fn check_recovery(dir: &Path, stream: &[UpdateEvent]) -> Outcome {
    match recover(dir, program(), &catalog()) {
        Err(_) => Outcome::Failed,
        Ok(None) => Outcome::Prefix(0),
        Ok(Some(rec)) => {
            let k = rec.engine.stats().events as usize;
            assert!(k <= stream.len(), "recovered more events than were written");
            assert!(
                k >= rec.checkpoint_watermark as usize,
                "recovery went below its own checkpoint"
            );
            assert_eq!(
                rec.engine.stats().recovery_replayed_events,
                k as u64 - rec.checkpoint_watermark,
                "replay count must cover exactly watermark..k"
            );
            let reference = reference(k, stream);
            assert_engines_bit_equal(&rec.engine, &reference, &format!("prefix {k}"));
            Outcome::Prefix(k)
        }
    }
}

#[test]
fn truncating_the_log_at_every_byte_offset_recovers_a_prefix() {
    let base = tmp_dir("trunc-base");
    build_log(&base);
    let stream = events();

    // Sanity: the undamaged directory recovers the full stream.
    match check_recovery(&base, &stream) {
        Outcome::Prefix(k) => assert_eq!(k, EVENTS),
        Outcome::Failed => panic!("undamaged log failed to recover"),
    }

    let (last_start, last_seg) = wal::list_segments(&base).unwrap().pop().unwrap();
    let last_len = fs::metadata(&last_seg).unwrap().len();
    let scratch = tmp_dir("trunc-scratch");
    let mut recovered_counts = Vec::new();
    for cut in 0..=last_len {
        copy_dir(&base, &scratch);
        let seg = scratch.join(last_seg.file_name().unwrap());
        fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(cut)
            .unwrap();
        match check_recovery(&scratch, &stream) {
            Outcome::Prefix(k) => {
                // Truncation is exactly what a crash produces: recovery must
                // *succeed*, keeping at least everything before the final
                // segment and never inventing events past the cut.
                assert!(
                    k + 1 >= last_start as usize,
                    "cut {cut}: lost records before the damaged segment (k={k})"
                );
                recovered_counts.push(k);
            }
            Outcome::Failed => panic!("cut {cut}: pure truncation must recover, not fail"),
        }
    }
    // Longer surviving prefixes of the file never recover fewer events.
    for w in recovered_counts.windows(2) {
        assert!(w[1] >= w[0], "recovered prefix shrank as the cut grew");
    }
    assert_eq!(recovered_counts[recovered_counts.len() - 1], EVENTS);
    let _ = fs::remove_dir_all(&base);
    let _ = fs::remove_dir_all(&scratch);
}

#[test]
fn random_mid_log_corruption_never_silently_diverges() {
    let base = tmp_dir("flip-base");
    build_log(&base);
    let stream = events();
    let segments = wal::list_segments(&base).unwrap();
    let scratch = tmp_dir("flip-scratch");
    let mut rng = StdRng::seed_from_u64(0xF1195);
    let mut failed = 0usize;
    for case in 0..60 {
        copy_dir(&base, &scratch);
        let (_, seg) = &segments[rng.random_range(0..segments.len())];
        let seg = scratch.join(seg.file_name().unwrap());
        let mut bytes = fs::read(&seg).unwrap();
        let off = rng.random_range(0..bytes.len());
        let bit: u32 = rng.random_range(0..8u32);
        bytes[off] ^= 1u8 << bit;
        fs::write(&seg, &bytes).unwrap();
        // Either outcome is legal; silent divergence (which
        // `check_recovery` asserts away) is not.
        if let Outcome::Failed = check_recovery(&scratch, &stream) {
            failed += 1;
        }
        let _ = case;
    }
    assert!(
        failed > 0,
        "corrupting 60 random bytes never produced a detected failure — CRC dead?"
    );
    let _ = fs::remove_dir_all(&base);
    let _ = fs::remove_dir_all(&scratch);
}
