//! Materialized-view checkpoints.
//!
//! A checkpoint is one self-contained file holding every materialized map of
//! the engine (views, stored base relations and static tables) plus the
//! `events_applied` watermark and the program fingerprint:
//!
//! ```text
//! magic "DBTCKP" | version u8 | reserved u8 | fingerprint u64 | watermark u64
//! map_count u32 | map_count × (name, schema, entries)       — see codec::put_map
//! crc32 u32                                                 — over all preceding bytes
//! ```
//!
//! ## Atomic-rename protocol
//!
//! The file is written as `ckpt-<watermark>.tmp`, fsynced, and then renamed to
//! `ckpt-<watermark>.ckpt` (rename within a directory is atomic on POSIX).
//! A reader therefore never observes a half-written `.ckpt` file: either the
//! rename happened and the file is complete (its trailing CRC proves it), or
//! the crash left only a `.tmp`, which is ignored and deleted on the next
//! open. After the rename the directory itself is fsynced so the new name is
//! durable before any WAL segment below the watermark is pruned.
//!
//! Checkpoints are *redundant* state — everything in them can be rebuilt from
//! an older checkpoint plus the WAL — so [`load_latest`] falls back to older
//! files when the newest fails its CRC, and retention
//! ([`retain_and_prune_wal`]) only prunes WAL segments below the **oldest
//! retained** checkpoint's watermark, keeping every fallback path replayable.

use crate::codec::{self, crc32, Reader, FORMAT_VERSION};
use crate::vfs::{StdVfs, Vfs};
use crate::{io_err, DurabilityError};
use dbtoaster_gmr::Gmr;
use std::path::{Path, PathBuf};

/// Magic prefix of every checkpoint file.
pub const CKPT_MAGIC: &[u8; 6] = b"DBTCKP";

fn ckpt_name(watermark: u64) -> String {
    format!("ckpt-{watermark:020}.ckpt")
}

/// List checkpoint files in `dir`, sorted by watermark descending (newest
/// first). Read-only: stray `.tmp` files are skipped, not touched — cleanup
/// is [`clean_tmp_files`], which must only run under the WAL writer lock
/// (deleting another live process's in-flight `.tmp` would fail its rename).
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    list_checkpoints_with(&StdVfs, dir)
}

/// [`list_checkpoints`] through an explicit [`Vfs`].
pub fn list_checkpoints_with(
    vfs: &dyn Vfs,
    dir: &Path,
) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut out = Vec::new();
    if !vfs.exists(dir) {
        return Ok(out);
    }
    for path in vfs.list_dir(dir).map_err(|e| io_err("reading", dir, e))? {
        let Some(name) = path.file_name() else {
            continue;
        };
        let name = name.to_string_lossy();
        if let Some(mark) = name
            .strip_prefix("ckpt-")
            .and_then(|s| s.strip_suffix(".ckpt"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((mark, path));
        }
    }
    out.sort_unstable_by_key(|(w, _)| std::cmp::Reverse(*w));
    Ok(out)
}

/// Delete stray `ckpt-*.tmp` files left by an interrupted checkpoint write.
/// Call only while holding the directory's writer lock (a live checkpointer's
/// in-flight `.tmp` must not be pulled out from under its rename). Returns
/// the number removed.
pub fn clean_tmp_files(dir: &Path) -> Result<usize, DurabilityError> {
    clean_tmp_files_with(&StdVfs, dir)
}

/// [`clean_tmp_files`] through an explicit [`Vfs`].
pub fn clean_tmp_files_with(vfs: &dyn Vfs, dir: &Path) -> Result<usize, DurabilityError> {
    let mut removed = 0;
    if !vfs.exists(dir) {
        return Ok(removed);
    }
    for path in vfs.list_dir(dir).map_err(|e| io_err("reading", dir, e))? {
        let Some(name) = path.file_name() else {
            continue;
        };
        let name = name.to_string_lossy();
        if name.starts_with("ckpt-") && name.ends_with(".tmp") {
            vfs.remove_file(&path)
                .map_err(|e| io_err("removing", &path, e))?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// A decoded checkpoint: the engine state at `watermark` events applied.
#[derive(Debug)]
pub struct Checkpoint {
    /// `events_applied` at the moment the snapshot was taken.
    pub watermark: u64,
    /// Every materialized map, by name.
    pub maps: Vec<(String, Gmr)>,
}

/// Serialize a snapshot to `dir` under the atomic-rename protocol and return
/// the final path. `maps` is the engine's [`snapshot`](dbtoaster_runtime::Engine::snapshot)
/// output — shared copy-on-write GMRs, so the caller's hot path pays nothing
/// while this runs.
pub fn write_checkpoint<'a>(
    dir: &Path,
    fingerprint: u64,
    watermark: u64,
    maps: impl IntoIterator<Item = (&'a str, &'a Gmr)>,
) -> Result<PathBuf, DurabilityError> {
    write_checkpoint_with(&StdVfs, dir, fingerprint, watermark, maps)
}

/// [`write_checkpoint`] through an explicit [`Vfs`].
pub fn write_checkpoint_with<'a>(
    vfs: &dyn Vfs,
    dir: &Path,
    fingerprint: u64,
    watermark: u64,
    maps: impl IntoIterator<Item = (&'a str, &'a Gmr)>,
) -> Result<PathBuf, DurabilityError> {
    vfs.create_dir_all(dir)
        .map_err(|e| io_err("creating", dir, e))?;
    let mut body = Vec::with_capacity(4096);
    body.extend_from_slice(CKPT_MAGIC);
    body.push(FORMAT_VERSION);
    body.push(0);
    codec::put_u64(&mut body, fingerprint);
    codec::put_u64(&mut body, watermark);
    // Deterministic map order keeps identical states byte-identical on disk.
    let mut maps: Vec<(&str, &Gmr)> = maps.into_iter().collect();
    maps.sort_unstable_by(|a, b| a.0.cmp(b.0));
    codec::put_u32(&mut body, maps.len() as u32);
    for (name, gmr) in maps {
        codec::put_map(&mut body, name, gmr);
    }
    let crc = crc32(&body);
    codec::put_u32(&mut body, crc);

    let tmp = dir.join(format!("ckpt-{watermark:020}.tmp"));
    let path = dir.join(ckpt_name(watermark));
    let write = || -> Result<(), DurabilityError> {
        let mut f = vfs.create(&tmp).map_err(|e| io_err("creating", &tmp, e))?;
        f.write_all(&body).map_err(|e| io_err("writing", &tmp, e))?;
        f.sync_all().map_err(|e| io_err("syncing", &tmp, e))?;
        drop(f);
        vfs.rename(&tmp, &path)
            .map_err(|e| io_err("renaming", &tmp, e))?;
        Ok(())
    };
    if let Err(e) = write() {
        // A failed write (ENOSPC, EIO, …) must not leave a stray `.tmp`
        // behind: the previous checkpoint stays the loadable one, and nothing
        // here advances WAL pruning. Cleanup is best-effort — if even the
        // remove fails, the next locked open's `clean_tmp_files` gets it.
        let _ = vfs.remove_file(&tmp);
        return Err(e);
    }
    // Make the rename durable before callers prune the WAL beneath it. This
    // must propagate: a swallowed failure here followed by pruning could
    // leave a directory whose only checkpoint never reached disk.
    vfs.sync_dir(dir)
        .map_err(|e| io_err("syncing directory", dir, e))?;
    Ok(path)
}

/// Shared envelope validation: read the file, check length, whole-file CRC,
/// magic, version and fingerprint, and return `(watermark, file bytes)`. The
/// map payload starts at byte 24 and ends 4 bytes before the end (the CRC
/// trailer). Both [`load_checkpoint`] and [`verify_checkpoint`] go through
/// here so the two can never disagree about what counts as valid.
fn read_envelope(
    vfs: &dyn Vfs,
    path: &Path,
    fingerprint: u64,
) -> Result<(u64, Vec<u8>), DurabilityError> {
    let bytes = vfs.read(path).map_err(|e| io_err("reading", path, e))?;
    let file = path.display().to_string();
    let corrupt = |offset: u64, detail: String| DurabilityError::Corrupt {
        file: file.clone(),
        offset,
        detail,
    };
    if bytes.len() < 28 {
        return Err(corrupt(
            0,
            format!("checkpoint truncated ({} bytes)", bytes.len()),
        ));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(trailer.try_into().unwrap());
    if crc32(body) != stored_crc {
        return Err(corrupt(
            bytes.len() as u64 - 4,
            "checkpoint CRC mismatch".into(),
        ));
    }
    if &body[..6] != CKPT_MAGIC {
        return Err(corrupt(0, "bad magic".into()));
    }
    if body[6] != FORMAT_VERSION {
        return Err(DurabilityError::VersionMismatch {
            file,
            found: body[6],
        });
    }
    let found = u64::from_le_bytes(body[8..16].try_into().unwrap());
    if found != fingerprint {
        return Err(DurabilityError::FingerprintMismatch {
            file,
            expected: fingerprint,
            found,
        });
    }
    let watermark = u64::from_le_bytes(body[16..24].try_into().unwrap());
    Ok((watermark, bytes))
}

/// Load and verify one checkpoint file.
pub fn load_checkpoint(path: &Path, fingerprint: u64) -> Result<Checkpoint, DurabilityError> {
    load_checkpoint_with(&StdVfs, path, fingerprint)
}

/// [`load_checkpoint`] through an explicit [`Vfs`].
pub fn load_checkpoint_with(
    vfs: &dyn Vfs,
    path: &Path,
    fingerprint: u64,
) -> Result<Checkpoint, DurabilityError> {
    let (watermark, bytes) = read_envelope(vfs, path, fingerprint)?;
    let body = &bytes[..bytes.len() - 4];
    let mut r = Reader::new(&body[24..]);
    let count = r.u32().map_err(DurabilityError::Codec)? as usize;
    let mut maps = Vec::with_capacity(count.min(r.remaining()));
    for _ in 0..count {
        maps.push(r.map().map_err(DurabilityError::Codec)?);
    }
    if !r.is_empty() {
        return Err(DurabilityError::Corrupt {
            file: path.display().to_string(),
            offset: (body.len() - r.remaining()) as u64,
            detail: format!("{} trailing bytes after last map", r.remaining()),
        });
    }
    Ok(Checkpoint { watermark, maps })
}

/// Load the newest checkpoint that passes verification, falling back to older
/// ones on CRC / truncation damage. Returns the checkpoint together with the
/// damaged files that were skipped. A *fingerprint* mismatch is **not** a
/// fallback case — it means the compiled program changed, and quietly
/// restoring an older incompatible state would diverge; it surfaces as a hard
/// error instead.
pub fn load_latest(
    dir: &Path,
    fingerprint: u64,
) -> Result<(Option<Checkpoint>, Vec<String>), DurabilityError> {
    load_latest_with(&StdVfs, dir, fingerprint)
}

/// [`load_latest`] through an explicit [`Vfs`].
pub fn load_latest_with(
    vfs: &dyn Vfs,
    dir: &Path,
    fingerprint: u64,
) -> Result<(Option<Checkpoint>, Vec<String>), DurabilityError> {
    let mut skipped = Vec::new();
    for (_, path) in list_checkpoints_with(vfs, dir)? {
        match load_checkpoint_with(vfs, &path, fingerprint) {
            Ok(c) => return Ok((Some(c), skipped)),
            Err(e @ DurabilityError::FingerprintMismatch { .. }) => return Err(e),
            Err(e @ DurabilityError::VersionMismatch { .. }) => return Err(e),
            Err(e) => skipped.push(format!("{}: {e}", path.display())),
        }
    }
    Ok((None, skipped))
}

/// Cheap integrity check of a checkpoint file — the shared envelope
/// validation (whole-file CRC, magic, version, fingerprint) *without*
/// decoding the maps. Returns the watermark.
pub fn verify_checkpoint(path: &Path, fingerprint: u64) -> Result<u64, DurabilityError> {
    verify_checkpoint_with(&StdVfs, path, fingerprint)
}

/// [`verify_checkpoint`] through an explicit [`Vfs`].
pub fn verify_checkpoint_with(
    vfs: &dyn Vfs,
    path: &Path,
    fingerprint: u64,
) -> Result<u64, DurabilityError> {
    read_envelope(vfs, path, fingerprint).map(|(watermark, _)| watermark)
}

/// Retention: keep the newest `keep` checkpoints that **verify** (whole-file
/// CRC + fingerprint), delete everything else — surplus old files and damaged
/// ones alike — and prune WAL segments wholly below the oldest retained
/// watermark. Verification comes first and nothing at all is deleted when no
/// checkpoint verifies: a damaged retention window must never cost the last
/// good fallback, and a bit-rotted file must never license pruning the WAL
/// its fallbacks would need. Returns the watermark pruning was keyed on
/// (0 = nothing verified, nothing deleted or pruned).
pub fn retain_and_prune_wal(
    dir: &Path,
    keep: usize,
    fingerprint: u64,
) -> Result<u64, DurabilityError> {
    retain_and_prune_wal_with(&StdVfs, dir, keep, fingerprint)
}

/// [`retain_and_prune_wal`] through an explicit [`Vfs`].
pub fn retain_and_prune_wal_with(
    vfs: &dyn Vfs,
    dir: &Path,
    keep: usize,
    fingerprint: u64,
) -> Result<u64, DurabilityError> {
    let keep = keep.max(1);
    let checkpoints = list_checkpoints_with(vfs, dir)?; // newest first
    let mut retained = 0usize;
    let mut oldest_verified = 0u64;
    let mut expendable: Vec<&PathBuf> = Vec::new();
    for (w, path) in &checkpoints {
        if retained == keep {
            expendable.push(path); // older than the verified window
            continue;
        }
        match verify_checkpoint_with(vfs, path, fingerprint) {
            Ok(_) => {
                retained += 1;
                oldest_verified = *w;
            }
            Err(e @ DurabilityError::FingerprintMismatch { .. }) => return Err(e),
            Err(e @ DurabilityError::VersionMismatch { .. }) => return Err(e),
            Err(_) => expendable.push(path), // damaged
        }
    }
    if retained == 0 {
        return Ok(0); // nothing trustworthy: touch nothing
    }
    for path in expendable {
        vfs.remove_file(path)
            .map_err(|e| io_err("removing", path, e))?;
    }
    crate::wal::prune_segments_with(vfs, dir, oldest_verified)?;
    Ok(oldest_verified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_gmr::{Schema, Value};
    use std::fs;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dbt-ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_map() -> Gmr {
        let mut g = Gmr::new(Schema::new(["k"]));
        g.add_tuple(vec![Value::long(1)], 10.0);
        g.add_tuple(vec![Value::str("x")], -2.5);
        g
    }

    #[test]
    fn write_load_round_trip() {
        let dir = tmp_dir("round");
        let g = sample_map();
        write_checkpoint(&dir, 11, 100, [("M", &g)]).unwrap();
        let (ckpt, skipped) = load_latest(&dir, 11).unwrap();
        let ckpt = ckpt.expect("checkpoint present");
        assert!(skipped.is_empty());
        assert_eq!(ckpt.watermark, 100);
        assert_eq!(ckpt.maps.len(), 1);
        assert_eq!(ckpt.maps[0].0, "M");
        assert_eq!(ckpt.maps[0].1.get(&[Value::long(1)]), 10.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = tmp_dir("fallback");
        let g = sample_map();
        write_checkpoint(&dir, 1, 50, [("M", &g)]).unwrap();
        let newest = write_checkpoint(&dir, 1, 80, [("M", &g)]).unwrap();
        // Flip a byte in the newest checkpoint's body.
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        fs::write(&newest, &bytes).unwrap();
        let (ckpt, skipped) = load_latest(&dir, 1).unwrap();
        assert_eq!(ckpt.expect("older checkpoint").watermark, 50);
        assert_eq!(skipped.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_hard() {
        let dir = tmp_dir("fp");
        let g = sample_map();
        write_checkpoint(&dir, 1, 50, [("M", &g)]).unwrap();
        match load_latest(&dir, 2) {
            Err(DurabilityError::FingerprintMismatch { .. }) => {}
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_files_are_ignored_by_listing_and_removed_by_cleanup() {
        let dir = tmp_dir("tmp");
        fs::write(dir.join("ckpt-00000000000000000009.tmp"), b"half").unwrap();
        // Listing (and thus recovery) is read-only: the half-written file is
        // skipped but left alone.
        let (ckpt, _) = load_latest(&dir, 1).unwrap();
        assert!(ckpt.is_none());
        assert!(dir.join("ckpt-00000000000000000009.tmp").exists());
        // Explicit cleanup (run under the writer lock) removes it.
        assert_eq!(clean_tmp_files(&dir).unwrap(), 1);
        assert!(!dir.join("ckpt-00000000000000000009.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_keeps_newest_k() {
        let dir = tmp_dir("retain");
        let g = sample_map();
        for w in [10, 20, 30] {
            write_checkpoint(&dir, 1, w, [("M", &g)]).unwrap();
        }
        let oldest = retain_and_prune_wal(&dir, 2, 1).unwrap();
        assert_eq!(oldest, 20);
        let left = list_checkpoints(&dir).unwrap();
        assert_eq!(
            left.iter().map(|(w, _)| *w).collect::<Vec<_>>(),
            vec![30, 20]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pruning_never_trusts_an_unverified_checkpoint() {
        let dir = tmp_dir("retain-corrupt");
        let g = sample_map();
        let older = write_checkpoint(&dir, 1, 10, [("M", &g)]).unwrap();
        write_checkpoint(&dir, 1, 20, [("M", &g)]).unwrap();
        // Bit-rot the older retained checkpoint: pruning must key off the
        // newer (verified) one and delete the damaged file.
        let mut bytes = fs::read(&older).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&older, &bytes).unwrap();
        let keyed = retain_and_prune_wal(&dir, 2, 1).unwrap();
        assert_eq!(keyed, 20);
        assert!(!older.exists(), "damaged retained checkpoint is removed");
        // With every checkpoint damaged, nothing is deleted or pruned at all.
        let dir2 = tmp_dir("retain-allbad");
        let only = write_checkpoint(&dir2, 1, 5, [("M", &g)]).unwrap();
        let mut bytes = fs::read(&only).unwrap();
        bytes[10] ^= 0xFF;
        fs::write(&only, &bytes).unwrap();
        assert_eq!(retain_and_prune_wal(&dir2, 1, 1).unwrap(), 0);
        assert!(only.exists(), "with nothing trustworthy, delete nothing");
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }

    #[test]
    fn retention_survives_a_damaged_window_by_keeping_the_older_good_one() {
        // [30 damaged, 20 damaged, 10 good], keep=2: the good w=10 file is the
        // only usable fallback and must be retained (not dropped as surplus),
        // with pruning keyed on it.
        let dir = tmp_dir("retain-window");
        let g = sample_map();
        let good = write_checkpoint(&dir, 1, 10, [("M", &g)]).unwrap();
        for w in [20, 30] {
            let p = write_checkpoint(&dir, 1, w, [("M", &g)]).unwrap();
            let mut bytes = fs::read(&p).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x10;
            fs::write(&p, &bytes).unwrap();
        }
        assert_eq!(retain_and_prune_wal(&dir, 2, 1).unwrap(), 10);
        assert!(good.exists(), "the only good checkpoint must survive");
        assert_eq!(list_checkpoints(&dir).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
