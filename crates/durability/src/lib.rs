//! # DBToaster durability
//!
//! The paper's views are "frequently fresh" — but, until this crate, only as
//! fresh as the process was long-lived: a restart of the serving engine lost
//! every materialized map and forced a full recomputation. This crate makes
//! the engine's state durable with the classic event-sourcing pair:
//!
//! * a **write-ahead log** ([`wal`]) of every applied update event, and
//! * periodic **materialized-view checkpoints** ([`checkpoint`]) of the whole
//!   engine snapshot,
//!
//! joined by **recovery** ([`recover()`](recover())): load the newest usable checkpoint,
//! replay the WAL above its watermark through the normal trigger path, and the
//! result is *bit-for-bit* the engine a never-crashed process would hold.
//! This exactness is not luck — higher-order delta processing is a
//! deterministic function of the ordered event stream, and the codec
//! ([`codec`]) round-trips `f64` multiplicities as raw bit patterns.
//!
//! Everything is hand-rolled on `std` only (files, bytes, CRC32): the durable
//! format must not depend on an external serialization crate, matching the
//! workspace's offline-shim philosophy.
//!
//! ## On-disk layout
//!
//! One durability directory holds both artifact kinds, side by side:
//!
//! ```text
//! <dir>/wal-00000000000000000001.seg    segments, named by first event seq
//! <dir>/wal-00000000000000180225.seg
//! <dir>/ckpt-00000000000000200000.ckpt  checkpoints, named by watermark
//! <dir>/ckpt-00000000000000400000.ckpt
//! ```
//!
//! Both formats carry an explicit version byte ([`codec::FORMAT_VERSION`]) and
//! CRC32 checksums — per record in the WAL, per file in checkpoints — so
//! corruption is *detected*, never silently decoded. The exact byte layouts
//! are documented in [`wal`] and [`checkpoint`].
//!
//! ## Fsync policy trade-offs
//!
//! [`FsyncPolicy`] picks the point on the durability/throughput curve:
//!
//! * [`Always`](FsyncPolicy::Always) — fsync after every appended record.
//!   Survives OS/machine crashes with zero lost acknowledged batches; costs a
//!   disk flush per micro-batch (typically the dominant cost at small
//!   batches).
//! * [`EveryBatch`](FsyncPolicy::EveryBatch) (default) — buffered appends,
//!   one fsync at each micro-batch boundary, *before* the batch is applied to
//!   the views. Identical guarantees to `Always` at the batch granularity the
//!   serving layer already works in; the flush amortizes over the batch.
//! * [`Never`](FsyncPolicy::Never) — leave flushing to the OS page cache.
//!   Survives *process* crashes (the write syscall completed), but a machine
//!   crash can lose the unflushed suffix; recovery then falls back to the
//!   newest checkpoint plus whatever log suffix survived, and the WAL writer
//!   restarts a fresh segment above the checkpoint watermark if the log ended
//!   below it. Fastest, and a reasonable choice when the stream itself is
//!   re-playable from an upstream source.
//!
//! In every policy the WAL append happens **before** the events are applied —
//! write-ahead in the literal sense — so no published snapshot can ever
//! reflect an event the log does not contain.
//!
//! ## Atomic-rename checkpoint protocol
//!
//! Checkpoints are written to `ckpt-<watermark>.tmp`, fsynced, renamed to
//! `ckpt-<watermark>.ckpt` (atomic within a directory on POSIX), and the
//! directory is fsynced before any WAL pruning relies on the new file. A
//! half-written checkpoint is therefore impossible to mistake for a real one:
//! it is a `.tmp` that open-time cleanup deletes. Damaged checkpoints fall
//! back to older retained ones; WAL segments are pruned only below the
//! *oldest retained* watermark so every fallback is still replayable. See
//! [`checkpoint`] for details.
//!
//! ## Torn tails
//!
//! A crash mid-append leaves a truncated final WAL record. The reader drops
//! it (those events were never applied to any recoverable state) and the
//! writer truncates it before resuming. Anything else — corruption with valid
//! data after it, damage in an old segment, a sequence gap — is a **hard
//! error**: deterministic replay must fail loudly rather than diverge
//! silently. The torn/corrupt distinction is tested by truncating a log at
//! every byte offset of the tail record (see `tests/torn_writes.rs`).

pub mod checkpoint;
pub mod codec;
pub mod recover;
pub mod vfs;
pub mod wal;

pub use checkpoint::{list_checkpoints, load_latest, write_checkpoint, Checkpoint};
pub use codec::{CodecError, FORMAT_VERSION};
pub use recover::{has_state, recover, recover_with_vfs, Recovery};
pub use vfs::{std_vfs, FaultConfig, FaultVfs, StdVfs, Vfs, VfsFile};
pub use wal::{
    acquire_dir_lock, list_segments, prune_segments, ReplayStats, WalReader, WalRecord, WalWriter,
};

use dbtoaster_compiler::TriggerProgram;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// When the WAL forces appended records to stable storage. See the crate docs
/// for the full trade-off discussion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every appended record.
    Always,
    /// fsync once per micro-batch boundary, before the batch is applied.
    #[default]
    EveryBatch,
    /// Never fsync; rely on the OS page cache (process-crash safe only).
    Never,
}

/// How the serving layer retries transient durability failures before giving
/// up on the current segment and entering degraded mode (see the server
/// crate's writer loop: degraded mode is *exited* through a re-arm that
/// checkpoints current state and rotates to a fresh segment).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// In-place retries of a failed WAL append before declaring the segment
    /// degraded. Each retry first truncates back to the last record boundary
    /// (a failed write may have left a partial frame).
    pub max_inline_retries: u32,
    /// Backoff before the first retry; doubles per attempt. Re-arm attempts
    /// from degraded mode continue doubling from where the inline retries
    /// left off.
    pub initial_backoff: Duration,
    /// Ceiling on the exponential backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// 4 inline retries, 5 ms initial backoff, 2 s ceiling.
    fn default() -> Self {
        RetryPolicy {
            max_inline_retries: 4,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_secs(2),
        }
    }
}

/// Configuration of the durable serving pipeline (consumed by
/// `dbtoaster-server` through `ServerConfig::durability`).
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding WAL segments and checkpoints.
    pub dir: PathBuf,
    /// Fsync policy for WAL appends.
    pub fsync: FsyncPolicy,
    /// Rotate WAL segments once they reach this many bytes.
    pub segment_bytes: u64,
    /// Take a checkpoint after this many applied events (measured since the
    /// previous checkpoint). Checkpoint serialization runs off the hot path.
    pub checkpoint_every_events: u64,
    /// Retain this many checkpoint files (min 1); WAL segments below the
    /// oldest retained watermark are pruned.
    pub keep_checkpoints: usize,
    /// Filesystem every durable byte flows through. [`StdVfs`] (the default)
    /// in production; a [`FaultVfs`] under fault-injection tests.
    pub vfs: Arc<dyn Vfs>,
    /// Retry/backoff policy for transient durability failures.
    pub retry: RetryPolicy,
    /// Group-commit window for [`FsyncPolicy::Always`]: appends landing within
    /// this duration of the first unsynced append share one fsync instead of
    /// paying one each (the classic group-commit trade: up to one window of
    /// acknowledged-but-unsynced events on an OS crash, in exchange for
    /// amortizing the dominant cost of `Always`). `Duration::ZERO` (the
    /// default) disables coalescing — every append syncs inline, the historic
    /// behavior. Explicit syncs (barriers, clean shutdown, segment rotation)
    /// always close the window immediately, so `flush()` retains the full
    /// durability guarantee. Ignored under the other policies.
    pub group_commit_window: Duration,
}

impl DurabilityConfig {
    /// Defaults: fsync per batch, 16 MiB segments, checkpoint every 200k
    /// events, keep 2 checkpoints, the real filesystem, default retries.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::default(),
            segment_bytes: 16 << 20,
            checkpoint_every_events: 200_000,
            keep_checkpoints: 2,
            vfs: std_vfs(),
            retry: RetryPolicy::default(),
            group_commit_window: Duration::ZERO,
        }
    }
}

/// Errors raised by the durability layer.
#[derive(Clone, Debug, PartialEq)]
pub enum DurabilityError {
    /// An I/O operation failed (message carries path and OS error).
    /// `retryable` classifies it transient (EIO, ENOSPC, EINTR, EAGAIN,
    /// timeouts — conditions that can clear) vs permanent (EROFS, permission
    /// errors, missing files): the serving layer retries and re-arms only
    /// transient failures.
    Io {
        /// Operation, path and OS error.
        message: String,
        /// Worth retrying / re-arming?
        retryable: bool,
    },
    /// A field failed to decode.
    Codec(CodecError),
    /// On-disk bytes are damaged in a way recovery must not tolerate.
    Corrupt {
        /// Offending file.
        file: String,
        /// Byte offset of the damage.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// The file was written by a different format version.
    VersionMismatch {
        /// Offending file.
        file: String,
        /// Version byte found.
        found: u8,
    },
    /// The durable state belongs to a different compiled program.
    FingerprintMismatch {
        /// Offending file.
        file: String,
        /// Fingerprint of the current program.
        expected: u64,
        /// Fingerprint stored in the file.
        found: u64,
    },
    /// The log is missing events between a checkpoint watermark (or an earlier
    /// record) and the next surviving record.
    SequenceGap {
        /// First sequence number that should have been present.
        expected: u64,
        /// Sequence number actually found.
        found: u64,
        /// File where the gap was detected.
        file: String,
    },
    /// Replaying a logged event through the engine failed.
    Replay(String),
    /// Recovery succeeded but was degraded: damaged checkpoint files were
    /// skipped in favour of older ones, or replayed events failed their
    /// triggers (mirroring the live writer's skip-and-continue policy). The
    /// recovered state is the best reconstruction available; this surfaces
    /// the fact so operators notice.
    RecoveryDegraded(String),
    /// API misuse detected before touching disk (e.g. a missing
    /// `DurabilityConfig` where one is required). Not retryable.
    Config(String),
    /// Another live writer holds the WAL's advisory lock. Two writers on one
    /// directory would truncate and interleave each other's records; the
    /// second opener is refused instead. The lock dies with its process, so
    /// a crashed holder never blocks recovery.
    Locked {
        /// The lock file.
        file: String,
    },
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { message, .. } => write!(f, "i/o error {message}"),
            DurabilityError::Codec(e) => write!(f, "decode error: {e}"),
            DurabilityError::Corrupt {
                file,
                offset,
                detail,
            } => write!(f, "{file} corrupt at byte {offset}: {detail}"),
            DurabilityError::VersionMismatch { file, found } => write!(
                f,
                "{file} has format version {found}, this build reads {FORMAT_VERSION}"
            ),
            DurabilityError::FingerprintMismatch {
                file,
                expected,
                found,
            } => write!(
                f,
                "{file} belongs to program {found:#018x}, current program is {expected:#018x}"
            ),
            DurabilityError::SequenceGap {
                expected,
                found,
                file,
            } => write!(f, "{file}: expected event seq {expected}, found {found}"),
            DurabilityError::Replay(m) => write!(f, "replay failed: {m}"),
            DurabilityError::RecoveryDegraded(m) => write!(f, "recovery degraded: {m}"),
            DurabilityError::Config(m) => write!(f, "durability misconfigured: {m}"),
            DurabilityError::Locked { file } => {
                write!(f, "another live writer holds the WAL lock {file}")
            }
        }
    }
}

impl DurabilityError {
    /// Is this failure worth retrying (inline) or re-arming (fresh segment
    /// after a checkpoint)? Only transient I/O qualifies: EIO, ENOSPC and
    /// interrupted/timed-out syscalls can clear; everything else — corruption,
    /// fingerprint/version mismatches, sequence gaps, locks, config and
    /// permanent I/O errors — cannot, and retrying would just mask it.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DurabilityError::Io {
                retryable: true,
                ..
            }
        )
    }
}

impl std::error::Error for DurabilityError {}

impl From<CodecError> for DurabilityError {
    fn from(e: CodecError) -> Self {
        DurabilityError::Codec(e)
    }
}

/// Wrap an I/O failure with the operation and path that hit it, classifying
/// it transient (retry/re-arm can help: the disk hiccuped, space can be
/// freed, the syscall was interrupted) vs permanent (EROFS, permissions,
/// missing files — retrying cannot fix it).
pub(crate) fn io_err(context: &str, path: &std::path::Path, e: std::io::Error) -> DurabilityError {
    // EINTR=4, EIO=5, EAGAIN=11, ENOSPC=28 on Linux.
    let retryable = match e.raw_os_error() {
        Some(code) => matches!(code, 4 | 5 | 11 | 28),
        None => matches!(
            e.kind(),
            std::io::ErrorKind::Interrupted
                | std::io::ErrorKind::TimedOut
                | std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::Other // FaultVfs power cuts and the like
        ),
    };
    DurabilityError::Io {
        message: format!("{context} {}: {e}", path.display()),
        retryable,
    }
}

/// A stable fingerprint of a compiled program: the durable state is only
/// replayable against the exact trigger program that produced it, so both WAL
/// segments and checkpoints embed this value and recovery refuses a mismatch.
///
/// Computed as FNV-1a over the program's canonical rendering (maps and
/// triggers) plus its result descriptors — everything that influences how an
/// event mutates state or how results are read.
pub fn program_fingerprint(program: &TriggerProgram) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    eat(format!("{program}").as_bytes());
    for r in &program.results {
        eat(r.name.as_bytes());
        eat(format!("{:?}", r.out_vars).as_bytes());
        eat(format!("{:?}", r.access).as_bytes());
    }
    eat(&[FORMAT_VERSION]);
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_agca::Expr;
    use dbtoaster_compiler::{compile, Catalog, CompileOptions, QuerySpec, RelationMeta};

    fn program(var: &str) -> TriggerProgram {
        let catalog: Catalog = [RelationMeta::stream("R", ["A", "V"])]
            .into_iter()
            .collect();
        let q = QuerySpec {
            name: "Q".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([Expr::rel("R", ["a", "v"]), Expr::var(var)]),
            ),
        };
        compile(&[q], &catalog, &CompileOptions::default()).unwrap()
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let a1 = program_fingerprint(&program("v"));
        let a2 = program_fingerprint(&program("v"));
        let b = program_fingerprint(&program("a"));
        assert_eq!(a1, a2, "same program must fingerprint identically");
        assert_ne!(a1, b, "different programs must fingerprint differently");
    }
}
