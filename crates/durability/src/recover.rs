//! Crash recovery: newest usable checkpoint + WAL replay ⇒ a warm engine.
//!
//! Because higher-order delta processing is deterministic over an ordered
//! event stream, recovery is exact: starting from the checkpointed maps at
//! watermark `W` and replaying WAL events `W+1..` reproduces, bit for bit, the
//! engine a never-crashed process would hold after the same events. The replay
//! path is the *same* `Engine::process_batch` used live — one WAL record is
//! one live micro-batch, so recovery takes identical batch boundaries and
//! there is no separate recovery interpreter to drift out of sync.

use crate::checkpoint;
use crate::vfs::{std_vfs, Vfs};
use crate::wal::{self, WalReader};
use crate::{program_fingerprint, DurabilityError};
use dbtoaster_agca::DeltaBatch;
use dbtoaster_compiler::{Catalog, TriggerProgram};
use dbtoaster_runtime::Engine;
use std::path::Path;
use std::sync::Arc;

/// The result of [`recover`]: a warm engine plus provenance of how it was
/// rebuilt.
pub struct Recovery {
    /// Engine with every view restored; `stats().events` equals
    /// `checkpoint_watermark + replayed_events` and
    /// `stats().recovery_replayed_events` is set.
    pub engine: Engine,
    /// Watermark of the checkpoint used (0 when recovery replayed the whole
    /// log from scratch).
    pub checkpoint_watermark: u64,
    /// Events replayed from the WAL on top of the checkpoint.
    pub replayed_events: u64,
    /// A torn final WAL record was dropped (normal after a crash).
    pub torn_tail_dropped: bool,
    /// Damaged checkpoint files that were skipped in favour of older ones.
    pub skipped_checkpoints: Vec<String>,
    /// Replayed events whose triggers failed (counted into `replayed_events`
    /// too). The live writer skips past a poison event while keeping its
    /// sequence slot, and replay mirrors that exactly — both runs end in the
    /// same (degraded) state rather than recovery erroring where serving
    /// soldiered on.
    pub failed_events: u64,
    /// The first replay failure, for logging (`None` when `failed_events` is 0).
    pub first_failure: Option<String>,
}

/// Does `dir` hold any durable state (checkpoints or WAL segments)?
pub fn has_state(dir: &Path) -> Result<bool, DurabilityError> {
    Ok(!checkpoint::list_checkpoints(dir)?.is_empty() || !wal::list_segments(dir)?.is_empty())
}

/// Rebuild an engine from the durable state in `dir`, or return `Ok(None)`
/// when the directory holds none (a fresh start).
///
/// Steps:
/// 1. load the newest checkpoint whose CRC verifies (older ones are fallbacks;
///    a program-fingerprint mismatch is a hard error — see
///    [`checkpoint::load_latest`]),
/// 2. restore the maps into an engine via [`Engine::from_snapshot`] — *without*
///    re-running static-view initialization, since the checkpoint already
///    contains static tables and their derived views,
/// 3. replay every WAL record above the watermark through the normal
///    batch-trigger path (one record = one delta batch, exactly as the live
///    writer processed it), tolerating a torn tail and refusing mid-log
///    corruption or sequence gaps.
///
/// This function only reads. If a live writer might hold the directory (e.g.
/// a racing restart), take [`crate::acquire_dir_lock`] first so its
/// checkpointer cannot prune files mid-scan — the facade's `open_or_create`
/// does exactly that.
pub fn recover(
    dir: &Path,
    program: TriggerProgram,
    catalog: &Catalog,
) -> Result<Option<Recovery>, DurabilityError> {
    recover_with_vfs(dir, program, catalog, std_vfs())
}

/// [`recover`] through an explicit [`Vfs`] (fault-injection tests; production
/// callers use [`recover`], which is this with [`crate::StdVfs`]).
pub fn recover_with_vfs(
    dir: &Path,
    program: TriggerProgram,
    catalog: &Catalog,
    vfs: Arc<dyn Vfs>,
) -> Result<Option<Recovery>, DurabilityError> {
    let fingerprint = program_fingerprint(&program);
    if checkpoint::list_checkpoints_with(vfs.as_ref(), dir)?.is_empty()
        && wal::list_segments_with(vfs.as_ref(), dir)?.is_empty()
    {
        return Ok(None);
    }
    let (ckpt, skipped_checkpoints) = checkpoint::load_latest_with(vfs.as_ref(), dir, fingerprint)?;
    let (checkpoint_watermark, mut engine) = match ckpt {
        Some(c) => {
            let w = c.watermark;
            (w, Engine::from_snapshot(program, catalog, c.maps, w))
        }
        None => {
            // Every checkpoint was damaged (or none was ever written): replay
            // the full log against a fresh engine. Static views derive from
            // tables, which only travel in checkpoints — with none usable the
            // static initialization runs over whatever the catalog declares.
            let mut e = Engine::new(program, catalog);
            e.init_static_views()
                .map_err(|err| DurabilityError::Replay(err.to_string()))?;
            (0, e)
        }
    };
    let reader = WalReader::open_with(dir, fingerprint, vfs)?;
    let mut failed_events = 0u64;
    let mut first_failure = None;
    let mut delta = DeltaBatch::new();
    let stats = reader.replay_records(checkpoint_watermark + 1, &mut |first_seq, events| {
        // One WAL record = one live micro-batch: rebuild the same per-relation
        // delta batch the writer processed and drive it through the same
        // `process_batch` path, so the replayed engine takes identical batch
        // boundaries (and therefore identical bits) as the crashed server.
        delta.clear();
        let record_len = events.len();
        for ev in events {
            delta.push_owned(ev);
        }
        let report = engine.process_batch(&delta);
        if report.failed_events > 0 {
            // Mirror the live writer's policy (see the serving loop): a poison
            // event keeps its sequence slot and processing continues, so the
            // replayed engine converges to the same state the crashed server
            // actually had.
            engine.stats_mut().events += report.failed_events;
            failed_events += report.failed_events;
            let last_seq = first_seq + record_len.saturating_sub(1) as u64;
            let e = report.first_error.expect("failed events imply an error");
            first_failure.get_or_insert_with(|| format!("events {first_seq}..={last_seq}: {e}"));
        }
        Ok(())
    })?;
    engine.stats_mut().recovery_replayed_events = stats.events_replayed;
    Ok(Some(Recovery {
        engine,
        checkpoint_watermark,
        replayed_events: stats.events_replayed,
        torn_tail_dropped: stats.torn_tail_dropped,
        skipped_checkpoints,
        failed_events,
        first_failure,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalWriter;
    use crate::FsyncPolicy;
    use dbtoaster_agca::{Expr, UpdateEvent};
    use dbtoaster_compiler::{compile, CompileOptions, QuerySpec, RelationMeta};
    use dbtoaster_gmr::Value;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dbt-rec-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn catalog() -> Catalog {
        [RelationMeta::stream("R", ["A", "V"])]
            .into_iter()
            .collect()
    }

    fn program() -> TriggerProgram {
        let q = QuerySpec {
            name: "TOTAL".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([Expr::rel("R", ["a", "v"]), Expr::var("v")]),
            ),
        };
        compile(&[q], &catalog(), &CompileOptions::default()).unwrap()
    }

    fn ev(v: i64) -> UpdateEvent {
        UpdateEvent::insert("R", vec![Value::long(v), Value::long(v)])
    }

    #[test]
    fn empty_dir_is_a_fresh_start() {
        let dir = tmp_dir("fresh");
        assert!(recover(&dir, program(), &catalog()).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_plus_wal_tail_rebuilds_exactly() {
        let dir = tmp_dir("exact");
        let prog = program();
        let fp = program_fingerprint(&prog);
        // Reference run: 6 events straight through an engine.
        let mut reference = Engine::new(prog.clone(), &catalog());
        let events: Vec<UpdateEvent> = (1..=6).map(ev).collect();
        let mut w = WalWriter::open(&dir, fp, 1, FsyncPolicy::EveryBatch, 1 << 20).unwrap();
        for (i, e) in events.iter().enumerate() {
            w.append(std::slice::from_ref(e)).unwrap();
            reference.process(e).unwrap();
            if i == 3 {
                // Checkpoint at watermark 4.
                let snap = reference.snapshot();
                checkpoint::write_checkpoint(
                    &dir,
                    fp,
                    4,
                    snap.iter().map(|(n, g)| (n.as_str(), g)),
                )
                .unwrap();
            }
        }
        w.batch_boundary().unwrap();
        drop(w);

        let rec = recover(&dir, prog, &catalog())
            .unwrap()
            .expect("state present");
        assert_eq!(rec.checkpoint_watermark, 4);
        assert_eq!(rec.replayed_events, 2);
        assert_eq!(rec.engine.stats().events, 6);
        assert_eq!(rec.engine.stats().recovery_replayed_events, 2);
        let total = |e: &Engine| e.result("TOTAL").unwrap().scalar_value();
        assert_eq!(
            total(&rec.engine).to_bits(),
            total(&reference).to_bits(),
            "recovered result must be bit-exact"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_only_state_recovers_intact() {
        // A crash between the initial checkpoint and WAL creation leaves a
        // checkpoint with no segments; the captured state (e.g. pre-loaded
        // tables) must come back, not a fresh empty engine.
        let dir = tmp_dir("ckptonly");
        let prog = program();
        let fp = program_fingerprint(&prog);
        let mut engine = Engine::new(prog.clone(), &catalog());
        engine.process_all(&[ev(2), ev(5)]).unwrap();
        let snap = engine.snapshot();
        checkpoint::write_checkpoint(&dir, fp, 2, snap.iter().map(|(n, g)| (n.as_str(), g)))
            .unwrap();
        let rec = recover(&dir, prog, &catalog()).unwrap().expect("state");
        assert_eq!(rec.checkpoint_watermark, 2);
        assert_eq!(rec.replayed_events, 0);
        assert_eq!(rec.engine.result("TOTAL").unwrap().scalar_value(), 7.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poison_events_keep_their_sequence_slot_on_replay() {
        // The live writer skips past a failing event while advancing the
        // watermark; replay must mirror that instead of hard-erroring, so the
        // recovered engine matches the degraded server bit for bit.
        let dir = tmp_dir("poison");
        let prog = program();
        let fp = program_fingerprint(&prog);
        let mut w = WalWriter::open(&dir, fp, 1, FsyncPolicy::Never, 1 << 20).unwrap();
        let poison = UpdateEvent::insert("R", vec![Value::long(1)]); // arity mismatch
        w.append(&[ev(2), poison, ev(3)]).unwrap();
        drop(w);
        let rec = recover(&dir, prog, &catalog()).unwrap().expect("state");
        assert_eq!(rec.replayed_events, 3);
        assert_eq!(rec.failed_events, 1);
        assert!(
            rec.first_failure
                .as_deref()
                .unwrap_or("")
                .contains("events 1..=3"),
            "failure should name the batch: {:?}",
            rec.first_failure
        );
        assert_eq!(rec.engine.stats().events, 3, "poison event keeps its slot");
        assert_eq!(rec.engine.result("TOTAL").unwrap().scalar_value(), 5.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_only_recovery_replays_from_scratch() {
        let dir = tmp_dir("walonly");
        let prog = program();
        let fp = program_fingerprint(&prog);
        let mut w = WalWriter::open(&dir, fp, 1, FsyncPolicy::Never, 1 << 20).unwrap();
        w.append(&[ev(2), ev(3)]).unwrap();
        drop(w);
        let rec = recover(&dir, prog, &catalog()).unwrap().expect("state");
        assert_eq!(rec.checkpoint_watermark, 0);
        assert_eq!(rec.replayed_events, 2);
        assert_eq!(rec.engine.result("TOTAL").unwrap().scalar_value(), 5.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pruned_wal_below_checkpoint_still_recovers() {
        let dir = tmp_dir("pruned");
        let prog = program();
        let fp = program_fingerprint(&prog);
        let mut engine = Engine::new(prog.clone(), &catalog());
        let mut w = WalWriter::open(&dir, fp, 1, FsyncPolicy::Never, 1).unwrap(); // rotate every record
        for i in 1..=3 {
            w.append(&[ev(i)]).unwrap();
            engine.process(&ev(i)).unwrap();
        }
        let snap = engine.snapshot();
        checkpoint::write_checkpoint(&dir, fp, 3, snap.iter().map(|(n, g)| (n.as_str(), g)))
            .unwrap();
        w.append(&[ev(4)]).unwrap();
        drop(w);
        wal::prune_segments(&dir, 3).unwrap();
        let rec = recover(&dir, prog, &catalog()).unwrap().expect("state");
        assert_eq!(rec.checkpoint_watermark, 3);
        assert_eq!(rec.replayed_events, 1);
        assert_eq!(rec.engine.result("TOTAL").unwrap().scalar_value(), 10.0);
        let _ = fs::remove_dir_all(&dir);
    }
}
