//! Compact binary codec for the durable on-disk formats.
//!
//! Everything the WAL and checkpoint files contain is encoded here, by hand,
//! against `std` only — the wire format must not depend on an external
//! serialization crate (the workspace's `serde` is an offline shim, and a
//! durable format needs byte-level stability that a derive cannot promise).
//!
//! ## Encoding rules
//!
//! All integers are **little-endian fixed width**; all variable-length fields
//! are **length-prefixed**. There is no padding and no alignment: a record is
//! the concatenation of its fields.
//!
//! | type | encoding |
//! |---|---|
//! | `u8` / `u32` / `u64` / `i64` | fixed-width LE |
//! | `f64` | IEEE-754 bit pattern as `u64` LE (bit-exact round trip, incl. `-0.0` and NaN payloads) |
//! | string | `u32` byte length + UTF-8 bytes |
//! | [`Value`] | tag byte (`0` Long, `1` Double, `2` Str) + payload |
//! | [`Tuple`] / `Vec<Value>` | `u32` count + values |
//! | [`UpdateEvent`] | sign byte (`0` insert, `1` delete) + relation string + tuple |
//! | GMR map | schema (`u32` column count + strings) + `u64` entry count + (tuple, `f64`) pairs |
//!
//! Multiplicities travel as raw bit patterns, which is what makes recovery
//! *bit-exact*: a replayed engine's views compare equal to a never-crashed
//! engine's under `f64::to_bits`, not merely within an epsilon.
//!
//! The container formats (WAL records, checkpoint files) carry an explicit
//! [`FORMAT_VERSION`] byte and a per-record [`crc32`] so that a future format
//! change is detected as a version mismatch instead of a misparse, and disk
//! corruption is detected as a checksum failure instead of silent divergence.

use dbtoaster_agca::{UpdateEvent, UpdateSign};
use dbtoaster_gmr::{Gmr, Schema, Tuple, Value};
use std::fmt;

/// Version byte written into every WAL segment header and checkpoint header.
/// Bump on any change to the encodings in this module.
pub const FORMAT_VERSION: u8 = 1;

/// Errors raised while decoding durable bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the announced field length.
    UnexpectedEof {
        /// Bytes needed to finish the current field.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// An unknown tag byte for a `Value` or an `UpdateSign`.
    BadTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A declared length is beyond any plausible record size.
    LengthOverflow(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of record: need {needed} bytes, {remaining} left"
                )
            }
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::LengthOverflow(n) => write!(f, "declared length {n} overflows the record"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, the polynomial used by zip/png/ethernet)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

/// Append a `u32` (LE).
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (LE).
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` (LE).
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its bit pattern (LE).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Append one [`Value`].
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Long(x) => {
            buf.push(0);
            put_i64(buf, *x);
        }
        Value::Double(x) => {
            buf.push(1);
            put_f64(buf, *x);
        }
        Value::Str(s) => {
            buf.push(2);
            put_str(buf, s);
        }
    }
}

/// Append a sequence of values with a `u32` count prefix.
pub fn put_values(buf: &mut Vec<u8>, vals: &[Value]) {
    put_u32(buf, vals.len() as u32);
    for v in vals {
        put_value(buf, v);
    }
}

/// Append one [`UpdateEvent`].
pub fn put_event(buf: &mut Vec<u8>, ev: &UpdateEvent) {
    buf.push(match ev.sign {
        UpdateSign::Insert => 0,
        UpdateSign::Delete => 1,
    });
    put_str(buf, &ev.relation);
    put_values(buf, &ev.tuple);
}

/// Append one named GMR map: name, key schema, entries.
pub fn put_map(buf: &mut Vec<u8>, name: &str, gmr: &Gmr) {
    put_str(buf, name);
    let columns = gmr.schema().columns();
    put_u32(buf, columns.len() as u32);
    for c in columns {
        put_str(buf, c);
    }
    put_u64(buf, gmr.len() as u64);
    for (t, m) in gmr.iter() {
        put_values(buf, t);
        put_f64(buf, m);
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A cursor over an encoded byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed?
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32` (LE).
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64` (LE).
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `i64` (LE).
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(CodecError::LengthOverflow(len as u64));
        }
        std::str::from_utf8(self.take(len)?).map_err(|_| CodecError::BadUtf8)
    }

    /// Read one [`Value`].
    pub fn value(&mut self) -> Result<Value, CodecError> {
        match self.u8()? {
            0 => Ok(Value::Long(self.i64()?)),
            1 => Ok(Value::Double(self.f64()?)),
            2 => Ok(Value::str(self.str()?)),
            t => Err(CodecError::BadTag(t)),
        }
    }

    /// Read a count-prefixed sequence of values.
    pub fn values(&mut self) -> Result<Vec<Value>, CodecError> {
        let n = self.u32()? as usize;
        // Each value is at least 2 bytes (tag + payload); bail on absurd counts
        // before attempting a huge allocation on corrupt input.
        if n > self.remaining() {
            return Err(CodecError::LengthOverflow(n as u64));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.value()?);
        }
        Ok(out)
    }

    /// Read a count-prefixed sequence of values as a [`Tuple`].
    pub fn tuple(&mut self) -> Result<Tuple, CodecError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(CodecError::LengthOverflow(n as u64));
        }
        let mut t = Tuple::new();
        for _ in 0..n {
            t.push(self.value()?);
        }
        Ok(t)
    }

    /// Read one [`UpdateEvent`].
    pub fn event(&mut self) -> Result<UpdateEvent, CodecError> {
        let sign = match self.u8()? {
            0 => UpdateSign::Insert,
            1 => UpdateSign::Delete,
            t => return Err(CodecError::BadTag(t)),
        };
        let relation = self.str()?.to_string();
        let tuple = self.values()?;
        Ok(UpdateEvent {
            relation,
            sign,
            tuple,
        })
    }

    /// Read one named GMR map written by [`put_map`].
    pub fn map(&mut self) -> Result<(String, Gmr), CodecError> {
        let name = self.str()?.to_string();
        let ncols = self.u32()? as usize;
        if ncols > self.remaining() {
            return Err(CodecError::LengthOverflow(ncols as u64));
        }
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            columns.push(self.str()?.to_string());
        }
        let entries = self.u64()? as usize;
        let mut gmr = Gmr::with_capacity(Schema::new(columns), entries.min(self.remaining()));
        for _ in 0..entries {
            let t = self.tuple()?;
            let m = self.f64()?;
            gmr.add_tuple(t, m);
        }
        Ok((name, gmr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn value_round_trip_preserves_bits() {
        let vals = [
            Value::long(i64::MIN),
            Value::long(0),
            Value::long(i64::MAX),
            Value::double(-0.0),
            Value::double(f64::NAN),
            Value::double(1.5e300),
            Value::str(""),
            Value::str("héllo wörld"),
        ];
        let mut buf = Vec::new();
        put_values(&mut buf, &vals);
        let mut r = Reader::new(&buf);
        let back = r.values().unwrap();
        assert!(r.is_empty());
        for (a, b) in vals.iter().zip(back.iter()) {
            match (a, b) {
                (Value::Double(x), Value::Double(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn event_round_trip() {
        let ev = UpdateEvent::delete("Lineitem", vec![Value::long(7), Value::double(2.25)]);
        let mut buf = Vec::new();
        put_event(&mut buf, &ev);
        let mut r = Reader::new(&buf);
        let back = r.event().unwrap();
        assert_eq!(back.relation, "Lineitem");
        assert_eq!(back.sign, UpdateSign::Delete);
        assert_eq!(back.tuple, ev.tuple);
    }

    #[test]
    fn map_round_trip() {
        let mut g = Gmr::new(Schema::new(["a", "b"]));
        g.add_tuple(vec![Value::long(1), Value::str("x")], 2.5);
        g.add_tuple(vec![Value::long(2), Value::str("y")], -1.0);
        let mut buf = Vec::new();
        put_map(&mut buf, "M1", &g);
        let (name, back) = Reader::new(&buf).map().unwrap();
        assert_eq!(name, "M1");
        assert_eq!(back.schema().columns(), g.schema().columns());
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(&[Value::long(1), Value::str("x")]), 2.5);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_event(
            &mut buf,
            &UpdateEvent::insert("R", vec![Value::str("abcdef"), Value::long(1)]),
        );
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(r.event().is_err(), "cut at {cut} decoded successfully");
        }
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut r = Reader::new(&[9u8]);
        assert_eq!(r.value(), Err(CodecError::BadTag(9)));
        let mut buf = vec![7u8]; // bad sign byte
        put_str(&mut buf, "R");
        put_values(&mut buf, &[]);
        assert_eq!(Reader::new(&buf).event(), Err(CodecError::BadTag(7)));
    }
}
