//! # The durability layer's virtual file system
//!
//! Every byte the durability layer persists — WAL segments, checkpoints,
//! directory entries — flows through the [`Vfs`] trait, so the *same* WAL and
//! checkpoint code runs against the real disk ([`StdVfs`]) and against a
//! deterministic fault injector ([`FaultVfs`]). Production pays nothing for
//! the indirection beyond one virtual call per I/O operation, which is noise
//! next to the syscall it wraps; the default everywhere is `StdVfs`.
//!
//! ## Design
//!
//! The trait surface is exactly the operations the on-disk protocols need and
//! no more:
//!
//! * [`Vfs::read`] / [`Vfs::list_dir`] / [`Vfs::exists`] — the read side
//!   (segment scans, checkpoint loads, directory listings).
//! * [`Vfs::create`] / [`Vfs::open_append`] — the two ways a file is ever
//!   opened for writing. Both return a [`VfsFile`] whose writes always land
//!   at the current end of file (append semantics), so a `set_len` truncation
//!   followed by a write can never leave a zero gap in the middle of a
//!   segment.
//! * [`VfsFile::sync_data`] / [`VfsFile::sync_all`] — the durability points.
//! * [`Vfs::rename`] + [`Vfs::sync_dir`] — the atomic-rename checkpoint
//!   protocol's two halves.
//! * [`Vfs::remove_file`] — pruning and torn-segment cleanup.
//!
//! Deliberately **outside** the trait: the advisory writer lock
//! ([`crate::wal::acquire_dir_lock`]). Locking is process-coordination, not
//! durability — a simulated power cut must not release or corrupt a real
//! lock, and a fault injector must never be able to let two real writers
//! interleave. The lock always uses the real filesystem.
//!
//! ## FaultVfs: deterministic fault schedules and power cuts
//!
//! [`FaultVfs`] is a *write-through* wrapper over the real filesystem: every
//! operation actually executes against the backing directory, while a shadow
//! journal tracks which bytes and which directory entries would survive a
//! power cut — i.e. what has actually been fsynced. Faults come from a seeded
//! [splitmix64] stream, so a failing schedule is reproducible from its seed
//! alone:
//!
//! * **Transient EIO** (`fail_prob_ppm`) — the op fails, nothing is applied.
//! * **ENOSPC** (`enospc_prob_ppm`) — write-class ops fail with `ENOSPC`.
//! * **Short writes** (`short_write_prob_ppm`) — a seeded *prefix* of the
//!   buffer reaches the file, then the write reports EIO: exactly the torn
//!   frame a real crash mid-`write(2)` leaves.
//! * **Power cut** (`cut_at_op`) — at the N-th mutating operation the power
//!   goes out: the cutting op applies at most a partial prefix, and every
//!   subsequent operation fails. [`FaultVfs::materialize_cut`] then replays
//!   the **sync-consistent** image into a fresh directory: per file, the
//!   fsynced prefix survives verbatim, while the unsynced suffix survives
//!   fully, partially, as zeros (size extension committed before data pages),
//!   or not at all — chosen by the seeded stream. Unsynced directory entries
//!   (a created file before `sync_dir`, a rename, a removal) survive or
//!   vanish the same way, so mid-rotation and mid-checkpoint-rename cuts are
//!   covered.
//!
//! Scripted controls ([`FaultVfs::fail_writes_with`], [`FaultVfs::heal`])
//! force a fixed errno on file write/sync operations for server-level tests
//! of degraded mode and re-arm, independent of the probabilistic stream.
//!
//! Approximations (documented, acceptable for the protocols under test):
//! the shadow journal models one flat directory (all `sync_dir` calls flush
//! every pending entry), and `create`-with-truncate and `set_len` are treated
//! as immediately visible — the formats never rely on a truncation being
//! reordered after a crash.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// A writable file handle. Writes always append at the current end of file;
/// `set_len` moves the end of file (shrinking only, in practice: torn-tail
/// truncation and retry cleanup).
pub trait VfsFile: Send {
    /// Append the whole buffer at the end of the file.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush file *data* to stable storage (fdatasync).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flush file data and metadata to stable storage (fsync).
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncate (or extend with zeros) to exactly `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

/// The durability layer's view of a filesystem. See the module docs for the
/// design rationale; implemented by [`StdVfs`] (production) and [`FaultVfs`]
/// (deterministic fault injection).
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// List the entries of a directory (files only, any order).
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Does the path exist?
    fn exists(&self, path: &Path) -> bool;
    /// Open an existing file for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Create (or truncate) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Create a directory and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Atomically rename `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsync a directory, making entry creations/renames/removals durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// StdVfs
// ---------------------------------------------------------------------------

/// The real filesystem. Zero-sized; the default for every durability entry
/// point.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdVfs;

/// A shared `Arc<dyn Vfs>` over [`StdVfs`].
pub fn std_vfs() -> Arc<dyn Vfs> {
    Arc::new(StdVfs)
}

impl VfsFile for File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }
    fn sync_all(&mut self) -> io::Result<()> {
        File::sync_all(self)
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        File::set_len(self, len)
    }
}

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(OpenOptions::new().append(true).open(path)?))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        // Truncate with a throwaway handle, then reopen in append mode: the
        // standard library rejects `truncate(true)` + `append(true)`, and a
        // plain write-mode cursor would sit past EOF after a `set_len`,
        // leaving a zero gap that scans would read as mid-file corruption.
        // Append mode always writes at the current end of file.
        OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(OpenOptions::new().append(true).open(path)?))
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
}

// ---------------------------------------------------------------------------
// FaultVfs
// ---------------------------------------------------------------------------

/// Errno constants used by the injector (values as on Linux).
pub const EIO: i32 = 5;
/// `ENOSPC`: no space left on device.
pub const ENOSPC: i32 = 28;
/// `EROFS`: read-only filesystem (classified permanent by the server).
pub const EROFS: i32 = 30;

fn errno(code: i32) -> io::Error {
    io::Error::from_raw_os_error(code)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn chance(rng: &mut u64, ppm: u32) -> bool {
    splitmix64(rng) % 1_000_000 < ppm as u64
}

/// The seeded fault schedule of a [`FaultVfs`]. Probabilities are in parts
/// per million of mutating operations; everything is driven by `seed` alone,
/// so a failing run reproduces exactly.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultConfig {
    /// Seed of the splitmix64 decision stream.
    pub seed: u64,
    /// Probability of a transient EIO on any mutating operation.
    pub fail_prob_ppm: u32,
    /// Probability of ENOSPC on write-class operations (writes, creates).
    pub enospc_prob_ppm: u32,
    /// Probability that a write persists only a seeded prefix, then fails.
    pub short_write_prob_ppm: u32,
    /// Cut the power at this (1-based) mutating operation: the op applies at
    /// most a partial prefix and every later operation fails.
    pub cut_at_op: Option<u64>,
}

/// Shadow record of one file: what of it has actually been fsynced.
#[derive(Debug, Default)]
struct ShadowFile {
    /// Bytes guaranteed to survive a power cut (captured at each file sync).
    durable: Vec<u8>,
    /// The directory entry itself is durable (file existed before tracking,
    /// or a `sync_dir` covered its creation/rename).
    entry_durable: bool,
    /// Renamed from this name since the last `sync_dir`: after a cut the file
    /// may reappear under the old name instead.
    prev_name: Option<PathBuf>,
}

#[derive(Debug)]
struct FaultState {
    rng: u64,
    /// Mutating operations so far (the `cut_at_op` clock).
    ops: u64,
    /// Faults injected (all kinds, the cut included).
    faults: u64,
    /// The power is out: every operation fails until `materialize_cut`.
    cut: bool,
    /// Scripted errno forced on file write/sync ops (`fail_writes_with`).
    forced: Option<i32>,
    files: HashMap<PathBuf, ShadowFile>,
    /// Files removed since the last `sync_dir`, with their durable bytes: a
    /// cut may resurrect them.
    tombstones: Vec<(PathBuf, Vec<u8>)>,
}

/// A deterministic fault-injecting [`Vfs`]: write-through to the real
/// filesystem plus a shadow journal of what is sync-consistent. See the
/// module docs for semantics.
#[derive(Debug)]
pub struct FaultVfs {
    config: FaultConfig,
    state: Mutex<FaultState>,
}

/// Which fault classes apply to an operation.
#[derive(Clone, Copy, PartialEq)]
enum OpKind {
    /// Writes data: eligible for ENOSPC and the scripted errno.
    Write,
    /// Syncs data: eligible for the scripted errno.
    Sync,
    /// Namespace ops (create dir, rename, remove): transient faults only.
    Meta,
}

impl FaultVfs {
    /// A new injector with the given schedule. Wrap in an `Arc` and hand the
    /// same instance to [`crate::DurabilityConfig::vfs`] and to the test that
    /// scripts it.
    pub fn new(config: FaultConfig) -> Self {
        FaultVfs {
            config,
            state: Mutex::new(FaultState {
                rng: config.seed ^ 0x6A09_E667_F3BC_C908,
                ops: 0,
                faults: 0,
                cut: false,
                forced: None,
                files: HashMap::new(),
                tombstones: Vec::new(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Script a fixed errno onto every file write/sync/truncate until
    /// [`FaultVfs::heal`] — the lever for driving a server into degraded mode
    /// on demand.
    pub fn fail_writes_with(&self, code: i32) {
        self.lock().forced = Some(code);
    }

    /// Clear the scripted errno; probabilistic faults (if any) continue.
    pub fn heal(&self) {
        self.lock().forced = None;
    }

    /// Mutating operations performed so far.
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Faults injected so far (scripted, probabilistic and the cut).
    pub fn faults_injected(&self) -> u64 {
        self.lock().faults
    }

    /// Has the simulated power cut fired?
    pub fn power_cut(&self) -> bool {
        self.lock().cut
    }

    /// Gate one mutating operation: advance the op clock, fire the cut, apply
    /// scripted and probabilistic faults. `Ok(())` means the op proceeds.
    fn gate(&self, kind: OpKind) -> io::Result<()> {
        let mut s = self.lock();
        self.gate_locked(&mut s, kind)
    }

    fn gate_locked(&self, s: &mut FaultState, kind: OpKind) -> io::Result<()> {
        if s.cut {
            return Err(io::Error::other("simulated power is off"));
        }
        s.ops += 1;
        if self.config.cut_at_op == Some(s.ops) {
            s.cut = true;
            s.faults += 1;
            return Err(io::Error::other("simulated power cut"));
        }
        if let Some(code) = s.forced {
            if matches!(kind, OpKind::Write | OpKind::Sync) {
                s.faults += 1;
                return Err(errno(code));
            }
        }
        if chance(&mut s.rng, self.config.fail_prob_ppm) {
            s.faults += 1;
            return Err(errno(EIO));
        }
        if kind == OpKind::Write && chance(&mut s.rng, self.config.enospc_prob_ppm) {
            s.faults += 1;
            return Err(errno(ENOSPC));
        }
        Ok(())
    }

    /// Track a path, seeding its shadow from the real file if it predates the
    /// injector (pre-existing state counts as fully durable).
    fn track(s: &mut FaultState, path: &Path) {
        if !s.files.contains_key(path) {
            let durable = fs::read(path).unwrap_or_default();
            let existed = path.exists();
            s.files.insert(
                path.to_path_buf(),
                ShadowFile {
                    durable,
                    entry_durable: existed,
                    prev_name: None,
                },
            );
        }
    }

    /// Replay the sync-consistent image into `dest` (which must be a fresh or
    /// nonexistent directory): per file, durable bytes survive verbatim while
    /// unsynced suffixes and directory entries survive per the seeded stream.
    /// Call after the power cut; recovery then runs against `dest` with a
    /// real [`StdVfs`].
    pub fn materialize_cut(&self, dest: &Path) -> io::Result<()> {
        let mut s = self.lock();
        fs::create_dir_all(dest)?;
        let mut files: Vec<(PathBuf, &ShadowFile)> =
            s.files.iter().map(|(p, f)| (p.clone(), f)).collect();
        files.sort_unstable_by(|a, b| a.0.cmp(&b.0)); // deterministic rng order
        let mut out: Vec<(PathBuf, Vec<u8>)> = Vec::new();
        let mut rng = s.rng;
        for (path, shadow) in files {
            let real = fs::read(&path).unwrap_or_default();
            let durable_len = shadow.durable.len().min(real.len());
            let unsynced = &real[durable_len..];
            let mut content = real[..durable_len].to_vec();
            let keep = if unsynced.is_empty() {
                0
            } else {
                (splitmix64(&mut rng) % (unsynced.len() as u64 + 1)) as usize
            };
            match splitmix64(&mut rng) % 4 {
                0 => {}                                            // suffix lost
                1 => content.extend_from_slice(&unsynced[..keep]), // prefix survived
                2 => content.resize(content.len() + keep, 0),      // size, not data
                _ => content.extend_from_slice(unsynced),          // all survived
            }
            let survives = shadow.entry_durable || splitmix64(&mut rng).is_multiple_of(2);
            if !survives {
                continue;
            }
            // An un-fsynced rename: the entry may still be under the old name.
            let name = match &shadow.prev_name {
                Some(old) if splitmix64(&mut rng).is_multiple_of(2) => old.clone(),
                _ => path.clone(),
            };
            out.push((name, content));
        }
        // Un-fsynced removals may not have reached the disk either.
        for (path, durable) in &s.tombstones {
            if splitmix64(&mut rng).is_multiple_of(2) {
                out.push((path.clone(), durable.clone()));
            }
        }
        s.rng = rng;
        for (path, content) in out {
            let Some(name) = path.file_name() else {
                continue;
            };
            fs::write(dest.join(name), content)?;
        }
        Ok(())
    }
}

/// A write-through file handle of a [`FaultVfs`].
struct FaultFile {
    vfs: Arc<FaultVfs>,
    path: PathBuf,
    file: File,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        {
            let mut s = self.vfs.lock();
            match self.vfs.gate_locked(&mut s, OpKind::Write) {
                Ok(()) => {
                    // Short write: a seeded prefix reaches the file, then EIO.
                    if chance(&mut s.rng, self.vfs.config.short_write_prob_ppm) && !buf.is_empty() {
                        s.faults += 1;
                        let n = (splitmix64(&mut s.rng) % buf.len() as u64) as usize;
                        drop(s);
                        let _ = io::Write::write_all(&mut self.file, &buf[..n]);
                        return Err(errno(EIO));
                    }
                }
                Err(e) => {
                    // The cutting write may still land a partial prefix.
                    if s.cut && !buf.is_empty() {
                        let n = (splitmix64(&mut s.rng) % (buf.len() as u64 + 1)) as usize;
                        drop(s);
                        let _ = io::Write::write_all(&mut self.file, &buf[..n]);
                    }
                    return Err(e);
                }
            }
        }
        io::Write::write_all(&mut self.file, buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.vfs.gate(OpKind::Sync)?;
        self.file.sync_data()?;
        let mut s = self.vfs.lock();
        FaultVfs::track(&mut s, &self.path);
        let durable = fs::read(&self.path).unwrap_or_default();
        if let Some(f) = s.files.get_mut(&self.path) {
            f.durable = durable;
        }
        Ok(())
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.vfs.gate(OpKind::Write)?;
        self.file.set_len(len)?;
        // Truncation is modeled as immediately applied (see module docs): the
        // durable image never extends past the new end.
        let mut s = self.vfs.lock();
        if let Some(f) = s.files.get_mut(&self.path) {
            f.durable.truncate(len as usize);
        }
        Ok(())
    }
}

/// The `Vfs` impl needs `Arc<FaultVfs>` so file handles can point back at the
/// shared fault state.
impl Vfs for Arc<FaultVfs> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if self.lock().cut {
            return Err(io::Error::other("simulated power is off"));
        }
        fs::read(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        if self.lock().cut {
            return Err(io::Error::other("simulated power is off"));
        }
        StdVfs.list_dir(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.gate(OpKind::Meta)?;
        let file = OpenOptions::new().append(true).open(path)?;
        let mut s = self.lock();
        FaultVfs::track(&mut s, path);
        drop(s);
        Ok(Box::new(FaultFile {
            vfs: self.clone(),
            path: path.to_path_buf(),
            file,
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.gate(OpKind::Write)?;
        // Same truncate-then-append dance as `StdVfs::create` (std rejects
        // `truncate` + `append` on one handle).
        OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        let mut s = self.lock();
        // A re-created file starts with no durable bytes; its *name* stays
        // durable only if it already was.
        let entry_durable = s.files.remove(path).is_some_and(|f| f.entry_durable);
        s.files.insert(
            path.to_path_buf(),
            ShadowFile {
                durable: Vec::new(),
                entry_durable,
                prev_name: None,
            },
        );
        drop(s);
        Ok(Box::new(FaultFile {
            vfs: self.clone(),
            path: path.to_path_buf(),
            file,
        }))
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        if self.lock().cut {
            return Err(io::Error::other("simulated power is off"));
        }
        fs::create_dir_all(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate(OpKind::Meta)?;
        fs::rename(from, to)?;
        let mut s = self.lock();
        let mut shadow = s.files.remove(from).unwrap_or_default();
        // Until the directory is fsynced, the old durable name may win a cut.
        shadow.prev_name = if shadow.entry_durable {
            Some(from.to_path_buf())
        } else {
            None
        };
        shadow.entry_durable = false;
        s.files.insert(to.to_path_buf(), shadow);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.gate(OpKind::Meta)?;
        fs::remove_file(path)?;
        let mut s = self.lock();
        if let Some(shadow) = s.files.remove(path) {
            if shadow.entry_durable {
                s.tombstones.push((path.to_path_buf(), shadow.durable));
            }
        }
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.gate(OpKind::Sync)?;
        File::open(dir)?.sync_all()?;
        let mut s = self.lock();
        for f in s.files.values_mut() {
            f.entry_durable = true;
            f.prev_name = None;
        }
        s.tombstones.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dbt-vfs-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_vfs_round_trips_and_appends_after_set_len() {
        let dir = tmp_dir("std");
        let path = dir.join("f");
        let mut f = StdVfs.create(&path).unwrap();
        f.write_all(b"hello world").unwrap();
        f.set_len(5).unwrap();
        f.write_all(b"!").unwrap();
        f.sync_all().unwrap();
        drop(f);
        // No zero gap: the post-truncate write landed at the new EOF.
        assert_eq!(StdVfs.read(&path).unwrap(), b"hello!");
        let mut f = StdVfs.open_append(&path).unwrap();
        f.write_all(b"?").unwrap();
        drop(f);
        assert_eq!(StdVfs.read(&path).unwrap(), b"hello!?");
        assert!(StdVfs.exists(&path));
        StdVfs.rename(&path, &dir.join("g")).unwrap();
        StdVfs.sync_dir(&dir).unwrap();
        assert!(!StdVfs.exists(&path));
        StdVfs.remove_file(&dir.join("g")).unwrap();
        assert_eq!(StdVfs.list_dir(&dir).unwrap().len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scripted_faults_fire_and_heal() {
        let dir = tmp_dir("scripted");
        let vfs = Arc::new(FaultVfs::new(FaultConfig::default()));
        let path = dir.join("f");
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"ok").unwrap();
        vfs.fail_writes_with(ENOSPC);
        let err = f.write_all(b"fails").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(ENOSPC));
        assert_eq!(f.sync_data().unwrap_err().raw_os_error(), Some(ENOSPC));
        vfs.heal();
        f.write_all(b"!").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(fs::read(&path).unwrap(), b"ok!");
        assert!(vfs.faults_injected() >= 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_schedules_are_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let dir = tmp_dir(&format!("det-{seed}"));
            let vfs = Arc::new(FaultVfs::new(FaultConfig {
                seed,
                fail_prob_ppm: 200_000,
                enospc_prob_ppm: 100_000,
                short_write_prob_ppm: 100_000,
                cut_at_op: None,
            }));
            let mut outcomes = Vec::new();
            let mut f = vfs.create(&dir.join("f")).unwrap();
            for i in 0..50u8 {
                outcomes.push(f.write_all(&[i; 16]).is_ok());
                outcomes.push(f.sync_data().is_ok());
            }
            drop(f);
            let bytes = fs::read(dir.join("f")).unwrap();
            let _ = fs::remove_dir_all(&dir);
            (outcomes, bytes, vfs.faults_injected())
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7).0, run(8).0, "different seeds should diverge");
    }

    #[test]
    fn power_cut_kills_all_later_ops_and_materializes_a_prefix() {
        let dir = tmp_dir("cut");
        let cut_dir = tmp_dir("cut-dest");
        fs::remove_dir_all(&cut_dir).unwrap();
        let vfs = Arc::new(FaultVfs::new(FaultConfig {
            seed: 3,
            cut_at_op: Some(6),
            ..FaultConfig::default()
        }));
        let path = dir.join("f");
        let mut f = vfs.create(&path).unwrap(); // op 1
        f.write_all(b"aaaa").unwrap(); // op 2
        f.sync_data().unwrap(); // op 3: "aaaa" durable
        vfs.sync_dir(&dir).unwrap(); // op 4: entry durable
        f.write_all(b"bbbb").unwrap(); // op 5: unsynced suffix
        let err = f.write_all(b"cccc").unwrap_err(); // op 6: the cut
        assert!(err.to_string().contains("power cut"), "{err}");
        assert!(vfs.power_cut());
        assert!(f.write_all(b"dddd").is_err(), "power stays off");
        assert!(vfs.sync_dir(&dir).is_err());
        vfs.materialize_cut(&cut_dir).unwrap();
        let survived = fs::read(cut_dir.join("f")).unwrap();
        assert!(
            survived.starts_with(b"aaaa"),
            "durable prefix must survive verbatim: {survived:?}"
        );
        assert!(
            survived.len() <= b"aaaabbbbcccc".len(),
            "nothing can survive that was never written"
        );
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&cut_dir);
    }

    #[test]
    fn unsynced_entries_may_vanish_but_synced_ones_never_do() {
        // Across many seeds: a file created+synced+dir-synced always survives
        // the cut; a file whose creation was never dir-synced sometimes
        // vanishes.
        let mut unsynced_vanished = false;
        for seed in 0..32u64 {
            let dir = tmp_dir(&format!("entry-{seed}"));
            let cut_dir = dir.join("cut");
            let vfs = Arc::new(FaultVfs::new(FaultConfig {
                seed,
                ..FaultConfig::default()
            }));
            let mut a = vfs.create(&dir.join("durable")).unwrap();
            a.write_all(b"A").unwrap();
            a.sync_data().unwrap();
            drop(a);
            vfs.sync_dir(&dir).unwrap();
            let mut b = vfs.create(&dir.join("unsynced")).unwrap();
            b.write_all(b"B").unwrap();
            b.sync_data().unwrap(); // data synced, entry not
            drop(b);
            vfs.lock().cut = true; // cut "now"
            vfs.materialize_cut(&cut_dir).unwrap();
            assert!(
                cut_dir.join("durable").exists(),
                "seed {seed}: a fully synced entry must survive"
            );
            unsynced_vanished |= !cut_dir.join("unsynced").exists();
            let _ = fs::remove_dir_all(&dir);
        }
        assert!(
            unsynced_vanished,
            "an un-dir-synced entry should vanish for at least one seed"
        );
    }
}
