//! The segmented write-ahead log.
//!
//! ## File layout
//!
//! A WAL is a directory of segment files named `wal-<start>.seg`, where
//! `<start>` is the zero-padded sequence number of the first event the segment
//! contains (events are numbered from 1, in apply order). Each segment is:
//!
//! ```text
//! header:  magic "DBTWAL" | version u8 | reserved u8 | program fingerprint u64
//! records: [ payload_len u32 | crc32 u32 | payload ]*
//! payload: first_seq u64 | count u32 | count × UpdateEvent
//! ```
//!
//! One record holds one appended micro-batch. The CRC covers the payload, so a
//! flipped bit anywhere in a record is detected; the explicit version byte
//! turns a future format change into a clean error instead of a misparse.
//!
//! ## Torn tails vs. mid-log corruption
//!
//! A crash can leave the final record partially written (a *torn tail*): the
//! reader drops it, because the events it held were by definition never
//! acknowledged as applied in any published snapshot that survives recovery.
//! Anything else — a bad CRC or a short record with valid data *after* it, or
//! any damage in a non-final segment — cannot be produced by an append-only
//! writer crashing, so it is reported as a hard [`DurabilityError::Corrupt`]
//! error rather than silently skipped: silent divergence is the one failure
//! mode a deterministic-replay log must never have.
//!
//! [`WalWriter::open`] re-scans only the final segment, truncates a torn tail
//! to the last valid record boundary, and resumes appending there.

use crate::codec::{self, crc32, CodecError, Reader, FORMAT_VERSION};
use crate::vfs::{StdVfs, Vfs, VfsFile};
use crate::{io_err, DurabilityError, FsyncPolicy};
use dbtoaster_agca::UpdateEvent;
use std::fs::{self, File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Magic prefix of every WAL segment.
pub const WAL_MAGIC: &[u8; 6] = b"DBTWAL";
/// Size of the segment header in bytes.
pub const SEGMENT_HEADER_LEN: u64 = 16;
/// Size of a record frame header (payload length + CRC).
const FRAME_HEADER_LEN: usize = 8;

/// Name of the segment whose first event has sequence number `start`.
fn segment_name(start: u64) -> String {
    format!("wal-{start:020}.seg")
}

/// List the WAL segments of `dir`, sorted by start sequence number.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    list_segments_with(&StdVfs, dir)
}

/// [`list_segments`] through an explicit [`Vfs`].
pub fn list_segments_with(
    vfs: &dyn Vfs,
    dir: &Path,
) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut out = Vec::new();
    if !vfs.exists(dir) {
        return Ok(out);
    }
    let entries = vfs.list_dir(dir).map_err(|e| io_err("reading", dir, e))?;
    for path in entries {
        let Some(name) = path.file_name() else {
            continue;
        };
        let name = name.to_string_lossy();
        if let Some(start) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((start, path));
        }
    }
    out.sort_unstable_by_key(|(start, _)| *start);
    Ok(out)
}

/// One decoded WAL record: a micro-batch of events starting at `first_seq`.
#[derive(Clone, Debug)]
pub struct WalRecord {
    /// Sequence number of the first event in the batch.
    pub first_seq: u64,
    /// The batch, in apply order.
    pub events: Vec<UpdateEvent>,
}

/// Result of scanning one segment file.
struct SegmentScan {
    records: Vec<WalRecord>,
    /// Byte offset one past the last valid record (the truncation point for a
    /// writer resuming after a torn tail).
    valid_end: u64,
    /// A torn (partially written) final record was dropped.
    torn: bool,
}

/// Read and verify one segment. `is_last` enables torn-tail tolerance; on
/// earlier segments every byte must parse.
fn scan_segment(
    vfs: &dyn Vfs,
    path: &Path,
    expected_fingerprint: u64,
    is_last: bool,
) -> Result<SegmentScan, DurabilityError> {
    let bytes = vfs.read(path).map_err(|e| io_err("reading", path, e))?;
    let file_name = path.display().to_string();
    // An entirely zero-filled final segment is the header-level analogue of
    // the zero-filled record tail below: a crash after the file's size
    // extension persisted but before any data page did. Nothing was logged;
    // treat it as a torn (empty) segment so reopen can clear it, instead of
    // wedging every recovery on "bad magic".
    if is_last && bytes.iter().all(|&b| b == 0) {
        return Ok(SegmentScan {
            records: Vec::new(),
            valid_end: 0,
            torn: true,
        });
    }
    if bytes.len() < SEGMENT_HEADER_LEN as usize {
        // Even the header is incomplete. For the last segment this is a crash
        // during segment creation: nothing was logged here yet.
        if is_last {
            return Ok(SegmentScan {
                records: Vec::new(),
                valid_end: bytes.len() as u64,
                torn: true,
            });
        }
        return Err(DurabilityError::Corrupt {
            file: file_name,
            offset: 0,
            detail: format!("segment header truncated ({} bytes)", bytes.len()),
        });
    }
    if &bytes[..6] != WAL_MAGIC {
        return Err(DurabilityError::Corrupt {
            file: file_name,
            offset: 0,
            detail: "bad magic".into(),
        });
    }
    if bytes[6] != FORMAT_VERSION {
        return Err(DurabilityError::VersionMismatch {
            file: file_name,
            found: bytes[6],
        });
    }
    let fingerprint = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if fingerprint != expected_fingerprint {
        return Err(DurabilityError::FingerprintMismatch {
            file: file_name,
            expected: expected_fingerprint,
            found: fingerprint,
        });
    }

    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER_LEN as usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(SegmentScan {
                records,
                valid_end: pos as u64,
                torn: false,
            });
        }
        // A record that does not fully parse is a torn tail only if (a) this is
        // the final segment and (b) nothing decodable follows it — i.e. the bad
        // frame extends to (or beyond) the end of the file.
        let fail = |detail: String, records: Vec<WalRecord>, tail_reaches_eof: bool| {
            if is_last && tail_reaches_eof {
                Ok(SegmentScan {
                    records,
                    valid_end: pos as u64,
                    torn: true,
                })
            } else {
                Err(DurabilityError::Corrupt {
                    file: path.display().to_string(),
                    offset: pos as u64,
                    detail,
                })
            }
        };
        if remaining < FRAME_HEADER_LEN {
            return fail(
                format!("record frame header truncated ({remaining} bytes)"),
                records,
                true,
            );
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        // A zero-filled tail would otherwise decode as a CRC-valid empty
        // record (crc32 of the empty payload is 0) — but the writer never
        // appends empty records, and a run of zeros to EOF is exactly what a
        // power cut leaves when the filesystem committed a size extension
        // before the data pages. Treat it as torn, not as corruption.
        if len == 0 && stored_crc == 0 && bytes[pos..].iter().all(|&b| b == 0) {
            return fail("zero-filled tail".into(), records, true);
        }
        let body_start = pos + FRAME_HEADER_LEN;
        if len > bytes.len() - body_start {
            return fail(
                format!(
                    "record payload truncated (declared {len}, {} available)",
                    bytes.len() - body_start
                ),
                records,
                true,
            );
        }
        let payload = &bytes[body_start..body_start + len];
        let frame_end = body_start + len;
        if crc32(payload) != stored_crc {
            return fail(
                "record CRC mismatch".into(),
                records,
                frame_end == bytes.len(),
            );
        }
        let record = match decode_record(payload) {
            Ok(r) => r,
            // Undecodable despite a valid CRC: mid-log this is hard
            // corruption; as the very last frame it is one more torn-tail
            // shape (e.g. garbage whose CRC happens to hold) and dropping it
            // is the safe, prefix-consistent choice.
            Err(e) => {
                return fail(
                    format!("record payload undecodable despite valid CRC: {e}"),
                    records,
                    frame_end == bytes.len(),
                )
            }
        };
        records.push(record);
        pos = frame_end;
    }
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, CodecError> {
    let mut r = Reader::new(payload);
    let first_seq = r.u64()?;
    let count = r.u32()? as usize;
    let mut events = Vec::with_capacity(count.min(payload.len()));
    for _ in 0..count {
        events.push(r.event()?);
    }
    if !r.is_empty() {
        return Err(CodecError::LengthOverflow(r.remaining() as u64));
    }
    Ok(WalRecord { first_seq, events })
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Statistics of one [`WalReader::replay`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records decoded (including ones entirely below `from_seq`).
    pub records: u64,
    /// Events delivered to the visitor (sequence number ≥ `from_seq`).
    pub events_replayed: u64,
    /// A torn final record was dropped.
    pub torn_tail_dropped: bool,
    /// Sequence number one past the last event read (`from_seq` if none).
    pub next_seq: u64,
}

/// Reads the WAL of a directory, tolerating a torn tail and refusing anything
/// worse (see the module docs for the exact rules).
pub struct WalReader {
    segments: Vec<(u64, PathBuf)>,
    fingerprint: u64,
    vfs: Arc<dyn Vfs>,
}

impl WalReader {
    /// Open the WAL in `dir`. Cheap: segment contents are read during
    /// [`WalReader::replay`].
    pub fn open(dir: &Path, fingerprint: u64) -> Result<Self, DurabilityError> {
        Self::open_with(dir, fingerprint, crate::vfs::std_vfs())
    }

    /// [`WalReader::open`] through an explicit [`Vfs`].
    pub fn open_with(
        dir: &Path,
        fingerprint: u64,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self, DurabilityError> {
        Ok(WalReader {
            segments: list_segments_with(vfs.as_ref(), dir)?,
            fingerprint,
            vfs,
        })
    }

    /// The segment files, sorted by start sequence.
    pub fn segments(&self) -> &[(u64, PathBuf)] {
        &self.segments
    }

    /// Stream every event with sequence number ≥ `from_seq` into `visit`, in
    /// order (per-event convenience wrapper over
    /// [`WalReader::replay_records`]).
    pub fn replay(
        &self,
        from_seq: u64,
        visit: &mut dyn FnMut(u64, UpdateEvent) -> Result<(), String>,
    ) -> Result<ReplayStats, DurabilityError> {
        self.replay_records(from_seq, &mut |first_seq, events| {
            for (off, ev) in events.into_iter().enumerate() {
                visit(first_seq + off as u64, ev)?;
            }
            Ok(())
        })
    }

    /// Stream every record (= one logged micro-batch) overlapping `from_seq`
    /// into `visit` as `(first visited sequence number, events)`, in order.
    /// Segments wholly below `from_seq` are skipped without decoding; a
    /// record straddling `from_seq` is trimmed to its suffix. This is the
    /// replay entry point recovery uses: each record becomes one delta batch,
    /// so the replayed engine takes exactly the batch boundaries the live
    /// writer took.
    ///
    /// Consistency checks (all hard errors):
    /// * the first visited record must cover `from_seq` (no gap between a
    ///   checkpoint watermark and the log),
    /// * sequence numbers must be contiguous from there on,
    /// * a segment's file name must match its first record.
    pub fn replay_records(
        &self,
        from_seq: u64,
        visit: &mut dyn FnMut(u64, Vec<UpdateEvent>) -> Result<(), String>,
    ) -> Result<ReplayStats, DurabilityError> {
        let mut stats = ReplayStats {
            next_seq: from_seq,
            ..ReplayStats::default()
        };
        let mut expected_next: Option<u64> = None;
        let last = self.segments.len().saturating_sub(1);
        for (i, (start, path)) in self.segments.iter().enumerate() {
            // Skip segments that end strictly below `from_seq`: the next
            // segment's start bounds this one's coverage.
            if let Some(&(next_start, _)) = self.segments.get(i + 1) {
                if next_start <= from_seq && expected_next.is_none() {
                    continue;
                }
            }
            let scan = scan_segment(self.vfs.as_ref(), path, self.fingerprint, i == last)?;
            stats.torn_tail_dropped |= scan.torn;
            let mut first_in_segment = true;
            for record in scan.records {
                stats.records += 1;
                if first_in_segment {
                    first_in_segment = false;
                    if record.first_seq != *start {
                        return Err(DurabilityError::Corrupt {
                            file: path.display().to_string(),
                            offset: SEGMENT_HEADER_LEN,
                            detail: format!(
                                "segment named for seq {start} starts at {}",
                                record.first_seq
                            ),
                        });
                    }
                }
                if let Some(expected) = expected_next {
                    if record.first_seq != expected {
                        return Err(DurabilityError::SequenceGap {
                            expected,
                            found: record.first_seq,
                            file: path.display().to_string(),
                        });
                    }
                }
                let record_end = record.first_seq + record.events.len() as u64;
                expected_next = Some(record_end);
                stats.next_seq = stats.next_seq.max(record_end);
                if record_end <= from_seq {
                    continue; // entirely below the watermark
                }
                if record.first_seq > from_seq && stats.events_replayed == 0 {
                    return Err(DurabilityError::SequenceGap {
                        expected: from_seq,
                        found: record.first_seq,
                        file: path.display().to_string(),
                    });
                }
                let skip = from_seq.saturating_sub(record.first_seq) as usize;
                let first_visited = record.first_seq + skip as u64;
                let events: Vec<UpdateEvent> = if skip == 0 {
                    record.events
                } else {
                    record.events.into_iter().skip(skip).collect()
                };
                stats.events_replayed += events.len() as u64;
                visit(first_visited, events).map_err(DurabilityError::Replay)?;
            }
        }
        Ok(stats)
    }

    /// Decode every record (for tests and tooling).
    pub fn records(&self) -> Result<(Vec<WalRecord>, bool), DurabilityError> {
        let mut out = Vec::new();
        let last = self.segments.len().saturating_sub(1);
        let mut torn = false;
        for (i, (_, path)) in self.segments.iter().enumerate() {
            let scan = scan_segment(self.vfs.as_ref(), path, self.fingerprint, i == last)?;
            torn |= scan.torn;
            out.extend(scan.records);
        }
        Ok((out, torn))
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Appends framed event batches to the newest segment, rotating at a size
/// threshold. See [`FsyncPolicy`] for the durability/throughput trade-off.
pub struct WalWriter {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    file: Box<dyn VfsFile>,
    /// Bytes currently in the open segment (header included).
    segment_len: u64,
    rotate_at: u64,
    next_seq: u64,
    fingerprint: u64,
    policy: FsyncPolicy,
    bytes_written: u64,
    needs_sync: bool,
    /// Group-commit window under [`FsyncPolicy::Always`]
    /// ([`WalWriter::set_group_commit_window`]); `ZERO` = sync every append.
    group_window: Duration,
    /// When the open group-commit window expires; `None` when no append's
    /// fsync is currently deferred.
    window_deadline: Option<Instant>,
    /// Appends whose inline fsync was coalesced into a group-commit window.
    coalesced_syncs: u64,
    /// Held for the writer's lifetime: an advisory exclusive lock on
    /// `<dir>/wal.lock`, so a second writer (another server instance, or
    /// another process) cannot truncate or interleave with a live log. The OS
    /// releases it when the process dies, so a crash never wedges recovery.
    _lock: File,
}

impl WalWriter {
    /// Open (or create) the WAL in `dir` for appending, resuming at
    /// `expected_next_seq` (one past the owning engine's `events_applied`
    /// watermark). Takes an exclusive advisory lock on the directory and
    /// refuses ([`DurabilityError::Locked`]) if another writer holds it.
    ///
    /// Scans only the final segment: a torn tail left by a crash is truncated
    /// to the last valid record boundary. If the log ends *below*
    /// `expected_next_seq` (possible under [`FsyncPolicy::Never`] after a
    /// machine crash, when a checkpoint outlived unsynced log writes), a fresh
    /// segment is started at the expected sequence — the checkpoint covers the
    /// missing range. A log ending *above* the expected sequence is a caller
    /// error (recovery must replay the log first) and is refused.
    pub fn open(
        dir: &Path,
        fingerprint: u64,
        expected_next_seq: u64,
        policy: FsyncPolicy,
        rotate_at: u64,
    ) -> Result<Self, DurabilityError> {
        let lock = acquire_dir_lock(dir)?;
        Self::open_locked(dir, fingerprint, expected_next_seq, policy, rotate_at, lock)
    }

    /// [`WalWriter::open`] through an explicit [`Vfs`].
    pub fn open_with(
        dir: &Path,
        fingerprint: u64,
        expected_next_seq: u64,
        policy: FsyncPolicy,
        rotate_at: u64,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self, DurabilityError> {
        let lock = acquire_dir_lock(dir)?;
        Self::open_locked_with(
            dir,
            fingerprint,
            expected_next_seq,
            policy,
            rotate_at,
            lock,
            vfs,
        )
    }

    /// [`WalWriter::open`] with a lock already held (from
    /// [`acquire_dir_lock`]) — for callers that must mutate the directory
    /// (tmp cleanup, an initial checkpoint) *between* taking the lock and
    /// opening the log, without a window for a second writer.
    pub fn open_locked(
        dir: &Path,
        fingerprint: u64,
        expected_next_seq: u64,
        policy: FsyncPolicy,
        rotate_at: u64,
        lock: File,
    ) -> Result<Self, DurabilityError> {
        Self::open_locked_with(
            dir,
            fingerprint,
            expected_next_seq,
            policy,
            rotate_at,
            lock,
            crate::vfs::std_vfs(),
        )
    }

    /// [`WalWriter::open_locked`] through an explicit [`Vfs`]. The advisory
    /// lock stays real regardless of the vfs (see the [`crate::vfs`] docs).
    #[allow(clippy::too_many_arguments)]
    pub fn open_locked_with(
        dir: &Path,
        fingerprint: u64,
        expected_next_seq: u64,
        policy: FsyncPolicy,
        rotate_at: u64,
        lock: File,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self, DurabilityError> {
        let segments = list_segments_with(vfs.as_ref(), dir)?;
        let rotate_at = rotate_at.max(1);
        if let Some((start, path)) = segments.last() {
            let scan = scan_segment(vfs.as_ref(), path, fingerprint, true)?;
            if scan.valid_end < SEGMENT_HEADER_LEN {
                // The crash landed inside the 16-byte header itself: the
                // segment holds nothing decodable. Appending after a torn
                // header would corrupt the log, and leaving the file would
                // hard-error the next scan once it is no longer the final
                // segment — remove it and redo the open against what remains.
                vfs.remove_file(path)
                    .map_err(|e| io_err("removing torn segment", path, e))?;
                return Self::open_locked_with(
                    dir,
                    fingerprint,
                    expected_next_seq,
                    policy,
                    rotate_at,
                    lock,
                    vfs,
                );
            }
            let derived_next = scan
                .records
                .last()
                .map(|r| r.first_seq + r.events.len() as u64)
                .unwrap_or(*start);
            if derived_next > expected_next_seq {
                return Err(DurabilityError::Replay(format!(
                    "WAL ends at seq {derived_next} but the engine expects {expected_next_seq}; \
                     recover before appending"
                )));
            }
            if derived_next == expected_next_seq {
                // Append mode: writes always land at the (possibly truncated)
                // end of the file, never over the header.
                let mut file = vfs
                    .open_append(path)
                    .map_err(|e| io_err("opening", path, e))?;
                file.set_len(scan.valid_end)
                    .map_err(|e| io_err("truncating", path, e))?;
                let mut w = WalWriter {
                    dir: dir.to_path_buf(),
                    vfs,
                    file,
                    segment_len: scan.valid_end,
                    rotate_at,
                    next_seq: expected_next_seq,
                    fingerprint,
                    policy,
                    bytes_written: 0,
                    needs_sync: scan.torn,
                    group_window: Duration::ZERO,
                    window_deadline: None,
                    coalesced_syncs: 0,
                    _lock: lock,
                };
                if scan.torn {
                    w.sync()?; // make the truncation durable before appending
                }
                return Ok(w);
            }
            // derived_next < expected_next_seq: the missing range is covered
            // by a checkpoint (see the doc comment); fall through and start a
            // fresh segment at the expected sequence.
        }
        let (file, header_len) = start_segment(vfs.as_ref(), dir, expected_next_seq, fingerprint)?;
        let mut w = WalWriter {
            dir: dir.to_path_buf(),
            vfs,
            file,
            segment_len: SEGMENT_HEADER_LEN,
            rotate_at,
            next_seq: expected_next_seq,
            fingerprint,
            policy,
            bytes_written: header_len,
            needs_sync: true,
            group_window: Duration::ZERO,
            window_deadline: None,
            coalesced_syncs: 0,
            _lock: lock,
        };
        if matches!(w.policy, FsyncPolicy::Always | FsyncPolicy::EveryBatch) {
            w.sync()?;
        }
        Ok(w)
    }

    fn rotate(&mut self) -> Result<(), DurabilityError> {
        self.sync()?; // never leave a finished segment unsynced
        let (file, header_len) = start_segment(
            self.vfs.as_ref(),
            &self.dir,
            self.next_seq,
            self.fingerprint,
        )?;
        self.file = file;
        self.segment_len = SEGMENT_HEADER_LEN;
        self.bytes_written += header_len;
        self.needs_sync = true;
        if matches!(self.policy, FsyncPolicy::Always | FsyncPolicy::EveryBatch) {
            self.sync()?;
        }
        Ok(())
    }

    /// Enable group commit under [`FsyncPolicy::Always`]: appends within
    /// `window` of the first unsynced append defer their fsync and share the
    /// one that closes the window (at expiry, or at the next explicit
    /// [`WalWriter::sync`] — barriers, rotation, clean shutdown). `ZERO`
    /// restores the sync-per-append behavior. No effect under the other
    /// policies, whose boundary sync already coalesces per batch.
    pub fn set_group_commit_window(&mut self, window: Duration) {
        self.group_window = window;
    }

    /// Appends whose inline fsync was coalesced into a group-commit window
    /// since this writer was opened (0 unless a window is configured).
    pub fn coalesced_syncs(&self) -> u64 {
        self.coalesced_syncs
    }

    /// Sequence number the next appended event will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Total bytes appended through this writer (headers included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Append one micro-batch as a single framed record; returns the sequence
    /// number of its first event. Rotates to a new segment first when the
    /// current one has reached the size threshold. Under
    /// [`FsyncPolicy::Always`] the record is fsynced before returning —
    /// unless a group-commit window is configured
    /// ([`WalWriter::set_group_commit_window`]), in which case appends inside
    /// the window defer to one shared sync at its close. Under
    /// [`FsyncPolicy::EveryBatch`] the caller is expected to call
    /// [`WalWriter::sync`] once per drained batch (identical here, where one
    /// append *is* one batch, but cheaper when several appends are coalesced).
    pub fn append(&mut self, events: &[UpdateEvent]) -> Result<u64, DurabilityError> {
        if events.is_empty() {
            return Ok(self.next_seq);
        }
        if self.segment_len > SEGMENT_HEADER_LEN && self.segment_len >= self.rotate_at {
            self.rotate()?;
        }
        let first_seq = self.next_seq;
        // Encode straight into the frame, leaving room for the header, then
        // backfill length + CRC — avoids re-copying the whole payload.
        let mut frame = Vec::with_capacity(events.len() * 32 + 24);
        frame.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
        codec::put_u64(&mut frame, first_seq);
        codec::put_u32(&mut frame, events.len() as u32);
        for ev in events {
            codec::put_event(&mut frame, ev);
        }
        let payload_len = (frame.len() - FRAME_HEADER_LEN) as u32;
        let crc = crc32(&frame[FRAME_HEADER_LEN..]);
        frame[0..4].copy_from_slice(&payload_len.to_le_bytes());
        frame[4..8].copy_from_slice(&crc.to_le_bytes());
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("appending to", &self.dir, e))?;
        self.segment_len += frame.len() as u64;
        self.bytes_written += frame.len() as u64;
        self.next_seq += events.len() as u64;
        self.needs_sync = true;
        if matches!(self.policy, FsyncPolicy::Always) {
            if self.group_window.is_zero() {
                self.sync()?;
            } else {
                // Group commit: defer this append's fsync into the open
                // window; the sync that closes the window (expiry, or any
                // explicit `sync` — barrier, rotation, shutdown) covers it.
                let now = Instant::now();
                match self.window_deadline {
                    None => {
                        self.window_deadline = Some(now + self.group_window);
                        self.coalesced_syncs += 1;
                    }
                    Some(deadline) if now >= deadline => self.sync()?,
                    Some(_) => self.coalesced_syncs += 1,
                }
            }
        }
        Ok(first_seq)
    }

    /// Force appended records to stable storage (no-op when nothing is
    /// pending). Called by the serving layer once per drained micro-batch
    /// under [`FsyncPolicy::EveryBatch`].
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        self.window_deadline = None; // any sync closes the group-commit window
        if self.needs_sync {
            self.file
                .sync_data()
                .map_err(|e| io_err("syncing segment in", &self.dir, e))?;
            self.needs_sync = false;
        }
        Ok(())
    }

    /// Apply the end-of-batch sync required by the configured policy. Under
    /// [`FsyncPolicy::Always`] with a group-commit window this is also where
    /// an expired window is closed, so a quiet stream (appends stopping right
    /// after a window opens) still syncs within one batch drain of expiry.
    pub fn batch_boundary(&mut self) -> Result<(), DurabilityError> {
        match self.policy {
            FsyncPolicy::Always => match self.window_deadline {
                // Synced per append (no window) or still inside the window.
                None => Ok(()),
                Some(deadline) if Instant::now() < deadline => Ok(()),
                Some(_) => self.sync(),
            },
            FsyncPolicy::EveryBatch => self.sync(),
            FsyncPolicy::Never => Ok(()),
        }
    }

    /// Cut the open segment back to the last committed record boundary.
    ///
    /// A failed [`WalWriter::append`] may have left a *partial* frame on disk
    /// (a short write); retrying the append without first truncating would
    /// put a valid record after garbage — mid-log corruption, a hard error on
    /// the next scan. Callers retrying an append in place MUST call this
    /// first and treat its failure as fatal to in-place retry (degrade
    /// instead: see the server's writer loop).
    pub fn truncate_to_boundary(&mut self) -> Result<(), DurabilityError> {
        self.file
            .set_len(self.segment_len)
            .map_err(|e| io_err("truncating segment in", &self.dir, e))?;
        Ok(())
    }

    /// Abandon the open segment and resume on a fresh one starting at
    /// `next_seq` — the re-arm path out of degraded mode.
    ///
    /// Called after a persistent append/sync failure, once a checkpoint at
    /// `next_seq - 1` has been written (the checkpoint covers everything the
    /// abandoned segment may have lost; replay skips segments wholly below
    /// the watermark without scanning them, so a torn tail left behind is
    /// harmless). Best-effort cleanup of the old segment is attempted but its
    /// failure is ignored — the old file is already out of the replay path.
    pub fn rearm(&mut self, next_seq: u64) -> Result<(), DurabilityError> {
        let _ = self.file.set_len(self.segment_len);
        let _ = self.file.sync_data();
        let (file, header_len) =
            start_segment(self.vfs.as_ref(), &self.dir, next_seq, self.fingerprint)?;
        self.file = file;
        self.segment_len = SEGMENT_HEADER_LEN;
        self.bytes_written += header_len;
        self.next_seq = next_seq;
        self.needs_sync = true;
        if matches!(self.policy, FsyncPolicy::Always | FsyncPolicy::EveryBatch) {
            self.sync()?;
        }
        Ok(())
    }
}

/// The sequence number one past the last decodable event in the log, or
/// `None` when the directory holds no segments. Torn-tail tolerant (a torn
/// final record does not count). Lets callers validate that a log is not
/// *ahead* of an engine before mutating the directory in any way.
pub fn log_end_seq(dir: &Path, fingerprint: u64) -> Result<Option<u64>, DurabilityError> {
    log_end_seq_with(&StdVfs, dir, fingerprint)
}

/// [`log_end_seq`] through an explicit [`Vfs`].
pub fn log_end_seq_with(
    vfs: &dyn Vfs,
    dir: &Path,
    fingerprint: u64,
) -> Result<Option<u64>, DurabilityError> {
    let segments = list_segments_with(vfs, dir)?;
    let Some((start, path)) = segments.last() else {
        return Ok(None);
    };
    let scan = scan_segment(vfs, path, fingerprint, true)?;
    Ok(Some(
        scan.records
            .last()
            .map(|r| r.first_seq + r.events.len() as u64)
            .unwrap_or(*start),
    ))
}

/// Take the exclusive advisory writer lock on `dir` (creating the directory
/// and `<dir>/wal.lock` if needed). The lock is released when the returned
/// file is dropped — or by the OS when the process dies, so a crashed holder
/// never blocks recovery. A held lock means a live writer may mutate the
/// directory at any time: take it *before* any cleanup or checkpoint write,
/// not just before appending.
pub fn acquire_dir_lock(dir: &Path) -> Result<File, DurabilityError> {
    fs::create_dir_all(dir).map_err(|e| io_err("creating", dir, e))?;
    let lock_path = dir.join("wal.lock");
    let lock = OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(&lock_path)
        .map_err(|e| io_err("creating", &lock_path, e))?;
    match lock.try_lock() {
        Ok(()) => Ok(lock),
        Err(std::fs::TryLockError::WouldBlock) => Err(DurabilityError::Locked {
            file: lock_path.display().to_string(),
        }),
        Err(std::fs::TryLockError::Error(e)) => Err(io_err("locking", &lock_path, e)),
    }
}

/// Create a segment file with its header; returns the file (in append mode)
/// and the header length.
fn start_segment(
    vfs: &dyn Vfs,
    dir: &Path,
    start: u64,
    fingerprint: u64,
) -> Result<(Box<dyn VfsFile>, u64), DurabilityError> {
    let path = dir.join(segment_name(start));
    // Fresh file, sequential writes from offset 0 through the retained handle.
    let mut file = vfs
        .create(&path)
        .map_err(|e| io_err("creating", &path, e))?;
    let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
    header.extend_from_slice(WAL_MAGIC);
    header.push(FORMAT_VERSION);
    header.push(0);
    codec::put_u64(&mut header, fingerprint);
    file.write_all(&header)
        .map_err(|e| io_err("writing", &path, e))?;
    // Make the new directory entry durable too: an fsynced segment whose name
    // the directory forgot is acknowledged data silently lost after a power
    // cut (record fsyncs flush the inode, not the parent directory).
    vfs.sync_dir(dir)
        .map_err(|e| io_err("syncing directory", dir, e))?;
    Ok((file, SEGMENT_HEADER_LEN))
}

/// Delete segments whose entire event range lies at or below `watermark`
/// (they are covered by a retained checkpoint). The newest segment is always
/// kept — it is the writer's append target. Returns the number removed.
pub fn prune_segments(dir: &Path, watermark: u64) -> Result<usize, DurabilityError> {
    prune_segments_with(&StdVfs, dir, watermark)
}

/// [`prune_segments`] through an explicit [`Vfs`].
pub fn prune_segments_with(
    vfs: &dyn Vfs,
    dir: &Path,
    watermark: u64,
) -> Result<usize, DurabilityError> {
    let segments = list_segments_with(vfs, dir)?;
    let mut removed = 0;
    for window in segments.windows(2) {
        let (_, ref path) = window[0];
        let (next_start, _) = window[1];
        // Segment 0 covers [start, next_start - 1].
        if next_start <= watermark + 1 {
            vfs.remove_file(path)
                .map_err(|e| io_err("pruning", path, e))?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_gmr::Value;

    fn ev(i: i64) -> UpdateEvent {
        UpdateEvent::insert("R", vec![Value::long(i), Value::long(i * 2)])
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dbt-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = tmp_dir("round");
        let mut w = WalWriter::open(&dir, 42, 1, FsyncPolicy::Never, 1 << 20).unwrap();
        w.append(&[ev(1), ev(2)]).unwrap();
        w.append(&[ev(3)]).unwrap();
        w.batch_boundary().unwrap();
        assert_eq!(w.next_seq(), 4);
        assert!(w.bytes_written() > 0);
        drop(w);

        let r = WalReader::open(&dir, 42).unwrap();
        let mut seen = Vec::new();
        let stats = r
            .replay(1, &mut |seq, e| {
                seen.push((seq, e.tuple[0].clone()));
                Ok(())
            })
            .unwrap();
        assert_eq!(stats.events_replayed, 3);
        assert_eq!(stats.next_seq, 4);
        assert!(!stats.torn_tail_dropped);
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[2], (3, Value::long(3)));
        // Replay from the middle.
        let stats = r.replay(3, &mut |_, _| Ok(())).unwrap();
        assert_eq!(stats.events_replayed, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_creates_segments_and_prune_removes_them() {
        let dir = tmp_dir("rotate");
        // Tiny threshold: every record rotates.
        let mut w = WalWriter::open(&dir, 7, 1, FsyncPolicy::Never, 1).unwrap();
        for i in 0..5 {
            w.append(&[ev(i)]).unwrap();
        }
        drop(w);
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 4, "expected rotation, got {segs:?}");
        // All five events still replay, in order.
        let r = WalReader::open(&dir, 7).unwrap();
        let stats = r.replay(1, &mut |_, _| Ok(())).unwrap();
        assert_eq!(stats.events_replayed, 5);
        // Prune below watermark 3: segments covering only seqs ≤ 3 go away.
        let removed = prune_segments(&dir, 3).unwrap();
        assert!(removed > 0);
        let r = WalReader::open(&dir, 7).unwrap();
        let stats = r.replay(4, &mut |_, _| Ok(())).unwrap();
        assert_eq!(stats.events_replayed, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_resumes_sequence() {
        let dir = tmp_dir("reopen");
        let mut w = WalWriter::open(&dir, 1, 1, FsyncPolicy::EveryBatch, 1 << 20).unwrap();
        w.append(&[ev(1), ev(2)]).unwrap();
        w.batch_boundary().unwrap();
        drop(w);
        let mut w = WalWriter::open(&dir, 1, 3, FsyncPolicy::EveryBatch, 1 << 20).unwrap();
        assert_eq!(w.next_seq(), 3);
        w.append(&[ev(3)]).unwrap();
        drop(w);
        let (records, torn) = WalReader::open(&dir, 1).unwrap().records().unwrap();
        assert!(!torn);
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].first_seq, 3);
        // Reopening behind the log is refused.
        assert!(WalWriter::open(&dir, 1, 2, FsyncPolicy::Never, 1 << 20).is_err());
        // Reopening ahead of the log rotates to a fresh segment.
        let w = WalWriter::open(&dir, 1, 10, FsyncPolicy::Never, 1 << 20).unwrap();
        assert_eq!(w.next_seq(), 10);
        drop(w);
        assert_eq!(list_segments(&dir).unwrap().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let dir = tmp_dir("fp");
        let mut w = WalWriter::open(&dir, 5, 1, FsyncPolicy::Never, 1 << 20).unwrap();
        w.append(&[ev(1)]).unwrap();
        drop(w);
        match WalReader::open(&dir, 6).unwrap().records() {
            Err(DurabilityError::FingerprintMismatch {
                expected, found, ..
            }) => {
                assert_eq!((expected, found), (6, 5));
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_reopen() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::open(&dir, 9, 1, FsyncPolicy::Never, 1 << 20).unwrap();
        w.append(&[ev(1)]).unwrap();
        w.append(&[ev(2)]).unwrap();
        drop(w);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        // Chop 3 bytes off the final record.
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let r = WalReader::open(&dir, 9).unwrap();
        let mut n = 0;
        let stats = r
            .replay(1, &mut |_, _| {
                n += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 1, "torn record must be dropped");
        assert!(stats.torn_tail_dropped);
        // A writer reopening at the surviving watermark truncates and resumes.
        let mut w = WalWriter::open(&dir, 9, 2, FsyncPolicy::Never, 1 << 20).unwrap();
        w.append(&[ev(2)]).unwrap();
        drop(w);
        let (records, torn) = WalReader::open(&dir, 9).unwrap().records().unwrap();
        assert!(!torn);
        assert_eq!(records.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_second_live_writer_is_refused() {
        let dir = tmp_dir("lock");
        let w1 = WalWriter::open(&dir, 1, 1, FsyncPolicy::Never, 1 << 20).unwrap();
        match WalWriter::open(&dir, 1, 1, FsyncPolicy::Never, 1 << 20) {
            Err(DurabilityError::Locked { .. }) => {}
            other => panic!("expected Locked, got {:?}", other.map(|_| "writer")),
        }
        drop(w1);
        // The lock dies with its holder.
        WalWriter::open(&dir, 1, 1, FsyncPolicy::Never, 1 << 20).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_header_segment_is_removed_on_reopen() {
        let dir = tmp_dir("tornhdr");
        let mut w = WalWriter::open(&dir, 4, 1, FsyncPolicy::Never, 1 << 20).unwrap();
        w.append(&[ev(1), ev(2)]).unwrap();
        drop(w);
        // Simulate a crash during rotation: the next segment exists but its
        // 16-byte header is torn. (A zero-extended full-length header — the
        // other shape a power cut leaves — must behave identically.)
        fs::write(dir.join(segment_name(3)), [0u8; 64]).unwrap();
        let scan = scan_segment(&StdVfs, &dir.join(segment_name(3)), 4, true).unwrap();
        assert!(scan.torn && scan.records.is_empty() && scan.valid_end == 0);
        fs::write(dir.join(segment_name(3)), &b"DBTWAL"[..5]).unwrap();
        // The reader drops it...
        let r = WalReader::open(&dir, 4).unwrap();
        let stats = r.replay(1, &mut |_, _| Ok(())).unwrap();
        assert_eq!(stats.events_replayed, 2);
        assert!(stats.torn_tail_dropped);
        // ...and a writer reopening must not append after the torn header:
        // the headerless file is removed and appends resume cleanly.
        let mut w = WalWriter::open(&dir, 4, 3, FsyncPolicy::Never, 1 << 20).unwrap();
        w.append(&[ev(3)]).unwrap();
        drop(w);
        let (records, torn) = WalReader::open(&dir, 4).unwrap().records().unwrap();
        assert!(!torn);
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].first_seq, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_filled_tail_is_torn_not_corrupt() {
        // A power cut can extend the file with zeros (size committed before
        // data pages); crc32("") == 0 makes each zero chunk look like a
        // CRC-valid empty record. It must be dropped as a torn tail.
        let dir = tmp_dir("zerotail");
        let mut w = WalWriter::open(&dir, 2, 1, FsyncPolicy::Never, 1 << 20).unwrap();
        w.append(&[ev(1)]).unwrap();
        drop(w);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 64]);
        fs::write(&path, &bytes).unwrap();
        let r = WalReader::open(&dir, 2).unwrap();
        let mut n = 0;
        let stats = r
            .replay(1, &mut |_, _| {
                n += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 1);
        assert!(stats.torn_tail_dropped);
        // And the writer resumes after truncating the zeros away.
        let mut w = WalWriter::open(&dir, 2, 2, FsyncPolicy::Never, 1 << 20).unwrap();
        w.append(&[ev(2)]).unwrap();
        drop(w);
        let (records, torn) = WalReader::open(&dir, 2).unwrap().records().unwrap();
        assert!(!torn);
        assert_eq!(records.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_is_a_hard_error() {
        let dir = tmp_dir("midlog");
        let mut w = WalWriter::open(&dir, 3, 1, FsyncPolicy::Never, 1 << 20).unwrap();
        w.append(&[ev(1)]).unwrap();
        w.append(&[ev(2)]).unwrap();
        drop(w);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        // Flip a byte inside the FIRST record's payload: valid data follows, so
        // this must be a hard error, not a tolerated tail.
        let mut bytes = fs::read(&path).unwrap();
        let idx = SEGMENT_HEADER_LEN as usize + FRAME_HEADER_LEN + 4;
        bytes[idx] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        match WalReader::open(&dir, 3).unwrap().records() {
            Err(DurabilityError::Corrupt { .. }) => {}
            other => panic!("expected hard corruption error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    use std::io;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// [`StdVfs`] that counts `sync_data`/`sync_all` calls on the files it
    /// opens — lets the group-commit tests assert actual fsync traffic.
    #[derive(Debug)]
    struct SyncCountingVfs {
        syncs: Arc<AtomicU64>,
    }

    struct SyncCountingFile {
        inner: Box<dyn VfsFile>,
        syncs: Arc<AtomicU64>,
    }

    impl VfsFile for SyncCountingFile {
        fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
            self.inner.write_all(buf)
        }
        fn sync_data(&mut self) -> io::Result<()> {
            self.syncs.fetch_add(1, Ordering::Relaxed);
            self.inner.sync_data()
        }
        fn sync_all(&mut self) -> io::Result<()> {
            self.syncs.fetch_add(1, Ordering::Relaxed);
            self.inner.sync_all()
        }
        fn set_len(&mut self, len: u64) -> io::Result<()> {
            self.inner.set_len(len)
        }
    }

    impl Vfs for SyncCountingVfs {
        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            StdVfs.read(path)
        }
        fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
            StdVfs.list_dir(dir)
        }
        fn exists(&self, path: &Path) -> bool {
            StdVfs.exists(path)
        }
        fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
            Ok(Box::new(SyncCountingFile {
                inner: StdVfs.open_append(path)?,
                syncs: self.syncs.clone(),
            }))
        }
        fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
            Ok(Box::new(SyncCountingFile {
                inner: StdVfs.create(path)?,
                syncs: self.syncs.clone(),
            }))
        }
        fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
            StdVfs.create_dir_all(dir)
        }
        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            StdVfs.rename(from, to)
        }
        fn remove_file(&self, path: &Path) -> io::Result<()> {
            StdVfs.remove_file(path)
        }
        fn sync_dir(&self, dir: &Path) -> io::Result<()> {
            StdVfs.sync_dir(dir)
        }
    }

    #[test]
    fn group_commit_window_coalesces_always_syncs() {
        let dir = tmp_dir("group-commit");
        let syncs = Arc::new(AtomicU64::new(0));
        let vfs: Arc<dyn Vfs> = Arc::new(SyncCountingVfs {
            syncs: syncs.clone(),
        });
        let mut w =
            WalWriter::open_with(&dir, 9, 1, FsyncPolicy::Always, 1 << 20, vfs.clone()).unwrap();
        // A wide-open window: none of these appends should fsync inline.
        w.set_group_commit_window(Duration::from_secs(3600));
        let baseline = syncs.load(Ordering::Relaxed); // segment-header sync
        for i in 0..10 {
            w.append(&[ev(i)]).unwrap();
            w.batch_boundary().unwrap(); // window still open: must not sync
        }
        assert_eq!(syncs.load(Ordering::Relaxed), baseline, "deferred fsyncs");
        assert_eq!(w.coalesced_syncs(), 10);
        // An explicit sync (the barrier / shutdown path) closes the window
        // with ONE fsync covering all ten appends.
        w.sync().unwrap();
        assert_eq!(syncs.load(Ordering::Relaxed), baseline + 1);
        // The next append opens a fresh window rather than syncing inline.
        w.append(&[ev(10)]).unwrap();
        assert_eq!(syncs.load(Ordering::Relaxed), baseline + 1);
        assert_eq!(w.coalesced_syncs(), 11);
        drop(w);

        // Everything appended is decodable (StdVfs wrote through the page
        // cache regardless of sync timing; this guards the framing).
        let (records, torn) = WalReader::open_with(&dir, 9, vfs)
            .unwrap()
            .records()
            .unwrap();
        assert!(!torn);
        assert_eq!(records.len(), 11);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_expired_window_syncs_at_batch_boundary() {
        let dir = tmp_dir("group-expiry");
        let syncs = Arc::new(AtomicU64::new(0));
        let vfs: Arc<dyn Vfs> = Arc::new(SyncCountingVfs {
            syncs: syncs.clone(),
        });
        let mut w = WalWriter::open_with(&dir, 9, 1, FsyncPolicy::Always, 1 << 20, vfs).unwrap();
        w.set_group_commit_window(Duration::from_millis(1));
        w.append(&[ev(1)]).unwrap(); // opens the 1 ms window
        let baseline = syncs.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(5));
        // Expired: the boundary closes the window with a real fsync.
        w.batch_boundary().unwrap();
        assert_eq!(syncs.load(Ordering::Relaxed), baseline + 1);
        // And with the window closed, the boundary is a no-op again.
        w.batch_boundary().unwrap();
        assert_eq!(syncs.load(Ordering::Relaxed), baseline + 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_window_keeps_sync_per_append() {
        let dir = tmp_dir("group-zero");
        let syncs = Arc::new(AtomicU64::new(0));
        let vfs: Arc<dyn Vfs> = Arc::new(SyncCountingVfs {
            syncs: syncs.clone(),
        });
        let mut w = WalWriter::open_with(&dir, 9, 1, FsyncPolicy::Always, 1 << 20, vfs).unwrap();
        let baseline = syncs.load(Ordering::Relaxed);
        w.append(&[ev(1)]).unwrap();
        w.append(&[ev(2)]).unwrap();
        assert_eq!(syncs.load(Ordering::Relaxed), baseline + 2);
        assert_eq!(w.coalesced_syncs(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
