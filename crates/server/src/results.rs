//! Query-result assembly shared by the single-threaded engine facade and the
//! concurrent reader handles.
//!
//! A SQL query's user-visible result is assembled from one or more maintained
//! views (group-by keys, aggregate views, `AVG` as SUM/COUNT). The assembly
//! logic is independent of *where* the views come from — the live engine or an
//! immutable published snapshot — so it takes a view-lookup closure.

use dbtoaster_gmr::{FastSet, Gmr, Tuple, Value};
use dbtoaster_sql::OutputColumn;
use std::collections::HashMap;

/// One row of a query result: the group-by key followed by the aggregate values.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultRow {
    /// Group-by key values (empty for scalar queries).
    pub key: Vec<Value>,
    /// Aggregate values, in select-list order.
    pub values: Vec<f64>,
}

/// A materialized snapshot of a query result.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultTable {
    /// Column names: group-by columns followed by aggregate columns.
    pub columns: Vec<String>,
    /// Result rows (unordered).
    pub rows: Vec<ResultRow>,
}

impl ResultTable {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the result empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single scalar value of a grand-total query (first aggregate of the only row),
    /// or 0.0 when the result is empty.
    pub fn scalar(&self) -> f64 {
        self.rows
            .first()
            .and_then(|r| r.values.first())
            .copied()
            .unwrap_or(0.0)
    }
}

/// Assemble the result table of one query from its output-column plan.
///
/// `lookup` resolves a maintained view by name (from the live engine or from a
/// snapshot); returning `None` aborts with the missing view's name.
pub fn assemble_result(
    outputs: &[OutputColumn],
    group_by: &[String],
    lookup: &mut dyn FnMut(&str) -> Option<Gmr>,
) -> Result<ResultTable, String> {
    let mut columns: Vec<String> = Vec::new();
    for out in outputs {
        match out {
            OutputColumn::GroupBy { column, .. } => columns.push(column.clone()),
            OutputColumn::Aggregate { column, .. } => columns.push(column.clone()),
            OutputColumn::Average { column, .. } => columns.push(column.clone()),
        }
    }

    // Collect every key that appears in any aggregate view (set-deduplicated;
    // this runs on the concurrent reader polling path).
    let mut keys: Vec<Tuple> = Vec::new();
    let mut seen: FastSet<Tuple> = FastSet::default();
    let mut view_snapshots: HashMap<String, Gmr> = HashMap::new();
    for out in outputs {
        let names: Vec<&str> = match out {
            OutputColumn::Aggregate { view, .. } => vec![view.as_str()],
            OutputColumn::Average {
                sum_view,
                count_view,
                ..
            } => vec![sum_view.as_str(), count_view.as_str()],
            OutputColumn::GroupBy { .. } => vec![],
        };
        for name in names {
            let snapshot = lookup(name).ok_or_else(|| name.to_string())?;
            for (t, _) in snapshot.iter() {
                if seen.insert(t.clone()) {
                    keys.push(t.clone());
                }
            }
            view_snapshots.insert(name.to_string(), snapshot);
        }
    }
    if keys.is_empty() && group_by.is_empty() {
        keys.push(Tuple::new());
    }

    let mut rows = Vec::with_capacity(keys.len());
    for key in keys {
        let mut values = Vec::new();
        for out in outputs {
            match out {
                OutputColumn::GroupBy { .. } => {
                    // Rendered as part of the key; nothing to push here.
                }
                OutputColumn::Aggregate { view, .. } => {
                    values.push(view_snapshots[view.as_str()].get(&key));
                }
                OutputColumn::Average {
                    sum_view,
                    count_view,
                    ..
                } => {
                    let s = view_snapshots[sum_view.as_str()].get(&key);
                    let c = view_snapshots[count_view.as_str()].get(&key);
                    values.push(if c == 0.0 { 0.0 } else { s / c });
                }
            }
        }
        rows.push(ResultRow {
            key: key.to_vec(),
            values,
        });
    }
    Ok(ResultTable { columns, rows })
}
