//! The view server: single-writer ingest, epoch-published snapshots, and
//! output-delta subscriptions.
//!
//! ## Architecture
//!
//! ```text
//!  IngestHandle ──┐                       ┌──> ReaderHandle::snapshot()  (wait-free)
//!  IngestHandle ──┤  bounded MPSC queue   │
//!  IngestHandle ──┴──> [writer thread] ───┤──> ReaderHandle::query(name)
//!                      drains micro-      │
//!                      batches, applies   └──> Subscription::recv()
//!                      deltas, publishes       (per-batch output deltas)
//!                      snapshots
//! ```
//!
//! One writer thread owns the [`Engine`] and is the only mutator. Producers push
//! [`UpdateEvent`]s through a bounded channel ([`IngestHandle::send`] applies
//! backpressure when the queue is full). The writer drains up to
//! [`ServerConfig::max_batch`] queued events at a time, fires the compiled
//! triggers for each, and then **publishes**: it takes an O(#views) snapshot
//! (each view's copy-on-write map is shared, not copied), computes per-query
//! output deltas from the engine's changed-key log, swaps the snapshot into an
//! [`EpochCell`], and fans the deltas out to subscribers.
//!
//! ## Consistency guarantee
//!
//! A [`Snapshot`] is immutable and **batch-atomic**: it reflects all statements
//! of every event up to and including the last event of some micro-batch, and
//! nothing of any later event. Readers can therefore evaluate cross-view
//! invariants (e.g. `SUM(value_view) == events_applied`) on any snapshot and
//! they hold exactly; a torn view is impossible by construction because the
//! writer only publishes between batches. Snapshot acquisition is wait-free and
//! never blocks the writer (see [`crate::swap`] for the reclamation protocol).
//!
//! Subscriptions see the same batch boundaries: each [`OutputDeltaBatch`] carries the
//! epoch of the snapshot it produced, and replaying batches `1..=e` on top of
//! the subscription's baseline snapshot reconstructs the epoch-`e` view state
//! bit-exactly (new multiplicities are copied verbatim from the view, not
//! re-derived).

use crate::http::{HttpConfig, HttpExporter};
use crate::results::{assemble_result, ResultRow, ResultTable};
use crate::swap::EpochCell;
use dbtoaster_agca::eval::{eval_with, matches_pattern, Bindings, EvalError, RelationSource};
use dbtoaster_agca::UpdateEvent;
use dbtoaster_compiler::{BatchStrategy, ProgramExplain, ResultAccess, TriggerProgram, ViewStats};
use dbtoaster_durability::{
    checkpoint, program_fingerprint, DurabilityConfig, DurabilityError, RetryPolicy, Vfs, WalWriter,
};
use dbtoaster_gmr::{FastMap, Gmr, Tuple, Value};
use dbtoaster_runtime::{ChangeSet, Engine, EngineStats, RuntimeError};
use dbtoaster_sql::OutputColumn;
use dbtoaster_telemetry::{
    Counter, MetricsSnapshot, SlowBatchTrace, Stage, Telemetry, TelemetryConfig,
};
use std::fmt;
use std::marker::PhantomData;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError as MpscTrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Sizing knobs for a [`ViewServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Capacity (in messages) of the bounded ingest queue;
    /// [`IngestHandle::send`] blocks (backpressure) when it is full.
    pub queue_capacity: usize,
    /// Maximum events drained into one micro-batch, and the event count that
    /// forces a publish regardless of [`ServerConfig::publish_interval`].
    pub max_batch: usize,
    /// Coalescing window: under sustained load the writer publishes a fresh
    /// snapshot at least this often rather than after every drained batch,
    /// amortizing the per-publish copy-on-write cost. Zero publishes after
    /// every batch. Barriers ([`ViewServer::flush`]) always force a publish,
    /// so staleness is bounded by this interval.
    pub publish_interval: Duration,
    /// When set, the writer appends every drained micro-batch to a write-ahead
    /// log **before** applying it and checkpoints the materialized state off
    /// the hot path; a crashed or killed server then reopens warm through
    /// `dbtoaster_durability::recover` (or `QueryEngineBuilder::open_or_create`).
    pub durability: Option<DurabilityConfig>,
    /// Telemetry knobs (slow-batch threshold, trace ring capacity). The server
    /// always runs with telemetry enabled — stage timings and per-view counters
    /// are how [`ViewServer::metrics`] and [`ViewServer::render_prometheus`]
    /// see inside the writer thread. If the engine already carries an enabled
    /// [`Telemetry`] handle (attached before `spawn`), that handle is reused
    /// and this config is ignored.
    pub telemetry: TelemetryConfig,
    /// When set, [`ViewServer::spawn`] starts the std-only HTTP exporter on
    /// the configured address, serving `/metrics`, `/healthz`, `/views`,
    /// `/explain` and `/traces` from a dedicated listener thread (see
    /// [`HttpConfig`]). The exporter only reads shared state — a stuck or
    /// slow scraper can never block the writer.
    pub http: Option<HttpConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 8192,
            max_batch: 512,
            publish_interval: Duration::from_millis(1),
            durability: None,
            telemetry: TelemetryConfig::default(),
            http: None,
        }
    }
}

/// Errors surfaced by the serving layer.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The named query is not served.
    UnknownQuery(String),
    /// A view referenced by a query plan is missing from the snapshot.
    UnknownView(String),
    /// The query exists but its output is spread over several maintained views
    /// (multiple aggregates, or `AVG` as SUM/COUNT); subscribe to one of the
    /// listed views instead.
    MultiViewOutput {
        /// The query that was asked for.
        query: String,
        /// The individually subscribable backing views.
        views: Vec<String>,
    },
    /// The server's writer thread has shut down.
    Closed,
    /// A runtime error recorded by the writer thread.
    Runtime(RuntimeError),
    /// Evaluating a computed result against a snapshot failed.
    Eval(EvalError),
    /// The durability layer failed (WAL open/append or checkpoint write).
    Durability(DurabilityError),
    /// The HTTP exporter could not bind or start its listener thread.
    Http(String),
    /// A background thread (writer or checkpointer) could not be spawned —
    /// typically resource exhaustion (EAGAIN). The server never starts
    /// half-assembled: a spawn failure is returned from [`ViewServer::spawn`]
    /// instead of panicking the caller.
    Spawn(String),
    /// The requested configuration is not supported by this serving mode
    /// (e.g. durability or a single HTTP exporter under sharded serving).
    Unsupported(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownQuery(q) => write!(f, "unknown query {q}"),
            ServeError::UnknownView(v) => write!(f, "unknown view {v}"),
            ServeError::MultiViewOutput { query, views } => write!(
                f,
                "query {query} is backed by several views; subscribe to one of: {}",
                views.join(", ")
            ),
            ServeError::Closed => write!(f, "view server is shut down"),
            ServeError::Runtime(e) => write!(f, "runtime error: {e}"),
            ServeError::Eval(e) => write!(f, "evaluation error: {e}"),
            ServeError::Durability(e) => write!(f, "durability error: {e}"),
            ServeError::Http(e) => write!(f, "http exporter error: {e}"),
            ServeError::Spawn(e) => write!(f, "thread spawn error: {e}"),
            ServeError::Unsupported(e) => write!(f, "unsupported configuration: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<DurabilityError> for ServeError {
    fn from(e: DurabilityError) -> Self {
        ServeError::Durability(e)
    }
}

/// An immutable, batch-atomic snapshot of every maintained view.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    events_applied: u64,
    degraded: bool,
    views: FastMap<String, Gmr>,
}

impl Snapshot {
    /// The publish epoch (0 = initial state, +1 per published batch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total events applied by the writer when this snapshot was taken.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// `true` while the server is operating degraded: either the writer hit a
    /// runtime error (a failing event may be *partially* applied — there is no
    /// statement rollback — so cross-view invariants are no longer guaranteed
    /// from that point on), or the WAL is currently suspended after an I/O
    /// failure (events are applied in memory while the writer retries and
    /// re-arms; see `/healthz`'s `"degraded"` status). Runtime-error
    /// degradation is sticky; durability degradation clears once a re-arm
    /// restores the log. The first runtime error is available through
    /// `ViewServer::last_error`.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// A maintained view (or stored relation) by name.
    pub fn view(&self, name: &str) -> Option<&Gmr> {
        self.views.get(name)
    }

    /// Assemble a snapshot from already-merged views (the sharded serving
    /// layer's read path; plain servers only receive writer-published
    /// snapshots).
    pub(crate) fn assemble(
        epoch: u64,
        events_applied: u64,
        degraded: bool,
        views: FastMap<String, Gmr>,
    ) -> Snapshot {
        Snapshot {
            epoch,
            events_applied,
            degraded,
            views,
        }
    }

    /// Names of all views in the snapshot (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.views.keys().map(String::as_str)
    }
}

impl RelationSource for Snapshot {
    fn relation_arity(&self, name: &str) -> Option<usize> {
        self.views.get(name).map(|g| g.schema().arity())
    }

    fn for_each_matching(
        &self,
        name: &str,
        pattern: &[Option<Value>],
        visit: &mut dyn FnMut(&[Value], f64),
    ) -> Result<(), EvalError> {
        let g = self
            .views
            .get(name)
            .ok_or_else(|| EvalError::UnknownRelation(name.to_string()))?;
        if !pattern.is_empty() && pattern.iter().all(Option::is_some) {
            // Fully bound: a single map probe instead of a scan.
            let key: Tuple = pattern.iter().map(|p| p.clone().unwrap()).collect();
            let m = g.get(&key);
            if m != 0.0 {
                visit(&key, m);
            }
            return Ok(());
        }
        for (t, m) in g.iter() {
            if matches_pattern(t, pattern) {
                visit(t, m);
            }
        }
        Ok(())
    }
}

/// One output change of a subscribed query: a key moved from `old_mult` to
/// `new_mult` (either side may be 0.0 for appearing/disappearing keys).
#[derive(Clone, Debug, PartialEq)]
pub struct OutputDelta {
    /// The result key (group-by values; empty for scalar queries).
    pub key: Tuple,
    /// Multiplicity before the batch.
    pub old_mult: f64,
    /// Multiplicity after the batch (copied verbatim from the new snapshot).
    pub new_mult: f64,
}

/// The output deltas one micro-batch produced for one subscription. (Not to
/// be confused with the *input*-side [`dbtoaster_agca::DeltaBatch`], the
/// per-relation GMR deltas the writer feeds into the engine.)
#[derive(Clone, Debug)]
pub struct OutputDeltaBatch {
    /// Epoch of the snapshot these deltas lead up to.
    pub epoch: u64,
    /// Changed keys with their old and new multiplicities.
    pub deltas: Vec<OutputDelta>,
}

/// The serving-side description of one query: how to assemble its result table
/// and (via the compiled program) how to read its output for subscriptions.
#[derive(Clone, Debug)]
pub struct ServedQuery {
    /// Query name.
    pub name: String,
    /// Group-by variables (key columns of the maintained views).
    pub group_by: Vec<String>,
    /// Output columns in select-list order (empty when the query was registered
    /// without a SQL plan; results then fall back to the raw result access).
    pub outputs: Vec<OutputColumn>,
}

enum Msg {
    Event(UpdateEvent),
    Events(Vec<UpdateEvent>),
    Barrier(mpsc::Sender<u64>),
    Subscribe(SubscribeReq),
    Stop,
}

struct SubscribeReq {
    access: ResultAccess,
    tx: mpsc::Sender<OutputDeltaBatch>,
    ack: mpsc::Sender<Arc<Snapshot>>,
}

struct Subscriber {
    access: ResultAccess,
    tx: mpsc::Sender<OutputDeltaBatch>,
}

/// Batch-level counters mirrored out of the writer thread.
#[derive(Debug)]
struct StatsCell {
    events: AtomicU64,
    statements: AtomicU64,
    busy_nanos: AtomicU64,
    batches: AtomicU64,
    delta_batches: AtomicU64,
    batch_events_collapsed: AtomicU64,
    snapshots_published: AtomicU64,
    subscriber_deltas: AtomicU64,
    wal_bytes_written: AtomicU64,
    checkpoints_taken: AtomicU64,
    recovery_replayed_events: AtomicU64,
    /// Static per-program count (trigger statements running as compiled
    /// kernels); mirrored so readers see it without touching the engine.
    compiled_triggers: AtomicU64,
    /// Per-strategy relation-run counters (batch-delta / statement-major /
    /// entry-major), mirrored from the engine after each drained batch.
    batch_delta_runs: AtomicU64,
    statement_major_runs: AtomicU64,
    entry_major_runs: AtomicU64,
    /// Watermark (events applied) of the newest successfully written
    /// checkpoint; `/healthz` reports `events - watermark` as checkpoint lag.
    checkpoint_watermark: AtomicU64,
    started: Instant,
}

pub(crate) struct Shared {
    cell: EpochCell<Snapshot>,
    stats: StatsCell,
    queries: FastMap<String, ServedQuery>,
    program: Arc<TriggerProgram>,
    /// The engine's batch-strategy override at spawn time (it cannot change
    /// while the writer owns the engine), so `/explain` reports the dispatch
    /// the writer actually runs.
    forced_strategy: Option<BatchStrategy>,
    /// Is the server durable? Gates the checkpoint-lag readout in `/healthz`.
    durable: bool,
    error: Mutex<Option<RuntimeError>>,
    durability_error: Mutex<Option<DurabilityError>>,
    /// Startup provenance (e.g. a degraded recovery), kept apart from
    /// `durability_error` so it can never mask a later runtime failure.
    durability_warning: Mutex<Option<DurabilityError>>,
    /// Durability is suspended and the writer is retrying/re-arming in the
    /// background (serving continues from memory). Distinct from
    /// `durability_error`, which is the *permanent*-failure latch: `/healthz`
    /// reports `"degraded"` (still 200) here vs `"unhealthy"` (503) there.
    degraded: AtomicBool,
    /// The error that pushed the WAL into degraded mode; cleared by a
    /// successful re-arm.
    degraded_error: Mutex<Option<String>>,
    /// Total durability retries (inline append retries + re-arm attempts).
    durability_retries: AtomicU64,
    /// Unix-epoch seconds of the last armed ↔ degraded/failed transition.
    last_transition_epoch: AtomicU64,
    /// Crash simulation / hard abort: the writer stops at the next loop
    /// iteration without draining the queue or taking a final checkpoint.
    killed: AtomicBool,
    /// Cleared by the writer thread on exit (clean or crashed): the liveness
    /// bit `/healthz` reports.
    writer_alive: AtomicBool,
    /// Events enqueued but not yet drained by the writer (approximate:
    /// producers increment before a blocking send completes).
    queue_depth: AtomicU64,
    /// The telemetry registry shared by the writer thread, the checkpoint
    /// thread and metric readers. Reading a snapshot never blocks the writer.
    tel: Telemetry,
}

/// A concurrent serving wrapper around a compiled engine: one writer thread,
/// any number of lock-free readers and delta subscribers. See the module docs
/// for the architecture and consistency guarantee.
pub struct ViewServer {
    shared: Arc<Shared>,
    tx: SyncSender<Msg>,
    writer: Option<JoinHandle<Engine>>,
    http: Option<HttpExporter>,
}

impl ViewServer {
    /// Start serving: moves `engine` into a dedicated writer thread and
    /// publishes its current state as the epoch-0 snapshot. With
    /// [`ServerConfig::durability`] set, also opens the write-ahead log
    /// (resuming after any torn tail) and writes an initial checkpoint if the
    /// directory has none — failures there are the only error path.
    pub fn spawn(
        mut engine: Engine,
        queries: Vec<ServedQuery>,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        // Change tracking is enabled lazily, once the first subscriber joins;
        // snapshot-only serving pays nothing for the changed-key log.
        engine.set_change_tracking(false);
        engine.take_changes(); // drop changes from any pre-serve processing

        // Reuse a telemetry handle the caller already attached (so their
        // counters keep accumulating); otherwise start a fresh enabled one.
        let tel = match engine.telemetry() {
            Some(t) if t.is_enabled() => t.clone(),
            _ => Telemetry::with_config(config.telemetry.clone()),
        };
        engine.set_telemetry(tel.clone());

        let initial = Arc::new(Snapshot {
            epoch: 0,
            events_applied: engine.stats().events,
            degraded: false,
            views: engine.snapshot(),
        });
        let shared = Arc::new(Shared {
            cell: EpochCell::new(initial.clone()),
            stats: StatsCell {
                events: AtomicU64::new(engine.stats().events),
                statements: AtomicU64::new(engine.stats().statements),
                busy_nanos: AtomicU64::new(engine.stats().busy.as_nanos() as u64),
                batches: AtomicU64::new(0),
                delta_batches: AtomicU64::new(engine.stats().delta_batches),
                batch_events_collapsed: AtomicU64::new(engine.stats().batch_events_collapsed),
                snapshots_published: AtomicU64::new(0),
                subscriber_deltas: AtomicU64::new(0),
                wal_bytes_written: AtomicU64::new(0),
                checkpoints_taken: AtomicU64::new(0),
                recovery_replayed_events: AtomicU64::new(engine.stats().recovery_replayed_events),
                compiled_triggers: AtomicU64::new(engine.stats().compiled_triggers),
                batch_delta_runs: AtomicU64::new(engine.stats().batch_delta_runs),
                statement_major_runs: AtomicU64::new(engine.stats().statement_major_runs),
                entry_major_runs: AtomicU64::new(engine.stats().entry_major_runs),
                checkpoint_watermark: AtomicU64::new(0),
                started: Instant::now(),
            },
            queries: queries.into_iter().map(|q| (q.name.clone(), q)).collect(),
            program: engine.program_shared(),
            forced_strategy: engine.forced_batch_strategy(),
            durable: config.durability.is_some(),
            error: Mutex::new(None),
            durability_error: Mutex::new(None),
            durability_warning: Mutex::new(None),
            degraded: AtomicBool::new(false),
            degraded_error: Mutex::new(None),
            durability_retries: AtomicU64::new(0),
            last_transition_epoch: AtomicU64::new(0),
            killed: AtomicBool::new(false),
            writer_alive: AtomicBool::new(true),
            queue_depth: AtomicU64::new(0),
            tel,
        });
        let durable = match &config.durability {
            Some(cfg) => Some(DurableState::open(cfg, &engine, &shared)?),
            None => None,
        };
        let http = match &config.http {
            Some(hc) => Some(
                HttpExporter::spawn(shared.clone(), hc.clone())
                    .map_err(|e| ServeError::Http(e.to_string()))?,
            ),
            None => None,
        };
        let (tx, rx) = mpsc::sync_channel(config.queue_capacity.max(1));
        let writer = {
            let shared = shared.clone();
            thread::Builder::new()
                .name("dbtoaster-writer".into())
                .spawn(move || writer_loop(engine, rx, shared, initial, config, durable))
                .map_err(|e| ServeError::Spawn(format!("writer thread: {e}")))?
        };
        Ok(ViewServer {
            shared,
            tx,
            writer: Some(writer),
            http,
        })
    }

    /// Start the HTTP exporter after the fact (no-op error if one is already
    /// running); returns the bound address. Prefer [`ServerConfig::http`] so
    /// the endpoints are live from the first event.
    pub fn serve_http(&mut self, config: HttpConfig) -> Result<std::net::SocketAddr, ServeError> {
        if let Some(h) = &self.http {
            return Err(ServeError::Http(format!(
                "exporter already listening on {}",
                h.addr()
            )));
        }
        let h = HttpExporter::spawn(self.shared.clone(), config)
            .map_err(|e| ServeError::Http(e.to_string()))?;
        let addr = h.addr();
        self.http = Some(h);
        Ok(addr)
    }

    /// The HTTP exporter's bound address (useful with a `:0` config port),
    /// `None` when no exporter is running.
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.as_ref().map(|h| h.addr())
    }

    /// A cloneable producer handle onto the bounded ingest queue.
    pub fn handle(&self) -> IngestHandle {
        IngestHandle {
            tx: self.tx.clone(),
            shared: self.shared.clone(),
        }
    }

    /// A new reader handle with its own registered pin slot. One handle serves
    /// one thread; create (or clone) one per reader thread.
    pub fn reader(&self) -> ReaderHandle {
        ReaderHandle {
            pin: self.shared.cell.register_pin(),
            shared: self.shared.clone(),
            _single_thread: PhantomData,
        }
    }

    /// Subscribe to a query's output deltas. The registration travels through
    /// the ingest queue, so the returned subscription's baseline snapshot and
    /// its first delta batch line up exactly: replaying every received batch on
    /// the baseline reconstructs the current result.
    ///
    /// Map-backed queries (the common case) compute deltas from the engine's
    /// changed-key log — O(changed keys) per publish. Queries with
    /// `ResultAccess::Computed` are re-evaluated against the old and new
    /// snapshots on every publish, and snapshot evaluation has no secondary
    /// indexes; keep such subscriptions off large views or widen
    /// [`ServerConfig::publish_interval`].
    pub fn subscribe(&self, query: &str) -> Result<Subscription, ServeError> {
        let access = self.resolve_access(query)?;
        let (tx, rx) = mpsc::channel();
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(Msg::Subscribe(SubscribeReq {
                access,
                tx,
                ack: ack_tx,
            }))
            .map_err(|_| ServeError::Closed)?;
        let baseline = ack_rx.recv().map_err(|_| ServeError::Closed)?;
        Ok(Subscription {
            query: query.to_string(),
            baseline,
            rx,
        })
    }

    /// How a query's output is read, for delta computation.
    fn resolve_access(&self, query: &str) -> Result<ResultAccess, ServeError> {
        // 1. A query served with a SQL plan: a single aggregate output reads its
        //    backing view directly. Multi-aggregate (or AVG) queries spread
        //    their output over several views — each is subscribable on its own,
        //    so point the caller at them instead of a misleading "unknown".
        if let Some(sq) = self.shared.queries.get(query) {
            let aggs: Vec<&OutputColumn> = sq
                .outputs
                .iter()
                .filter(|o| !matches!(o, OutputColumn::GroupBy { .. }))
                .collect();
            if let [OutputColumn::Aggregate { view, .. }] = aggs.as_slice() {
                return Ok(ResultAccess::Map(view.clone()));
            }
            if !aggs.is_empty() {
                let mut views = Vec::new();
                for out in aggs {
                    match out {
                        OutputColumn::Aggregate { view, .. } => views.push(view.clone()),
                        OutputColumn::Average {
                            sum_view,
                            count_view,
                            ..
                        } => {
                            views.push(sum_view.clone());
                            views.push(count_view.clone());
                        }
                        OutputColumn::GroupBy { .. } => {}
                    }
                }
                return Err(ServeError::MultiViewOutput {
                    query: query.to_string(),
                    views,
                });
            }
        }
        // 2. A compiled program result (covers engine-level spawns).
        if let Some(r) = self.shared.program.results.iter().find(|r| r.name == query) {
            return Ok(r.access.clone());
        }
        // 3. A raw maintained view or stored relation.
        if self.shared.cell.load_unpinned().view(query).is_some() {
            return Ok(ResultAccess::Map(query.to_string()));
        }
        Err(ServeError::UnknownQuery(query.to_string()))
    }

    /// Block until every event enqueued before this call is applied and
    /// published; returns the epoch of the covering snapshot.
    pub fn flush(&self) -> Result<u64, ServeError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(Msg::Barrier(ack_tx))
            .map_err(|_| ServeError::Closed)?;
        ack_rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Merged engine + serving statistics (events, batches, publishes,
    /// fan-out, durability counters).
    pub fn stats(&self) -> EngineStats {
        let s = &self.shared.stats;
        EngineStats {
            events: s.events.load(Relaxed),
            statements: s.statements.load(Relaxed),
            busy: Duration::from_nanos(s.busy_nanos.load(Relaxed)),
            started: s.started,
            batches: s.batches.load(Relaxed),
            delta_batches: s.delta_batches.load(Relaxed),
            batch_events_collapsed: s.batch_events_collapsed.load(Relaxed),
            snapshots_published: s.snapshots_published.load(Relaxed),
            subscriber_deltas: s.subscriber_deltas.load(Relaxed),
            wal_bytes_written: s.wal_bytes_written.load(Relaxed),
            checkpoints_taken: s.checkpoints_taken.load(Relaxed),
            recovery_replayed_events: s.recovery_replayed_events.load(Relaxed),
            compiled_triggers: s.compiled_triggers.load(Relaxed),
            batch_delta_runs: s.batch_delta_runs.load(Relaxed),
            statement_major_runs: s.statement_major_runs.load(Relaxed),
            entry_major_runs: s.entry_major_runs.load(Relaxed),
        }
    }

    /// A point-in-time telemetry snapshot: batch-latency percentiles,
    /// per-stage timings (ingest wait, WAL append, kernel execute by strategy,
    /// snapshot publish, fan-out, checkpoint write), per-view counters and
    /// observed map sizes. Taking a snapshot never blocks the writer thread —
    /// histograms and counters are read with relaxed atomic loads.
    ///
    /// The writer folds its thread-local buffers into the shared registry
    /// every few dozen batches (and at every publish), so a snapshot taken
    /// right after [`ViewServer::flush`] covers all applied events.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.tel.snapshot()
    }

    /// [`ViewServer::metrics`] rendered in the Prometheus text exposition
    /// format (`dbtoaster_*` metric families), ready to serve from a
    /// `/metrics` endpoint.
    pub fn render_prometheus(&self) -> String {
        self.metrics().render_prometheus()
    }

    /// EXPLAIN ANALYZE of the served trigger program: the per-statement
    /// operator trees, the batch-dispatch decision (and its reason) per
    /// relation, and live per-view counters joined in from the telemetry
    /// registry. Render with [`ProgramExplain::render_text`] or
    /// [`ProgramExplain::render_json`]; also served over HTTP as `/explain`.
    pub fn explain(&self) -> ProgramExplain {
        explain_program(&self.shared)
    }

    /// Drain the slow-batch trace ring: structured span trees (relation,
    /// strategy, per-statement timings) for every batch that exceeded
    /// [`TelemetryConfig::slow_batch_threshold`] since the last drain.
    pub fn drain_slow_traces(&self) -> Vec<SlowBatchTrace> {
        self.shared.tel.drain_traces()
    }

    /// The server's shared [`Telemetry`] handle, for custom counters or
    /// JSON-line trace export.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.tel
    }

    /// The first runtime error the writer hit, if any. The writer keeps
    /// serving, but a failing event may have been *partially* applied (there
    /// is no statement rollback), so snapshots published after the error carry
    /// [`Snapshot::degraded`] and cross-view invariants are no longer
    /// guaranteed.
    pub fn last_error(&self) -> Option<RuntimeError> {
        self.shared
            .error
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The first durability error hit by the writer or the checkpointer, if
    /// any. After a WAL failure the server keeps serving **in memory only**
    /// (appending stops, snapshots carry [`Snapshot::degraded`]); after a
    /// checkpoint failure the WAL keeps the state recoverable but recovery
    /// will replay from an older watermark.
    pub fn last_durability_error(&self) -> Option<DurabilityError> {
        self.shared
            .durability_error
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// A startup durability warning, if any — recovery provenance such as
    /// skipped damaged checkpoints or replayed poison events, recorded by the
    /// facade through [`ViewServer::record_durability_warning`]. Kept in its
    /// own slot so it can never mask a later *runtime* failure reported by
    /// [`ViewServer::last_durability_error`].
    pub fn durability_warning(&self) -> Option<DurabilityError> {
        self.shared
            .durability_warning
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Record a startup durability warning (does not overwrite an earlier
    /// one), surfaced through [`ViewServer::durability_warning`]. The facade
    /// uses this to carry recovery provenance into the running server, so a
    /// degraded recovery is distinguishable from a clean one.
    pub fn record_durability_warning(&self, e: DurabilityError) {
        self.shared
            .durability_warning
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get_or_insert(e);
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// Events currently queued but not yet drained by the writer.
    pub fn queue_depth(&self) -> u64 {
        self.shared.queue_depth.load(Relaxed)
    }

    /// The `/healthz` body and health verdict, without going through the HTTP
    /// exporter (the sharded serving layer composes these per shard).
    pub fn health_json(&self) -> (bool, String) {
        health_body(&self.shared)
    }

    /// The currently published snapshot, without registering a long-lived
    /// reader pin (a transient pin is used internally; see
    /// [`EpochCell::load_unpinned`]).
    pub fn current_snapshot(&self) -> Arc<Snapshot> {
        self.shared.cell.load_unpinned()
    }

    /// Stop the writer (after it drains messages queued ahead of the stop
    /// request) and take the engine back for single-threaded use. With
    /// durability enabled this is a *clean* shutdown: the WAL is synced and a
    /// final checkpoint is written, so the next open replays nothing.
    pub fn shutdown(mut self) -> Result<Engine, ServeError> {
        let _ = self.tx.send(Msg::Stop);
        let writer = self.writer.take().expect("writer present until shutdown");
        writer.join().map_err(|_| ServeError::Closed)
    }

    /// Hard-stop the writer **without** draining the queue, syncing the WAL or
    /// taking a final checkpoint — the closest a live process can come to
    /// `kill -9`, used to exercise crash recovery (and as a fast abort).
    /// Events accepted but not yet applied are dropped; under a durable
    /// config, reopening the directory recovers exactly the applied prefix.
    pub fn kill(mut self) {
        self.shared.killed.store(true, Relaxed);
        // Wake a writer blocked on an empty queue; if the queue is full the
        // writer is busy and will see the flag at its next loop iteration.
        let _ = self.tx.try_send(Msg::Stop);
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

impl Drop for ViewServer {
    fn drop(&mut self) {
        if let Some(writer) = self.writer.take() {
            let _ = self.tx.send(Msg::Stop);
            let _ = writer.join();
        }
    }
}

/// A cloneable producer handle for the bounded ingest queue.
#[derive(Clone)]
pub struct IngestHandle {
    tx: SyncSender<Msg>,
    /// Keeps the queue-depth gauge `/healthz` reports. Producers increment
    /// *before* a (possibly blocking) send and undo on failure, so the
    /// writer's decrement at drain time can never underflow.
    shared: Arc<Shared>,
}

impl IngestHandle {
    /// Enqueue one update, blocking while the queue is full (backpressure).
    pub fn send(&self, event: UpdateEvent) -> Result<(), ServeError> {
        self.shared.queue_depth.fetch_add(1, Relaxed);
        self.tx.send(Msg::Event(event)).map_err(|_| {
            self.shared.queue_depth.fetch_sub(1, Relaxed);
            ServeError::Closed
        })
    }

    /// Enqueue one update without blocking; hands the event back when the queue
    /// is full or the server is down.
    pub fn try_send(&self, event: UpdateEvent) -> Result<(), TrySendError> {
        self.shared.queue_depth.fetch_add(1, Relaxed);
        self.tx.try_send(Msg::Event(event)).map_err(|e| {
            self.shared.queue_depth.fetch_sub(1, Relaxed);
            match e {
                MpscTrySendError::Full(Msg::Event(ev)) => TrySendError::Full(ev),
                MpscTrySendError::Disconnected(Msg::Event(ev)) => TrySendError::Closed(ev),
                _ => unreachable!("try_send only wraps events"),
            }
        })
    }

    /// Enqueue a stream of updates in chunks, amortizing the per-message queue
    /// cost (one queue slot carries up to 128 events). Blocks on a full queue.
    ///
    /// Returns the number of events accepted into the queue. When the server
    /// goes away mid-stream the error carries the count accepted **before**
    /// the failure, so a durable producer can resume from `accepted` without
    /// double-sending: events of a rejected chunk were *not* enqueued (a chunk
    /// is accepted or rejected atomically) and come back in
    /// [`SendBatchError::unsent`].
    ///
    /// While the writer is retrying a transient WAL failure (or operating
    /// degraded), it drains the queue slower — or not at all during a backoff
    /// sleep — so this call **blocks** once the bounded queue fills:
    /// backpressure, never drops. `accepted` still counts exactly the events
    /// enqueued; whether an accepted event was made durable is reported
    /// through `/healthz` (`"degraded"`) and [`ViewServer::flush`]-visible
    /// snapshots, not through this return value.
    pub fn send_batch(
        &self,
        events: impl IntoIterator<Item = UpdateEvent>,
    ) -> Result<usize, SendBatchError> {
        const CHUNK: usize = 128;
        let mut accepted = 0usize;
        let mut buf: Vec<UpdateEvent> = Vec::with_capacity(CHUNK);
        let send = |chunk: Vec<UpdateEvent>, accepted: &mut usize| -> Result<(), SendBatchError> {
            let n = chunk.len();
            self.shared.queue_depth.fetch_add(n as u64, Relaxed);
            match self.tx.send(Msg::Events(chunk)) {
                Ok(()) => {
                    *accepted += n;
                    Ok(())
                }
                Err(mpsc::SendError(msg)) => {
                    self.shared.queue_depth.fetch_sub(n as u64, Relaxed);
                    Err(SendBatchError {
                        accepted: *accepted,
                        unsent: match msg {
                            Msg::Events(v) => v,
                            _ => unreachable!("send_batch only wraps event chunks"),
                        },
                    })
                }
            }
        };
        for ev in events {
            buf.push(ev);
            if buf.len() == CHUNK {
                let full = std::mem::replace(&mut buf, Vec::with_capacity(CHUNK));
                send(full, &mut accepted)?;
            }
        }
        if !buf.is_empty() {
            send(buf, &mut accepted)?;
        }
        Ok(accepted)
    }
}

/// A [`IngestHandle::send_batch`] that failed part-way: the server shut down
/// after `accepted` events were enqueued.
#[derive(Clone, Debug)]
pub struct SendBatchError {
    /// Events accepted into the queue before the failure.
    pub accepted: usize,
    /// The rejected chunk (up to 128 events) handed back to the caller. Note
    /// that `unsent` covers **only this chunk**: events still inside the
    /// source iterator were never pulled and are not returned — a producer
    /// that hands over its only copy must keep the source until `send_batch`
    /// returns `Ok`, then resume from index `accepted` on failure.
    pub unsent: Vec<UpdateEvent>,
}

impl fmt::Display for SendBatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "view server shut down after accepting {} events ({} returned unsent)",
            self.accepted,
            self.unsent.len()
        )
    }
}

impl std::error::Error for SendBatchError {}

impl From<SendBatchError> for ServeError {
    fn from(_: SendBatchError) -> Self {
        ServeError::Closed
    }
}

/// A rejected [`IngestHandle::try_send`], carrying the event back to the caller.
#[derive(Clone, Debug)]
pub enum TrySendError {
    /// The ingest queue is full.
    Full(UpdateEvent),
    /// The server is shut down.
    Closed(UpdateEvent),
}

/// A lock-free snapshot reader. `Send` but intentionally `!Sync`: each handle
/// owns a pin slot that one thread at a time may use — clone the handle (or
/// call [`ViewServer::reader`]) for every reader thread.
pub struct ReaderHandle {
    shared: Arc<Shared>,
    pin: Arc<AtomicU64>,
    _single_thread: PhantomData<std::cell::Cell<()>>,
}

impl Clone for ReaderHandle {
    fn clone(&self) -> Self {
        ReaderHandle {
            pin: self.shared.cell.register_pin(),
            shared: self.shared.clone(),
            _single_thread: PhantomData,
        }
    }
}

impl ReaderHandle {
    /// Acquire the current snapshot. Wait-free; never blocks the writer.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.cell.load(&self.pin)
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// A maintained view from the current snapshot (O(1): the GMR shares the
    /// snapshot's map).
    pub fn view(&self, name: &str) -> Option<Gmr> {
        self.snapshot().view(name).cloned()
    }

    /// Assemble the full result table of a served query from the current
    /// snapshot. Consistent: every referenced view comes from one snapshot.
    pub fn query(&self, name: &str) -> Result<ResultTable, ServeError> {
        let snap = self.snapshot();
        if let Some(sq) = self.shared.queries.get(name) {
            if !sq.outputs.is_empty() {
                return assemble_result(&sq.outputs, &sq.group_by, &mut |v| snap.view(v).cloned())
                    .map_err(ServeError::UnknownView);
            }
        }
        if let Some(r) = self.shared.program.results.iter().find(|r| r.name == name) {
            let gmr = match &r.access {
                ResultAccess::Map(v) => snap
                    .view(v)
                    .cloned()
                    .ok_or_else(|| ServeError::UnknownView(v.clone()))?,
                ResultAccess::Computed { expr, .. } => {
                    eval_with(expr, &*snap, &mut Bindings::new()).map_err(ServeError::Eval)?
                }
            };
            return Ok(table_from_gmr(name, &gmr));
        }
        match snap.view(name) {
            Some(g) => Ok(table_from_gmr(name, g)),
            None => Err(ServeError::UnknownQuery(name.to_string())),
        }
    }
}

/// Render a raw GMR as a result table: key columns followed by one
/// multiplicity column named after the query.
fn table_from_gmr(name: &str, gmr: &Gmr) -> ResultTable {
    let mut columns: Vec<String> = gmr.schema().columns().to_vec();
    columns.push(name.to_string());
    let rows = gmr
        .iter()
        .map(|(t, m)| ResultRow {
            key: t.to_vec(),
            values: vec![m],
        })
        .collect();
    ResultTable { columns, rows }
}

/// A stream of per-batch output deltas for one query, starting from a baseline
/// snapshot. Replaying every received batch onto the baseline reconstructs the
/// live result exactly.
pub struct Subscription {
    query: String,
    baseline: Arc<Snapshot>,
    rx: Receiver<OutputDeltaBatch>,
}

impl Subscription {
    /// The subscribed query name.
    pub fn query(&self) -> &str {
        &self.query
    }

    /// The snapshot this subscription's delta stream starts from.
    pub fn baseline(&self) -> &Arc<Snapshot> {
        &self.baseline
    }

    /// Wait for the next delta batch — one arrives per published snapshot,
    /// with empty `deltas` when this query's output did not change in that
    /// batch. `None` once the server is shut down and all pending batches
    /// were consumed.
    pub fn recv(&self) -> Option<OutputDeltaBatch> {
        self.rx.recv().ok()
    }

    /// Take the next delta batch if one is ready.
    pub fn try_recv(&self) -> Option<OutputDeltaBatch> {
        self.rx.try_recv().ok()
    }
}

// ---------------------------------------------------------------------------
// Durable pipeline (writer-side WAL + background checkpointer)
// ---------------------------------------------------------------------------

/// A snapshot handed to the checkpoint thread: shared copy-on-write maps, so
/// building the job is O(#views) on the hot path and the serialization cost
/// is paid entirely off it.
struct CkptJob {
    maps: FastMap<String, Gmr>,
    watermark: u64,
}

fn record_durability_error(shared: &Shared, e: DurabilityError) {
    shared
        .durability_error
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .get_or_insert(e);
}

/// Where the WAL stands, as a state the writer moves through — degraded mode
/// is something the server *exits*, not a one-way trip.
///
/// `Armed → Degraded`: a transient append/sync failure survived the bounded
/// inline retries (or made in-place retry unsafe). Ingest keeps flowing and
/// events apply in memory; durability is suspended.
/// `Degraded → Armed`: a re-arm succeeded — a fresh checkpoint at the current
/// watermark captured everything applied while degraded, and the WAL resumed
/// on a fresh segment. Nothing is lost unless the process dies *while*
/// degraded.
/// `→ Failed`: a permanent error (EROFS, permissions). No further retries;
/// the error latches into `ViewServer::last_durability_error` and `/healthz`
/// flips to 503.
enum WalHealth {
    /// Appends flow to the log normally.
    Armed,
    /// Durability suspended; the writer attempts a re-arm once `next_rearm`
    /// passes, doubling `backoff` (capped) after each failed attempt.
    Degraded {
        backoff: Duration,
        next_rearm: Instant,
    },
    /// Permanent failure: durability is off for the rest of the session.
    Failed,
}

/// The writer thread's durable state: the open WAL, a handle to the
/// checkpoint thread, and the self-healing machinery ([`WalHealth`]).
struct DurableState {
    wal: WalWriter,
    ckpt_tx: Option<SyncSender<CkptJob>>,
    ckpt_thread: Option<JoinHandle<()>>,
    checkpoint_every: u64,
    events_since_ckpt: u64,
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    fingerprint: u64,
    retry: RetryPolicy,
    health: WalHealth,
    io_retries: Counter,
    io_errors_transient: Counter,
    io_errors_permanent: Counter,
    degraded_transitions: Counter,
    degraded_gauge: Counter,
    /// Mirrors [`WalWriter::coalesced_syncs`]: appends whose fsync was
    /// absorbed by a group-commit window instead of paid inline.
    group_commit_coalesced: Counter,
}

fn unix_epoch_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

impl DurableState {
    fn open(
        cfg: &DurabilityConfig,
        engine: &Engine,
        shared: &Arc<Shared>,
    ) -> Result<Self, DurabilityError> {
        let fingerprint = program_fingerprint(engine.program());
        let watermark = engine.stats().events;
        // The writer lock comes FIRST — before any directory read or mutation
        // (tmp cleanup, the initial checkpoint, the WAL scan). A second opener
        // racing a live server is refused here, with no window in which it
        // could delete the live checkpointer's in-flight `.tmp` or interleave
        // an initial checkpoint write.
        let lock = dbtoaster_durability::wal::acquire_dir_lock(&cfg.dir)?;
        checkpoint::clean_tmp_files_with(cfg.vfs.as_ref(), &cfg.dir)?;
        let checkpoints = checkpoint::list_checkpoints_with(cfg.vfs.as_ref(), &cfg.dir)?;
        // A checkpoint or WAL *ahead* of this engine means the directory holds
        // state the caller never recovered (durable `serve_with` on a used
        // directory instead of `open_or_create`). Adopting it would fork
        // history: the new WAL would restart below the stale watermark and a
        // later recovery would silently merge old state with the new stream.
        // Both checks run before ANY mutation — a refused open must not leave
        // an initial checkpoint behind for a later recovery to pick up. Only
        // *verified* checkpoints count, mirroring recovery's own fallback
        // policy: a damaged newest file that recovery skipped must not make
        // `open_or_create` refuse its own result.
        let mut newest_verified: Option<u64> = None;
        for (_, path) in &checkpoints {
            match checkpoint::verify_checkpoint_with(cfg.vfs.as_ref(), path, fingerprint) {
                Ok(w) => {
                    newest_verified = Some(w);
                    break;
                }
                Err(e @ DurabilityError::FingerprintMismatch { .. }) => return Err(e),
                Err(e @ DurabilityError::VersionMismatch { .. }) => return Err(e),
                Err(_) => continue, // damaged: recovery skipped it too
            }
        }
        if let Some(newest) = newest_verified {
            if newest > watermark {
                return Err(DurabilityError::Config(format!(
                    "durability dir {} holds a checkpoint at watermark {newest}, ahead of this \
                     engine's {watermark} applied events; recover it first (use open_or_create)",
                    cfg.dir.display()
                )));
            }
        }
        // (Startup-only trade-off: this probe re-reads the final segment that
        // recovery already scanned and that `WalWriter::open_locked` will scan
        // once more. Threading one scan through all three would save at most
        // one segment read per process start — correctness-critical paths stay
        // independent instead.)
        if let Some(end) =
            dbtoaster_durability::wal::log_end_seq_with(cfg.vfs.as_ref(), &cfg.dir, fingerprint)?
        {
            if end > watermark + 1 {
                return Err(DurabilityError::Config(format!(
                    "durability dir {} holds a WAL ending at seq {}, ahead of this engine's \
                     {watermark} applied events; recover it first (use open_or_create)",
                    cfg.dir.display(),
                    end - 1
                )));
            }
        }
        // First durable start (or wiped checkpoints): capture the engine's
        // current state synchronously. Pre-loaded tables and static views
        // never travel through the WAL, so "newest checkpoint + WAL suffix"
        // must be a complete recipe from the very first logged event. The
        // checkpoint is written *before* the WAL is created: a crash in
        // between leaves checkpoint-only state (recovered intact), whereas the
        // reverse order would leave a checkpoint-less WAL that a later
        // recovery would replay against an engine missing the tables.
        if checkpoints.is_empty() {
            let snap = engine.snapshot();
            checkpoint::write_checkpoint_with(
                cfg.vfs.as_ref(),
                &cfg.dir,
                fingerprint,
                watermark,
                snap.iter().map(|(n, g)| (n.as_str(), g)),
            )?;
            shared.stats.checkpoints_taken.fetch_add(1, Relaxed);
        }
        shared
            .stats
            .checkpoint_watermark
            .fetch_max(newest_verified.unwrap_or(watermark), Relaxed);
        let mut wal = WalWriter::open_locked_with(
            &cfg.dir,
            fingerprint,
            watermark + 1,
            cfg.fsync,
            cfg.segment_bytes,
            lock,
            cfg.vfs.clone(),
        )?;
        wal.set_group_commit_window(cfg.group_commit_window);
        let io_retries = shared.tel.counter("io_retries");
        let io_errors_transient = shared.tel.counter("io_errors_transient");
        let io_errors_permanent = shared.tel.counter("io_errors_permanent");
        let degraded_transitions = shared.tel.counter("degraded_transitions");
        let degraded_gauge = shared.tel.gauge("degraded");
        let group_commit_coalesced = shared.tel.counter("wal_group_commit_coalesced_total");
        let (tx, rx) = mpsc::sync_channel::<CkptJob>(1);
        let ckpt_thread = {
            let shared = shared.clone();
            let dir = cfg.dir.clone();
            let keep = cfg.keep_checkpoints;
            let vfs = cfg.vfs.clone();
            let transient = io_errors_transient.clone();
            let permanent = io_errors_permanent.clone();
            thread::Builder::new()
                .name("dbtoaster-ckpt".into())
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let _t = shared.tel.stage_guard(Stage::CheckpointWrite);
                        let res = checkpoint::write_checkpoint_with(
                            vfs.as_ref(),
                            &dir,
                            fingerprint,
                            job.watermark,
                            job.maps.iter().map(|(n, g)| (n.as_str(), g)),
                        )
                        .and_then(|_| {
                            checkpoint::retain_and_prune_wal_with(
                                vfs.as_ref(),
                                &dir,
                                keep,
                                fingerprint,
                            )
                        });
                        match res {
                            Ok(_) => {
                                shared.stats.checkpoints_taken.fetch_add(1, Relaxed);
                                shared
                                    .stats
                                    .checkpoint_watermark
                                    .fetch_max(job.watermark, Relaxed);
                            }
                            // A transient checkpoint failure only delays the
                            // watermark — the WAL still covers everything, so
                            // it is a warning, not a health failure. The next
                            // job retries from scratch. Permanent failures
                            // latch: they would hit every job the same way.
                            Err(e) if e.is_transient() => {
                                transient.inc();
                                shared
                                    .durability_warning
                                    .lock()
                                    .unwrap_or_else(|p| p.into_inner())
                                    .get_or_insert(e);
                            }
                            Err(e) => {
                                permanent.inc();
                                record_durability_error(&shared, e);
                            }
                        }
                    }
                })
                .map_err(|e| DurabilityError::Io {
                    message: format!("spawning checkpoint thread: {e}"),
                    retryable: false,
                })?
        };
        Ok(DurableState {
            wal,
            ckpt_tx: Some(tx),
            ckpt_thread: Some(ckpt_thread),
            checkpoint_every: cfg.checkpoint_every_events.max(1),
            // Replayed events count toward the next checkpoint: without this,
            // a crash-looping server that never applies `checkpoint_every`
            // *new* events between crashes would never advance its watermark,
            // and the WAL (and every recovery) would grow without bound.
            events_since_ckpt: engine.stats().recovery_replayed_events,
            vfs: cfg.vfs.clone(),
            dir: cfg.dir.clone(),
            fingerprint,
            retry: cfg.retry,
            health: WalHealth::Armed,
            io_retries,
            io_errors_transient,
            io_errors_permanent,
            degraded_transitions,
            degraded_gauge,
            group_commit_coalesced,
        })
    }

    fn is_armed(&self) -> bool {
        matches!(self.health, WalHealth::Armed)
    }

    /// Write-ahead: append the micro-batch (and apply the fsync policy's
    /// batch-boundary sync) *before* any of its events touch a view. Returns
    /// `false` when the batch could not be made durable — it is then applied
    /// undurably, the snapshot marked degraded, and a later re-arm's
    /// checkpoint recaptures its effects.
    fn log_batch(&mut self, batch: &[UpdateEvent], engine: &Engine, shared: &Shared) -> bool {
        match self.health {
            WalHealth::Failed => false,
            WalHealth::Armed if batch.is_empty() => true,
            WalHealth::Armed => self.append_armed(batch, shared),
            // Degraded: every writer iteration (even an empty one — barriers,
            // subscribes, publish timeouts) is a chance to re-arm, so recovery
            // of durable operation does not wait for the next event.
            WalHealth::Degraded { .. } => self.try_rearm(batch, engine, shared),
        }
    }

    /// Append under [`WalHealth::Armed`]: bounded in-place retries with
    /// exponential backoff for transient append failures (each retry first
    /// truncates back to the last record boundary — a failed write may have
    /// left a partial frame that a blind retry would bury mid-log). The
    /// writer sleeps through the backoff, so the bounded ingest queue fills
    /// and producers backpressure instead of events being dropped.
    fn append_armed(&mut self, batch: &[UpdateEvent], shared: &Shared) -> bool {
        let _t = shared.tel.stage_guard(Stage::WalAppend);
        let mut backoff = self.retry.initial_backoff;
        let mut attempts = 0u32;
        loop {
            match self.wal.append(batch) {
                Ok(_) => break,
                Err(e) if e.is_transient() && attempts < self.retry.max_inline_retries => {
                    attempts += 1;
                    self.io_errors_transient.inc();
                    self.io_retries.inc();
                    shared.durability_retries.fetch_add(1, Relaxed);
                    if self.wal.truncate_to_boundary().is_err() {
                        // Cannot restore the record boundary: an in-place
                        // retry could land a valid record after garbage.
                        // Abandon the segment through the re-arm path.
                        self.enter_degraded(e, shared);
                        return false;
                    }
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(self.retry.max_backoff);
                }
                Err(e) if e.is_transient() => {
                    self.io_errors_transient.inc();
                    self.enter_degraded(e, shared);
                    return false;
                }
                Err(e) => {
                    self.io_errors_permanent.inc();
                    self.enter_failed(e, shared);
                    return false;
                }
            }
        }
        // Sync failures are NEVER retried in place: after a failed fsync the
        // kernel may drop the dirty pages *and* clear the error flag, so a
        // retried fsync can falsely succeed over lost data (the "fsyncgate"
        // failure mode). A transient sync failure goes straight to degraded —
        // the re-arm rewrites state from a fresh checkpoint instead of
        // trusting the poisoned file.
        match self.wal.batch_boundary() {
            Ok(()) => {
                shared
                    .stats
                    .wal_bytes_written
                    .store(self.wal.bytes_written(), Relaxed);
                self.group_commit_coalesced.set(self.wal.coalesced_syncs());
                true
            }
            Err(e) if e.is_transient() => {
                self.io_errors_transient.inc();
                self.enter_degraded(e, shared);
                false
            }
            Err(e) => {
                self.io_errors_permanent.inc();
                self.enter_failed(e, shared);
                false
            }
        }
    }

    /// Close any open group-commit window before a barrier is acknowledged:
    /// a `flush()` ack promises the acked epoch's events are durable under
    /// the configured policy, so a deferred fsync must not outlive it. A
    /// no-op when nothing is pending (the window already closed, or no window
    /// is configured — `sync` skips the syscall unless bytes are unsynced).
    /// Sync failures follow the fsyncgate rule (see `append_armed`): straight
    /// to degraded or failed, never retried in place.
    fn barrier_sync(&mut self, shared: &Shared) {
        if !self.is_armed() {
            return;
        }
        match self.wal.sync() {
            Ok(()) => {}
            Err(e) if e.is_transient() => {
                self.io_errors_transient.inc();
                self.enter_degraded(e, shared);
            }
            Err(e) => {
                self.io_errors_permanent.inc();
                self.enter_failed(e, shared);
            }
        }
    }

    /// One re-arm attempt out of degraded mode (rate-limited by the backoff
    /// deadline): checkpoint the engine's *current* state — capturing every
    /// event applied undurably while degraded — then abandon the poisoned
    /// segment and resume the WAL on a fresh one right above the checkpoint.
    /// The order matters: the checkpoint must land first, because the fresh
    /// segment starts *after* the degraded-period events and only the
    /// checkpoint covers them.
    fn try_rearm(&mut self, batch: &[UpdateEvent], engine: &Engine, shared: &Shared) -> bool {
        let WalHealth::Degraded {
            backoff,
            next_rearm,
        } = self.health
        else {
            return false;
        };
        if Instant::now() < next_rearm {
            return false;
        }
        self.io_retries.inc();
        shared.durability_retries.fetch_add(1, Relaxed);
        let watermark = engine.stats().events;
        let snap = engine.snapshot();
        let res = checkpoint::write_checkpoint_with(
            self.vfs.as_ref(),
            &self.dir,
            self.fingerprint,
            watermark,
            snap.iter().map(|(n, g)| (n.as_str(), g)),
        )
        .and_then(|_| self.wal.rearm(watermark + 1));
        match res {
            Ok(()) => {
                shared.stats.checkpoints_taken.fetch_add(1, Relaxed);
                shared
                    .stats
                    .checkpoint_watermark
                    .fetch_max(watermark, Relaxed);
                self.events_since_ckpt = 0;
                self.exit_degraded(shared);
                // Durable again: the triggering batch still has to hit the log
                // before it is applied.
                if batch.is_empty() {
                    true
                } else {
                    self.append_armed(batch, shared)
                }
            }
            Err(e) if e.is_transient() => {
                self.io_errors_transient.inc();
                let next = (backoff * 2).min(self.retry.max_backoff);
                self.health = WalHealth::Degraded {
                    backoff: next,
                    next_rearm: Instant::now() + next,
                };
                *shared
                    .degraded_error
                    .lock()
                    .unwrap_or_else(|p| p.into_inner()) = Some(e.to_string());
                false
            }
            Err(e) => {
                self.io_errors_permanent.inc();
                self.enter_failed(e, shared);
                false
            }
        }
    }

    fn enter_degraded(&mut self, e: DurabilityError, shared: &Shared) {
        let backoff = self.retry.initial_backoff;
        self.health = WalHealth::Degraded {
            backoff,
            next_rearm: Instant::now() + backoff,
        };
        self.degraded_transitions.inc();
        self.degraded_gauge.set(1);
        shared.degraded.store(true, Relaxed);
        shared
            .last_transition_epoch
            .store(unix_epoch_secs(), Relaxed);
        *shared
            .degraded_error
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = Some(e.to_string());
    }

    fn exit_degraded(&mut self, shared: &Shared) {
        self.health = WalHealth::Armed;
        self.degraded_transitions.inc();
        self.degraded_gauge.set(0);
        shared.degraded.store(false, Relaxed);
        shared
            .last_transition_epoch
            .store(unix_epoch_secs(), Relaxed);
        *shared
            .degraded_error
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = None;
    }

    fn enter_failed(&mut self, e: DurabilityError, shared: &Shared) {
        self.health = WalHealth::Failed;
        self.degraded_transitions.inc();
        self.degraded_gauge.set(0);
        shared.degraded.store(false, Relaxed);
        shared
            .last_transition_epoch
            .store(unix_epoch_secs(), Relaxed);
        record_durability_error(shared, e);
    }

    /// Hand a checkpoint job to the background thread once enough events have
    /// accumulated. If the previous checkpoint is still being written the
    /// attempt is skipped and retried after the next batch — the writer never
    /// waits on checkpoint I/O.
    fn maybe_checkpoint(&mut self, engine: &Engine, applied: u64) {
        self.events_since_ckpt += applied;
        if !self.is_armed() || self.events_since_ckpt < self.checkpoint_every {
            return;
        }
        let job = CkptJob {
            maps: engine.snapshot(),
            watermark: engine.stats().events,
        };
        if let Some(tx) = &self.ckpt_tx {
            if tx.try_send(job).is_ok() {
                self.events_since_ckpt = 0;
            }
        }
    }

    /// Tear down the pipeline. A clean shutdown syncs the WAL and writes a
    /// final checkpoint (so the next open replays nothing); a crash
    /// ([`ViewServer::kill`]) skips both, leaving exactly what a dead process
    /// would have left.
    fn shutdown(mut self, engine: &Engine, clean: bool, shared: &Shared) {
        if clean && self.is_armed() {
            if let Err(e) = self.wal.sync() {
                record_durability_error(shared, e);
            }
            if let Some(tx) = &self.ckpt_tx {
                let _ = tx.send(CkptJob {
                    maps: engine.snapshot(),
                    watermark: engine.stats().events,
                });
            }
        }
        self.ckpt_tx = None; // closes the channel; the thread drains and exits
        if let Some(t) = self.ckpt_thread.take() {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Writer thread
// ---------------------------------------------------------------------------

fn writer_loop(
    mut engine: Engine,
    rx: Receiver<Msg>,
    shared: Arc<Shared>,
    mut last: Arc<Snapshot>,
    config: ServerConfig,
    mut durable: Option<DurableState>,
) -> Engine {
    use std::sync::mpsc::RecvTimeoutError;

    let max_batch = config.max_batch.max(1);
    let mut subscribers: Vec<Subscriber> = Vec::new();
    // Recycled input-side delta batch (per-relation GMR deltas); rebuilt from
    // each drained micro-batch with zero steady-state allocation.
    let mut delta = dbtoaster_agca::DeltaBatch::new();
    // Continue from the engine's pre-serve processing time so the mirrored
    // busy counter never goes backwards.
    let mut serve_busy = engine.stats().busy;
    let mut epoch = 0u64;
    let mut batch: Vec<UpdateEvent> = Vec::with_capacity(max_batch);
    // Events applied but not yet published, with their merged changed-key log.
    // Publishing is *coalesced*: under sustained load the writer publishes once
    // per `publish_interval` (or every `max_batch` events, whichever comes
    // first) instead of after every drained batch, amortizing the per-publish
    // copy-on-write cost while keeping snapshot staleness bounded.
    let mut pending = ChangeSet::default();
    let mut pending_events = 0u64;
    let mut last_publish = Instant::now();
    let mut stop = false;
    let mut disconnected = false;
    let mut tracking = false;
    let mut degraded = false;

    while !stop && !disconnected {
        // Crash simulation / hard abort: stop here, mid-stream, without
        // draining the queue. Durable teardown below skips the final sync
        // and checkpoint on this path.
        if shared.killed.load(Relaxed) {
            break;
        }
        // Wait for work; with unpublished events, wait at most until the
        // publish deadline so idle periods cannot leave stale snapshots.
        // The wait itself is a telemetry stage: high ingest-queue wait with
        // low kernel time means the server is starved, not slow.
        let first = {
            let _t = shared.tel.stage_guard(Stage::IngestWait);
            if pending_events == 0 {
                match rx.recv() {
                    Ok(m) => Some(m),
                    Err(_) => {
                        disconnected = true; // every producer handle is gone
                        None
                    }
                }
            } else {
                let wait = config
                    .publish_interval
                    .saturating_sub(last_publish.elapsed());
                match rx.recv_timeout(wait) {
                    Ok(m) => Some(m),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        disconnected = true;
                        None
                    }
                }
            }
        };

        batch.clear();
        let mut barriers: Vec<mpsc::Sender<u64>> = Vec::new();
        let mut joining: Vec<SubscribeReq> = Vec::new();
        let mut staged = first;
        while let Some(msg) = staged.take() {
            match msg {
                Msg::Event(ev) => batch.push(ev),
                Msg::Events(evs) => batch.extend(evs),
                Msg::Barrier(tx) => barriers.push(tx),
                Msg::Subscribe(req) => joining.push(req),
                Msg::Stop => {
                    stop = true;
                    break;
                }
            }
            if batch.len() >= max_batch {
                break;
            }
            staged = rx.try_recv().ok();
        }

        let t0 = Instant::now();
        // Write-ahead: the batch must be on the log (synced per the fsync
        // policy) before any of its statements run, so no published snapshot
        // can ever reflect an event the log does not contain.
        if let Some(d) = durable.as_mut() {
            // Called even with an empty batch: in degraded mode every writer
            // iteration doubles as a re-arm tick. The return value is not a
            // latch any more — snapshot degradation is read off the health
            // state below, so a successful re-arm clears it.
            d.log_batch(&batch, &engine, &shared);
        }
        let drained = batch.len() as u64;
        if drained > 0 {
            // Producers incremented before enqueueing, so the gauge holds at
            // least `drained` here.
            shared.queue_depth.fetch_sub(drained, Relaxed);
        }
        if !batch.is_empty() {
            // Coalesced publication now also means coalesced *computation*:
            // the drained micro-batch becomes one DeltaBatch of per-relation
            // GMR deltas, processed with per-batch (not per-event) kernel
            // dispatch. WAL replay rebuilds the same DeltaBatch per logged
            // record, so live and recovered state stay bit-exact. The events
            // were already logged above, so their tuples can be *moved* into
            // the delta keys.
            delta.clear();
            for ev in batch.drain(..) {
                delta.push_owned(ev);
            }
            let report = engine.process_batch(&delta);
            if let Some(e) = report.first_error {
                degraded = true;
                // Durable serving only: a failing event still consumes its
                // slot in the stream — the WAL numbered it, so the `events`
                // watermark must advance past it or every later checkpoint
                // would lag the log and recovery would re-apply (or re-trip
                // over) the poison event. Without a WAL, `events` keeps its
                // original meaning of successfully applied events.
                if durable.is_some() {
                    engine.stats_mut().events += report.failed_events;
                }
                let mut slot = shared.error.lock().unwrap_or_else(|p| p.into_inner());
                slot.get_or_insert(e);
            }
        }
        pending.merge(engine.take_changes());
        pending_events += drained;
        if drained > 0 {
            engine.stats_mut().batches += 1;
            shared.stats.batches.fetch_add(1, Relaxed);
        }

        // Joining subscribers force a publish so their baseline snapshot covers
        // every event processed before change tracking turns on for them.
        let due = pending_events > 0
            && (stop
                || disconnected
                || !barriers.is_empty()
                || !joining.is_empty()
                || pending_events >= max_batch as u64
                || last_publish.elapsed() >= config.publish_interval);
        if due {
            epoch += 1;
            let t_pub = Instant::now();
            let snap = Arc::new(Snapshot {
                epoch,
                events_applied: engine.stats().events,
                // Runtime-error degradation (`degraded`) is sticky; durability
                // degradation tracks the WAL health live, so a re-arm clears
                // it from the next published snapshot on.
                degraded: degraded || durable.as_ref().is_some_and(|d| !d.is_armed()),
                views: engine.snapshot(),
            });
            let snap_cost = t_pub.elapsed();
            let changes = std::mem::take(&mut pending);
            pending_events = 0;
            let fanned = {
                let _t = shared.tel.stage_guard(Stage::Fanout);
                fan_out(&mut subscribers, &changes, &last, &snap, epoch, &shared)
            };
            let t_swap = Instant::now();
            shared.cell.publish(snap.clone());
            // Snapshot construction (the O(#views) copy-on-write clone) plus
            // the epoch swap; fan-out is timed separately above.
            shared
                .tel
                .record_stage(Stage::SnapshotPublish, snap_cost + t_swap.elapsed());
            last = snap;
            last_publish = Instant::now();

            let stats = engine.stats_mut();
            stats.snapshots_published += 1;
            stats.subscriber_deltas += fanned;
            shared.stats.snapshots_published.fetch_add(1, Relaxed);
            shared.stats.subscriber_deltas.fetch_add(fanned, Relaxed);
            // Fold the engine's thread-local telemetry buffers into the shared
            // registry at every publish, so a barrier-acked reader's
            // `metrics()` covers all its events.
            engine.flush_telemetry();
        }
        // Checkpoint accounting rides the batch boundary: the O(#views)
        // snapshot handoff happens here, the serialization in the checkpoint
        // thread.
        if let Some(d) = durable.as_mut() {
            if drained > 0 {
                d.maybe_checkpoint(&engine, drained);
            }
        }
        serve_busy += t0.elapsed();

        // Mirror the stats before acking barriers so a caller returning from
        // `flush()` observes counters that cover its events.
        let s = engine.stats();
        shared.stats.events.store(s.events, Relaxed);
        shared.stats.statements.store(s.statements, Relaxed);
        shared.stats.delta_batches.store(s.delta_batches, Relaxed);
        shared
            .stats
            .batch_events_collapsed
            .store(s.batch_events_collapsed, Relaxed);
        shared
            .stats
            .batch_delta_runs
            .store(s.batch_delta_runs, Relaxed);
        shared
            .stats
            .statement_major_runs
            .store(s.statement_major_runs, Relaxed);
        shared
            .stats
            .entry_major_runs
            .store(s.entry_major_runs, Relaxed);
        shared
            .stats
            .busy_nanos
            .store(serve_busy.as_nanos() as u64, Relaxed);

        for req in joining.drain(..) {
            // The baseline is the last published snapshot: the subscriber's
            // first delta batch is computed against exactly that state.
            let _ = req.ack.send(last.clone());
            subscribers.push(Subscriber {
                access: req.access,
                tx: req.tx,
            });
        }
        if !barriers.is_empty() {
            // A barrier ack asserts durability up to `epoch` under the
            // configured policy — close any open group-commit window first.
            if let Some(d) = durable.as_mut() {
                d.barrier_sync(&shared);
            }
        }
        for tx in barriers.drain(..) {
            // `due` above guarantees all events ahead of this barrier are
            // published, so `epoch` covers them.
            let _ = tx.send(epoch);
        }

        // The changed-key log only costs while someone consumes it. Subscriber
        // arrivals and departures both coincide with a publish, so `pending`
        // is empty at every toggle and no window of changes is lost.
        let want_tracking = !subscribers.is_empty();
        if want_tracking != tracking {
            engine.set_change_tracking(want_tracking);
            tracking = want_tracking;
        }
    }
    engine.flush_telemetry(); // final fold so post-shutdown metrics are complete
    shared.writer_alive.store(false, Relaxed);
    let crashed = shared.killed.load(Relaxed);
    if let Some(d) = durable.take() {
        d.shutdown(&engine, !crashed, &shared);
    }
    // Fold the durability counters into the engine's own stats so a
    // `shutdown()` caller gets the complete picture.
    let s = engine.stats_mut();
    s.wal_bytes_written = shared.stats.wal_bytes_written.load(Relaxed);
    s.checkpoints_taken = shared.stats.checkpoints_taken.load(Relaxed);
    engine
}

/// Compute and deliver each subscriber's delta batch, dropping subscribers
/// whose receiver is gone; returns the number of delta records delivered.
/// Every subscriber receives a message per publish (empty when its query's
/// output did not change), which doubles as the liveness probe that lets the
/// writer prune dropped subscribers and turn change tracking back off.
fn fan_out(
    subscribers: &mut Vec<Subscriber>,
    changes: &ChangeSet,
    old: &Snapshot,
    new: &Snapshot,
    epoch: u64,
    shared: &Shared,
) -> u64 {
    let mut fanned = 0u64;
    subscribers.retain(|sub| {
        let deltas = match output_deltas(&sub.access, changes, old, new) {
            Ok(deltas) => deltas,
            Err(e) => {
                // A failed evaluation must not masquerade as "no changes":
                // record it and drop nothing — the subscriber keeps its stream
                // and the error surfaces through `last_error`.
                let mut slot = shared.error.lock().unwrap_or_else(|p| p.into_inner());
                slot.get_or_insert(RuntimeError::Eval(e));
                Vec::new()
            }
        };
        let count = deltas.len() as u64;
        if sub.tx.send(OutputDeltaBatch { epoch, deltas }).is_ok() {
            fanned += count;
            true
        } else {
            false
        }
    });
    fanned
}

/// The output deltas of one query between two consecutive snapshots.
fn output_deltas(
    access: &ResultAccess,
    changes: &ChangeSet,
    old: &Snapshot,
    new: &Snapshot,
) -> Result<Vec<OutputDelta>, EvalError> {
    match access {
        ResultAccess::Map(view) => {
            let Some(ch) = changes.views.get(view) else {
                return Ok(Vec::new());
            };
            let old_view = old.view(view);
            let new_view = new.view(view);
            if ch.cleared {
                return Ok(full_diff(old_view, new_view));
            }
            let mut out = Vec::new();
            for key in ch.keys.keys() {
                let o = old_view.map_or(0.0, |g| g.get(key));
                let n = new_view.map_or(0.0, |g| g.get(key));
                if o != n {
                    out.push(OutputDelta {
                        key: key.clone(),
                        old_mult: o,
                        new_mult: n,
                    });
                }
            }
            Ok(out)
        }
        ResultAccess::Computed { expr, .. } => {
            let old_res = eval_with(expr, old, &mut Bindings::new())?;
            let new_res = eval_with(expr, new, &mut Bindings::new())?;
            Ok(full_diff(Some(&old_res), Some(&new_res)))
        }
    }
}

/// Diff two result states key-by-key.
fn full_diff(old: Option<&Gmr>, new: Option<&Gmr>) -> Vec<OutputDelta> {
    let mut out = Vec::new();
    if let Some(o) = old {
        for (key, om) in o.iter() {
            let nm = new.map_or(0.0, |g| g.get(key));
            if om != nm {
                out.push(OutputDelta {
                    key: key.clone(),
                    old_mult: om,
                    new_mult: nm,
                });
            }
        }
    }
    if let Some(n) = new {
        for (key, nm) in n.iter() {
            let missing = old.is_none_or(|g| g.get(key) == 0.0);
            if missing && nm != 0.0 {
                out.push(OutputDelta {
                    key: key.clone(),
                    old_mult: 0.0,
                    new_mult: nm,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// HTTP endpoint bodies (transport lives in `crate::http`)
// ---------------------------------------------------------------------------

fn lock_opt<T: Clone>(m: &Mutex<Option<T>>) -> Option<T> {
    m.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

fn json_opt_string(v: Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", dbtoaster_telemetry::json_escape(&s)),
        None => "null".to_string(),
    }
}

/// The EXPLAIN tree `/explain` serves: the compiled program's operator trees
/// and dispatch decisions, with live per-view counters joined in from the
/// telemetry registry.
pub(crate) fn explain_program(shared: &Shared) -> ProgramExplain {
    let mut ex = dbtoaster_compiler::explain(&shared.program, shared.forced_strategy);
    let snap = shared.tel.snapshot();
    if snap.enabled {
        ex.attach_stats(|name| {
            snap.view(name).map(|v| ViewStats {
                rows_written: v.rows_written,
                probes: v.probes,
                scans: v.scans,
                entries_scanned: v.entries_scanned,
                fused_scans: v.fused_scans,
                banded_hits: v.banded_hits,
                banded_bails: v.banded_bails,
                correction_firings: v.correction_firings,
                map_size: v.map_size,
            })
        });
    }
    ex
}

/// `/metrics`: the Prometheus text exposition of a fresh telemetry snapshot.
pub(crate) fn metrics_body(shared: &Shared) -> String {
    shared.tel.render_prometheus()
}

/// `/healthz`: writer liveness, queue depth, durability lag and the first
/// recorded errors, as one JSON object. The bool is the health verdict
/// (HTTP 200 vs 503): the writer thread is alive and durability has not
/// failed permanently. Three statuses ride on top of it:
/// `"ok"` (200), `"degraded"` (200 — still serving reads and applying
/// events, but durability is suspended while the writer retries/re-arms;
/// `degraded_error`, `durability_retries` and `last_transition_epoch` say
/// why, how hard, and since when), and `"unhealthy"` (503 — the writer died
/// or durability failed permanently).
pub(crate) fn health_body(shared: &Shared) -> (bool, String) {
    let writer_alive = shared.writer_alive.load(Relaxed);
    let killed = shared.killed.load(Relaxed);
    let events = shared.stats.events.load(Relaxed);
    let queue_depth = shared.queue_depth.load(Relaxed);
    let epoch = shared.cell.epoch();
    let wal_bytes = shared.stats.wal_bytes_written.load(Relaxed);
    let checkpoints = shared.stats.checkpoints_taken.load(Relaxed);
    let watermark = shared.stats.checkpoint_watermark.load(Relaxed);
    let error = lock_opt(&shared.error).map(|e| e.to_string());
    let durability_error = lock_opt(&shared.durability_error).map(|e| e.to_string());
    let durability_warning = lock_opt(&shared.durability_warning).map(|e| e.to_string());
    let degraded = shared.degraded.load(Relaxed);
    let degraded_error = lock_opt(&shared.degraded_error);
    let retries = shared.durability_retries.load(Relaxed);
    let transition = shared.last_transition_epoch.load(Relaxed);
    let healthy = writer_alive && durability_error.is_none();
    let body = format!(
        "{{\"status\":\"{status}\",\"writer_alive\":{writer_alive},\"killed\":{killed},\
         \"epoch\":{epoch},\"events_applied\":{events},\"ingest_queue_depth\":{queue_depth},\
         \"durable\":{durable},\"degraded\":{degraded},\"degraded_error\":{dgerr},\
         \"durability_retries\":{retries},\"last_transition_epoch\":{transition},\
         \"wal_bytes_written\":{wal_bytes},\
         \"checkpoints_taken\":{checkpoints},\"checkpoint_lag_events\":{lag},\
         \"last_error\":{error},\"last_durability_error\":{derr},\
         \"durability_warning\":{dwarn}}}",
        status = if !healthy {
            "unhealthy"
        } else if degraded {
            "degraded"
        } else {
            "ok"
        },
        durable = shared.durable,
        dgerr = json_opt_string(degraded_error),
        lag = if shared.durable {
            events.saturating_sub(watermark)
        } else {
            0
        },
        error = json_opt_string(error),
        derr = json_opt_string(durability_error),
        dwarn = json_opt_string(durability_warning),
    );
    (healthy, body)
}

/// `/views`: per-view work counters and observed sizes from a fresh
/// [`MetricsSnapshot`], as one JSON object.
pub(crate) fn views_body(shared: &Shared) -> String {
    use dbtoaster_telemetry::json_escape;
    let snap = shared.tel.snapshot();
    let mut out = format!(
        "{{\"events\":{},\"batches\":{},\"traces_pending\":{},\"views\":[",
        snap.events, snap.batches, snap.traces_pending
    );
    for (i, v) in snap.views.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"rows_written\":{},\"probes\":{},\"scans\":{},\
             \"entries_scanned\":{},\"fused_scans\":{},\"banded_hits\":{},\
             \"banded_bails\":{},\"correction_firings\":{},\"map_size\":{}}}",
            json_escape(&v.name),
            v.rows_written,
            v.probes,
            v.scans,
            v.entries_scanned,
            v.fused_scans,
            v.banded_hits,
            v.banded_bails,
            v.correction_firings,
            v.map_size
        ));
    }
    out.push_str("]}");
    out
}

/// `/traces`: drain the slow-batch ring as JSON lines (empty body when no
/// batch exceeded the threshold since the last drain).
pub(crate) fn traces_body(shared: &Shared) -> String {
    shared.tel.drain_traces_json()
}
