//! # DBToaster view server
//!
//! The paper's pitch is *dynamic, frequently fresh views*: views maintained so
//! cheaply per tuple that applications can read them continuously. This crate
//! supplies the missing serving half — it wraps a compiled engine in a
//! **single-writer / multi-reader** service:
//!
//! * **Ingest** — producers push [`UpdateEvent`](dbtoaster_agca::UpdateEvent)s
//!   into a bounded MPSC queue through cloneable [`IngestHandle`]s; a full
//!   queue applies backpressure instead of growing without bound.
//! * **Writer** — exactly one thread owns the
//!   [`Engine`](dbtoaster_runtime::Engine). It drains micro-batches from the
//!   queue, fires the compiled triggers, and publishes after every batch.
//! * **Snapshots** — publication swaps an `Arc<`[`Snapshot`]`>` into an
//!   [`EpochCell`]: an epoch-pinned pointer cell whose read
//!   path is wait-free and whose publish never waits on readers. Snapshots are
//!   cheap because every view's tuple map is copy-on-write
//!   ([`Gmr::shared_data`](dbtoaster_gmr::Gmr::shared_data)) — taking one is
//!   O(#views), not O(total entries).
//! * **Subscriptions** — consumers register for a query's **output deltas**:
//!   after each batch the writer turns the engine's changed-key log into
//!   `(key, old multiplicity, new multiplicity)` records per subscribed query
//!   and fans them out. Replaying a subscription's batches onto its baseline
//!   snapshot reconstructs the live result bit-exactly.
//! * **Durability** (optional, [`ServerConfig::durability`]) — the writer
//!   appends every micro-batch to a write-ahead log *before* applying it and
//!   checkpoints the materialized maps off the hot path; a crashed server
//!   ([`ViewServer::kill`] simulates one) reopens warm and bit-exact via the
//!   `dbtoaster-durability` crate's recovery.
//!
//! ## Consistency guarantee
//!
//! Snapshots are *batch-atomic*: each reflects a prefix of the ingested event
//! stream aligned on micro-batch boundaries, across **all** views at once.
//! Cross-view invariants (a SUM view agreeing with a COUNT view, a total
//! agreeing with [`Snapshot::events_applied`]) hold on every snapshot a reader
//! can observe; torn reads are impossible because the single writer only
//! publishes between batches and published snapshots are immutable.
//!
//! ## Quickstart
//!
//! ```
//! use dbtoaster_runtime::Engine;
//! use dbtoaster_compiler::{compile, CompileOptions, QuerySpec, RelationMeta, Catalog};
//! use dbtoaster_agca::{Expr, UpdateEvent};
//! use dbtoaster_gmr::Value;
//! use dbtoaster_server::{ServerConfig, ViewServer};
//!
//! let catalog: Catalog = [RelationMeta::stream("R", ["A", "V"])].into_iter().collect();
//! let q = QuerySpec {
//!     name: "total".into(),
//!     out_vars: vec![],
//!     expr: Expr::agg_sum(Vec::<String>::new(), Expr::product_of([
//!         Expr::rel("R", ["A", "V"]),
//!         Expr::var("V"),
//!     ])),
//! };
//! let program = compile(&[q], &catalog, &CompileOptions::default()).unwrap();
//! let engine = Engine::new(program, &catalog);
//!
//! let server = ViewServer::spawn(engine, vec![], ServerConfig::default()).unwrap();
//! let ingest = server.handle();
//! let reader = server.reader();
//! let sub = server.subscribe("total").unwrap();
//!
//! ingest.send(UpdateEvent::insert("R", vec![Value::long(1), Value::long(7)])).unwrap();
//! server.flush().unwrap();
//!
//! assert_eq!(reader.query("total").unwrap().scalar(), 7.0);
//! let batch = sub.recv().unwrap();
//! assert_eq!(batch.deltas[0].new_mult, 7.0);
//! ```

pub mod http;
pub mod results;
pub mod server;
pub mod shard;
pub mod swap;

pub use http::{HttpConfig, HttpExporter};
pub use results::{assemble_result, ResultRow, ResultTable};
pub use server::{
    IngestHandle, OutputDelta, OutputDeltaBatch, ReaderHandle, SendBatchError, ServeError,
    ServedQuery, ServerConfig, Snapshot, Subscription, TrySendError, ViewServer,
};
pub use shard::{ShardStatus, ShardedViewServer};
pub use swap::EpochCell;

// The durability knobs appear in `ServerConfig`; re-export them so serving
// callers need no direct dependency on the durability crate.
pub use dbtoaster_durability::{DurabilityConfig, DurabilityError, FsyncPolicy};
