//! Epoch-pinned Arc publication: the lock-free snapshot cell of the serving layer.
//!
//! [`EpochCell`] holds the current snapshot as an `Arc<T>` published through a raw
//! [`AtomicPtr`]. A **single writer** installs new snapshots with
//! [`EpochCell::publish`]; any number of readers acquire the current snapshot
//! through their registered pin slots (`EpochCell::load`). The read path is
//! wait-free — one pin store, one pointer
//! load, one refcount increment — and, crucially, **never blocks the writer**: the
//! writer's publish is an atomic swap plus a scan over reader pin slots, neither of
//! which waits on readers.
//!
//! ## Why not `RwLock<Arc<T>>`?
//!
//! A reader holding the read lock while it clones the `Arc` stalls the writer's
//! `write()`; under heavy read traffic the writer loses its freshness guarantee.
//! Conversely a plain `AtomicPtr` swap is unsound: between a reader loading the
//! pointer and bumping the refcount, the writer could drop the last reference and
//! free the snapshot.
//!
//! ## The pin protocol
//!
//! Reclamation is deferred with per-reader **pin slots** (a miniature epoch-based
//! scheme):
//!
//! 1. The writer keeps a monotonically increasing epoch counter; `publish` swaps
//!    the pointer and *then* increments the epoch, so "epoch ≥ e" implies the
//!    swap that created epoch `e` is visible.
//! 2. A reader first stores the epoch it observed into its registered pin slot,
//!    then loads the pointer and increments the snapshot's refcount, then resets
//!    the slot to `IDLE`. All accesses are `SeqCst`.
//! 3. The writer retires the previous pointer as `(retire_epoch, ptr)` and frees
//!    retired entries only once every active pin is at least `retire_epoch`.
//!
//! Soundness sketch: a reader can only be holding a retired pointer `P` (retired
//! at epoch `e`) if its pointer load preceded the swap in the `SeqCst` total
//! order; its pin store precedes that load, so any pin scan the writer performs
//! after the swap observes a pin `< e` and keeps `P` alive. When the scan instead
//! observes `IDLE` stored *after* the reader's refcount increment, the `SeqCst`
//! store/load pair makes the increment happen-before the writer's decrement, so
//! the count cannot hit zero under the reader. A stalled reader merely delays
//! reclamation (the retire list grows); it never delays the writer.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Pin-slot value meaning "not currently reading".
pub(crate) const IDLE: u64 = u64::MAX;

/// A single-writer, multi-reader publication cell for `Arc<T>` snapshots.
#[derive(Debug)]
pub struct EpochCell<T> {
    /// Number of publishes so far; the initial value counts as epoch 0.
    epoch: AtomicU64,
    /// `Arc::into_raw` of the currently published snapshot (never null).
    current: AtomicPtr<T>,
    /// Registered reader pin slots. Locked only at reader registration and
    /// during the writer's reclamation scan — never on the read path.
    pins: Mutex<Vec<Arc<AtomicU64>>>,
    /// Retired snapshots awaiting reclamation: `(retire_epoch, pointer)`.
    /// Only the writer pushes/drains; the mutex exists for `Sync`.
    retired: Mutex<Vec<(u64, *const T)>>,
}

// Raw pointers in `current`/`retired` all originate from `Arc<T>`; the cell
// hands out only `Arc<T>` clones, so the usual Arc bounds apply.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// A cell publishing `initial` as epoch 0.
    pub fn new(initial: Arc<T>) -> Self {
        EpochCell {
            epoch: AtomicU64::new(0),
            current: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
            pins: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Register a pin slot for a new reader. The slot must be used by one
    /// thread at a time (enforced by `ReaderHandle` being `!Sync`).
    pub(crate) fn register_pin(&self) -> Arc<AtomicU64> {
        let slot = Arc::new(AtomicU64::new(IDLE));
        let mut pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        // Prune slots of dropped readers here as well as in `publish`, so a
        // registration-heavy, publish-free workload cannot grow the registry.
        pins.retain(|p| Arc::strong_count(p) > 1);
        pins.push(slot.clone());
        slot
    }

    /// Publish a new snapshot. **Single writer only.** Wait-free with respect to
    /// readers: swaps the pointer, bumps the epoch, then reclaims whatever
    /// retired snapshots no active pin can still reference.
    pub fn publish(&self, next: Arc<T>) {
        let raw = Arc::into_raw(next) as *mut T;
        let old = self.current.swap(raw, SeqCst);
        let retire_epoch = self.epoch.fetch_add(1, SeqCst) + 1;
        let mut retired = self.retired.lock().unwrap_or_else(|e| e.into_inner());
        retired.push((retire_epoch, old as *const T));
        let min_pin = {
            let mut pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
            // Prune slots whose reader handle is gone (we hold the only Arc).
            pins.retain(|p| Arc::strong_count(p) > 1);
            pins.iter()
                .map(|p| p.load(SeqCst))
                .filter(|&e| e != IDLE)
                .min()
                .unwrap_or(IDLE)
        };
        retired.retain(|&(e, ptr)| {
            if e <= min_pin {
                // No active reader pinned an epoch before `e`: the pointer is
                // unreachable and this is the last owner of its refcount.
                unsafe { drop(Arc::from_raw(ptr)) };
                false
            } else {
                true
            }
        });
    }

    /// Acquire the current snapshot through a registered pin slot. Wait-free.
    pub(crate) fn load(&self, pin: &AtomicU64) -> Arc<T> {
        let e = self.epoch.load(SeqCst);
        pin.store(e, SeqCst);
        let p = self.current.load(SeqCst);
        // Safe: `p` came from `Arc::into_raw` and our pin (stored before the
        // load, both SeqCst) keeps the writer from reclaiming it — see the
        // module docs for the full argument.
        let arc = unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        };
        pin.store(IDLE, SeqCst);
        arc
    }

    /// Acquire the current snapshot without a registered pin, by briefly
    /// registering one. Slower than a pinned load; for occasional
    /// (non-reader-handle) callers like `stats` endpoints.
    pub fn load_unpinned(&self) -> Arc<T> {
        let slot = self.register_pin();
        let arc = self.load(&slot);
        drop(slot); // the writer's next scan prunes the slot
        arc
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        let cur = *self.current.get_mut();
        unsafe { drop(Arc::from_raw(cur as *const T)) };
        let retired = self.retired.get_mut().unwrap_or_else(|e| e.into_inner());
        for (_, ptr) in retired.drain(..) {
            unsafe { drop(Arc::from_raw(ptr)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn publish_and_load_round_trip() {
        let cell = EpochCell::new(Arc::new(1u64));
        let pin = cell.register_pin();
        assert_eq!(*cell.load(&pin), 1);
        assert_eq!(cell.epoch(), 0);
        cell.publish(Arc::new(2));
        assert_eq!(*cell.load(&pin), 2);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(*cell.load_unpinned(), 2);
    }

    #[test]
    fn held_snapshot_survives_many_publishes() {
        let cell = EpochCell::new(Arc::new(vec![0u64; 8]));
        let pin = cell.register_pin();
        let held = cell.load(&pin);
        for i in 1..100u64 {
            cell.publish(Arc::new(vec![i; 8]));
        }
        assert_eq!(held[0], 0);
        assert_eq!(cell.load(&pin)[0], 99);
    }

    #[test]
    fn concurrent_readers_see_only_published_values() {
        let cell = Arc::new(EpochCell::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                let stop = stop.clone();
                let pin = cell.register_pin();
                thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(SeqCst) {
                        let v = *cell.load(&pin);
                        assert!(v >= last, "snapshot went backwards: {v} < {last}");
                        last = v;
                    }
                })
            })
            .collect();
        for i in 1..=10_000u64 {
            cell.publish(Arc::new(i));
        }
        stop.store(true, SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*cell.load_unpinned(), 10_000);
    }
}
