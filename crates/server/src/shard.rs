//! # Sharded serving: scatter ingest, barrier flushes, merged reads
//!
//! [`ShardedViewServer`] wraps a [`ShardedEngine`] in one [`ViewServer`] per
//! shard (plus one for the exchange executor when the program has a global
//! slice). Each sub-server keeps the single-writer architecture — the shard
//! layer adds three things:
//!
//! * **Scatter ingest** — [`ShardedViewServer::send_batch`] routes every
//!   event to its owning shard by the partition rule of the compiler's
//!   shardability analysis ([`shard_for`]), preserving relative order within
//!   a shard. When an exchange executor runs, the full batch is also shipped
//!   to it (the delta-exchange path), with the traffic accounted in
//!   [`ExchangeStats`] and as `dbtoaster_exchange_*` counters on `/metrics`.
//! * **Global epoch barrier** — [`ShardedViewServer::flush`] barriers every
//!   shard *and* the executor: when it returns, all events enqueued before
//!   the call are applied and published everywhere. A
//!   [`ShardedViewServer::barrier_snapshot`] taken by the flushing producer
//!   is therefore consistent across views **and** shards: every per-shard
//!   snapshot covers the same scattered prefix of that producer's stream.
//! * **Merged reads** — snapshots and query results merge per-shard view
//!   slices by their [`MapClass`] (partitioned → disjoint union, summed →
//!   GMR addition, replicated → any shard, global → the executor), the same
//!   exactness argument as [`dbtoaster_runtime::shard`].
//!
//! Durability and the single-endpoint HTTP exporter are not supported in
//! sharded mode yet ([`ServeError::Unsupported`]); the `/metrics` and
//! `/healthz` bodies are exposed as methods instead
//! ([`ShardedViewServer::metrics_body`], [`ShardedViewServer::health_json`])
//! with per-shard `shard="…"` labels and per-shard status fields.
//!
//! [`ShardedEngine`]: dbtoaster_runtime::ShardedEngine
//! [`shard_for`]: dbtoaster_runtime::shard_for
//! [`ExchangeStats`]: dbtoaster_runtime::ExchangeStats
//! [`MapClass`]: dbtoaster_compiler::MapClass

use crate::server::{ServeError, ServerConfig, Snapshot, ViewServer};
use dbtoaster_agca::eval::{eval_with, Bindings};
use dbtoaster_agca::UpdateEvent;
use dbtoaster_compiler::shard::{MapClass, ShardPlan};
use dbtoaster_compiler::{ResultAccess, TriggerProgram};
use dbtoaster_gmr::{FastMap, Gmr};
use dbtoaster_runtime::{shard_for, EngineStats, ExchangeStats, RuntimeError, ShardedEngine};
use dbtoaster_telemetry::{merge_prometheus_labeled, Counter};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One row of [`ShardedViewServer::shard_status`]: the per-shard health
/// fields surfaced on `/healthz` (satisfying the ops contract that queue
/// depth, epoch and exchange backlog are observable per shard).
#[derive(Clone, Debug)]
pub struct ShardStatus {
    /// `"shard-N"`, or `"executor"` for the exchange executor.
    pub role: String,
    /// Events queued but not yet drained by this shard's writer.
    pub queue_depth: u64,
    /// This shard's published snapshot epoch.
    pub epoch: u64,
    /// Events applied by this shard's writer.
    pub events_applied: u64,
    /// Is this shard's snapshot degraded (runtime error observed)?
    pub degraded: bool,
}

/// A sharded serving deployment: one writer thread per shard plus an
/// optional exchange executor, with scatter ingest, barrier flushes and
/// merged reads. See the module docs.
pub struct ShardedViewServer {
    plan: ShardPlan,
    program: TriggerProgram,
    /// Maps and stored relations the *local* slice declares (merge routing).
    local_maps: BTreeSet<String>,
    local_stored: BTreeSet<String>,
    shards: Vec<ViewServer>,
    executor: Option<ViewServer>,
    exchange_batches: Counter,
    exchange_entries: Counter,
    exchange_bytes: Counter,
}

impl ShardedViewServer {
    /// Spawn one [`ViewServer`] per shard of `sharded` (plus the executor's).
    ///
    /// `config.durability` and `config.http` must be unset — the WAL is
    /// single-writer-per-directory and the HTTP exporter binds one shared
    /// state; both return [`ServeError::Unsupported`] under sharding.
    pub fn spawn(sharded: ShardedEngine, config: ServerConfig) -> Result<Self, ServeError> {
        if config.durability.is_some() {
            return Err(ServeError::Unsupported(
                "durability under sharded serving (run one durable server, or shard upstream)"
                    .into(),
            ));
        }
        if config.http.is_some() {
            return Err(ServeError::Unsupported(
                "the single-endpoint HTTP exporter under sharded serving (serve \
                 ShardedViewServer::metrics_body / health_json instead)"
                    .into(),
            ));
        }
        let (engines, executor_engine, plan, program) = sharded.into_parts();
        let first = engines.first().expect("at least one shard");
        let local_maps: BTreeSet<String> = first
            .program()
            .maps
            .iter()
            .map(|m| m.name.clone())
            .collect();
        let local_stored: BTreeSet<String> = first.program().stored_relations.clone();
        let mut shards = Vec::with_capacity(engines.len());
        for engine in engines {
            shards.push(ViewServer::spawn(engine, vec![], config.clone())?);
        }
        let executor = match executor_engine {
            Some(engine) => Some(ViewServer::spawn(engine, vec![], config.clone())?),
            None => None,
        };
        // Exchange counters live on the executor's telemetry (the traffic
        // exists only when it does) and render on `/metrics` as
        // `dbtoaster_exchange_*{shard="executor"}`.
        let (exchange_batches, exchange_entries, exchange_bytes) = match &executor {
            Some(ex) => (
                ex.telemetry().counter("exchange_batches_total"),
                ex.telemetry().counter("exchange_entries_total"),
                ex.telemetry().counter("exchange_bytes_total"),
            ),
            None => (Counter::default(), Counter::default(), Counter::default()),
        };
        Ok(ShardedViewServer {
            plan,
            program,
            local_maps,
            local_stored,
            shards,
            executor,
            exchange_batches,
            exchange_entries,
            exchange_bytes,
        })
    }

    /// Number of shards (excluding the executor).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Does this deployment run an exchange executor?
    pub fn has_executor(&self) -> bool {
        self.executor.is_some()
    }

    /// The shardability analysis this deployment runs under.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The full (unsliced) program.
    pub fn program(&self) -> &TriggerProgram {
        &self.program
    }

    /// Exchange-traffic counters (all zero when fully shard-local).
    pub fn exchange_stats(&self) -> ExchangeStats {
        ExchangeStats {
            batches: self.exchange_batches.get(),
            entries: self.exchange_entries.get(),
            bytes: self.exchange_bytes.get(),
        }
    }

    /// Scatter a batch of events to their owning shards (bounded queues —
    /// blocks for backpressure like [`IngestHandle::send_batch`]) and ship
    /// the full batch to the exchange executor when one runs.
    ///
    /// [`IngestHandle::send_batch`]: crate::server::IngestHandle::send_batch
    pub fn send_batch(&self, events: Vec<UpdateEvent>) -> Result<usize, ServeError> {
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<UpdateEvent>> = (0..n).map(|_| Vec::new()).collect();
        if let Some(ex) = &self.executor {
            let mut bytes = 0u64;
            for ev in &events {
                bytes += 8 * (ev.tuple.len() as u64 + 1);
            }
            self.exchange_batches.inc();
            self.exchange_entries.add(events.len() as u64);
            self.exchange_bytes.add(bytes);
            ex.handle()
                .send_batch(events.iter().cloned())
                .map_err(|_| ServeError::Closed)?;
        }
        let total = events.len();
        for ev in events {
            let s = shard_for(&self.plan, &ev, n);
            per_shard[s].push(ev);
        }
        for (i, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            self.shards[i]
                .handle()
                .send_batch(batch)
                .map_err(|_| ServeError::Closed)?;
        }
        Ok(total)
    }

    /// Global epoch barrier: block until every event enqueued (by this
    /// producer) before the call is applied and published on every shard and
    /// on the executor. Returns the per-shard covering epochs, executor last.
    pub fn flush(&self) -> Result<Vec<u64>, ServeError> {
        let mut epochs = Vec::with_capacity(self.shards.len() + 1);
        for s in &self.shards {
            epochs.push(s.flush()?);
        }
        if let Some(ex) = &self.executor {
            epochs.push(ex.flush()?);
        }
        Ok(epochs)
    }

    /// A merged snapshot of the *currently published* per-shard snapshots.
    /// Each constituent is batch-atomic on its shard; for a cut that is also
    /// consistent **across** shards, barrier first (or use
    /// [`ShardedViewServer::barrier_snapshot`]) and keep producers quiescent
    /// for the read.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        let shard_snaps: Vec<Arc<Snapshot>> =
            self.shards.iter().map(|s| s.current_snapshot()).collect();
        let exec_snap = self.executor.as_ref().map(|e| e.current_snapshot());
        let epoch = shard_snaps
            .iter()
            .chain(exec_snap.iter())
            .map(|s| s.epoch())
            .sum();
        let events = shard_snaps.iter().map(|s| s.events_applied()).sum();
        let degraded = shard_snaps
            .iter()
            .chain(exec_snap.iter())
            .any(|s| s.degraded());
        let views = self.merge_views(&shard_snaps, exec_snap.as_ref());
        Arc::new(Snapshot::assemble(epoch, events, degraded, views))
    }

    /// [`ShardedViewServer::flush`] + [`ShardedViewServer::snapshot`]: an
    /// epoch-pinned, cross-view **and** cross-shard consistent cut covering
    /// everything this producer enqueued before the call.
    pub fn barrier_snapshot(&self) -> Result<Arc<Snapshot>, ServeError> {
        self.flush()?;
        Ok(self.snapshot())
    }

    /// Snapshot a query result as a GMR over its output columns, merged
    /// across shards (mirrors `Engine::result` on the merged state).
    pub fn result(&self, query: &str) -> Result<Gmr, ServeError> {
        let qr = self
            .program
            .results
            .iter()
            .find(|r| r.name == query)
            .ok_or_else(|| ServeError::UnknownQuery(query.to_string()))?;
        let snap = self.snapshot();
        match &qr.access {
            ResultAccess::Map(name) => snap
                .view(name)
                .cloned()
                .ok_or_else(|| ServeError::UnknownView(name.clone())),
            ResultAccess::Computed { expr, .. } => {
                eval_with(expr, snap.as_ref(), &mut Bindings::new()).map_err(ServeError::Eval)
            }
        }
    }

    /// Merged engine + serving statistics, summed across shards (the
    /// executor's duplicate copy of the stream is excluded so `events`
    /// counts each ingested event once).
    pub fn stats(&self) -> EngineStats {
        let mut out = self.shards[0].stats();
        for s in &self.shards[1..] {
            let st = s.stats();
            out.events += st.events;
            out.statements += st.statements;
            out.busy += st.busy;
            out.batches += st.batches;
            out.delta_batches += st.delta_batches;
            out.batch_events_collapsed += st.batch_events_collapsed;
            out.snapshots_published += st.snapshots_published;
            out.subscriber_deltas += st.subscriber_deltas;
            out.compiled_triggers += st.compiled_triggers;
            out.batch_delta_runs += st.batch_delta_runs;
            out.statement_major_runs += st.statement_major_runs;
            out.entry_major_runs += st.entry_major_runs;
        }
        out
    }

    /// Per-shard status rows (queue depth, epoch, events, degradation), with
    /// the executor last under the role `"executor"`. The executor's queue
    /// depth is the **exchange backlog** — deltas shipped but not yet
    /// applied.
    pub fn shard_status(&self) -> Vec<ShardStatus> {
        let row = |role: String, s: &ViewServer| {
            let snap = s.current_snapshot();
            ShardStatus {
                role,
                queue_depth: s.queue_depth(),
                epoch: s.epoch(),
                events_applied: snap.events_applied(),
                degraded: snap.degraded(),
            }
        };
        let mut out: Vec<ShardStatus> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| row(format!("shard-{i}"), s))
            .collect();
        if let Some(ex) = &self.executor {
            out.push(row("executor".into(), ex));
        }
        out
    }

    /// The `/healthz` body for the whole deployment: overall verdict (every
    /// writer alive) plus one embedded object per shard with its queue
    /// depth, epoch and the exchange backlog fields.
    pub fn health_json(&self) -> (bool, String) {
        let mut healthy = true;
        let mut parts = Vec::new();
        let mut push = |role: &str, s: &ViewServer| {
            let (ok, body) = s.health_json();
            healthy &= ok;
            parts.push(format!("\"{role}\":{body}"));
        };
        for (i, s) in self.shards.iter().enumerate() {
            push(&format!("shard-{i}"), s);
        }
        if let Some(ex) = &self.executor {
            push("executor", ex);
        }
        let ex_stats = self.exchange_stats();
        let backlog = self.executor.as_ref().map_or(0, |e| e.queue_depth());
        let body = format!(
            "{{\"status\":\"{}\",\"shards\":{},\"exchange_backlog\":{},\
             \"exchange_batches\":{},\"exchange_entries\":{},\"exchange_bytes\":{},{}}}",
            if healthy { "ok" } else { "unhealthy" },
            self.shards.len(),
            backlog,
            ex_stats.batches,
            ex_stats.entries,
            ex_stats.bytes,
            parts.join(","),
        );
        (healthy, body)
    }

    /// The `/metrics` body for the whole deployment: every shard's
    /// Prometheus families merged with a `shard="N"` label (executor under
    /// `shard="executor"`), including the `dbtoaster_exchange_*` counters.
    pub fn metrics_body(&self) -> String {
        let mut parts: Vec<(String, String)> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| (i.to_string(), s.render_prometheus()))
            .collect();
        if let Some(ex) = &self.executor {
            parts.push(("executor".to_string(), ex.render_prometheus()));
        }
        merge_prometheus_labeled("shard", &parts)
    }

    /// The first runtime error recorded by any shard's writer, if any.
    pub fn last_error(&self) -> Option<RuntimeError> {
        self.shards
            .iter()
            .chain(self.executor.iter())
            .find_map(|s| s.last_error())
    }

    /// Stop every writer after draining queued events.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        for s in self.shards.drain(..) {
            s.shutdown()?;
        }
        if let Some(ex) = self.executor.take() {
            ex.shutdown()?;
        }
        Ok(())
    }

    /// Merge per-shard snapshot views by map class (see the module docs and
    /// `dbtoaster_runtime::shard` for the exactness argument).
    fn merge_views(
        &self,
        shards: &[Arc<Snapshot>],
        executor: Option<&Arc<Snapshot>>,
    ) -> FastMap<String, Gmr> {
        let mut names: Vec<&str> = self.program.maps.iter().map(|m| m.name.as_str()).collect();
        names.extend(self.program.stored_relations.iter().map(String::as_str));
        names.extend(self.program.static_tables.iter().map(String::as_str));
        names.sort_unstable();
        names.dedup();
        let sum_over = |name: &str| -> Option<Gmr> {
            let first = shards[0].view(name)?;
            let mut out = Gmr::new(first.schema().clone());
            for s in shards {
                for (t, mult) in s.view(name)?.iter() {
                    out.add_tuple(t.clone(), mult);
                }
            }
            Some(out)
        };
        let mut out = FastMap::default();
        for name in names {
            let merged = if self.program.static_tables.contains(name) {
                shards[0].view(name).cloned()
            } else if self.program.stored_relations.contains(name) {
                if self.local_stored.contains(name) {
                    sum_over(name)
                } else {
                    executor.and_then(|e| e.view(name).cloned())
                }
            } else {
                match self.plan.class(name) {
                    MapClass::Replicated => {
                        if self.local_maps.contains(name) {
                            shards[0].view(name).cloned()
                        } else {
                            executor.and_then(|e| e.view(name).cloned())
                        }
                    }
                    MapClass::Global => executor.and_then(|e| e.view(name).cloned()),
                    MapClass::Partitioned(_) | MapClass::Summed => sum_over(name),
                }
            };
            if let Some(g) = merged {
                out.insert(name.to_string(), g);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_agca::Expr;
    use dbtoaster_compiler::{
        compile, Catalog, CompileMode, CompileOptions, QuerySpec, RelationMeta,
    };
    use dbtoaster_gmr::Value;
    use dbtoaster_runtime::Engine;
    use std::collections::BTreeMap;

    fn catalog() -> Catalog {
        [
            RelationMeta::stream("R", ["A", "B"]),
            RelationMeta::stream("S", ["B", "C"]),
        ]
        .into_iter()
        .collect()
    }

    fn queries() -> Vec<QuerySpec> {
        vec![
            QuerySpec {
                name: "JOINB".into(),
                out_vars: vec!["b".into()],
                expr: Expr::agg_sum(
                    ["b"],
                    Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::rel("S", ["b", "c"])]),
                ),
            },
            QuerySpec {
                name: "CROSS".into(),
                out_vars: vec![],
                expr: Expr::agg_sum(
                    Vec::<String>::new(),
                    Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::rel("R", ["a2", "b2"])]),
                ),
            },
        ]
    }

    fn events() -> Vec<UpdateEvent> {
        let mut out = Vec::new();
        let mut x: i64 = 3;
        for i in 0..150 {
            x = (x * 48271) % 2147483647;
            let a = Value::long(x % 11);
            let b = Value::long((x / 11) % 7);
            if i % 2 == 0 {
                out.push(UpdateEvent::insert("R", vec![a, b]));
            } else {
                out.push(UpdateEvent::insert("S", vec![b, a]));
            }
        }
        out
    }

    fn canon(g: &Gmr) -> BTreeMap<String, f64> {
        g.iter()
            .filter(|(_, m)| *m != 0.0)
            .map(|(t, m)| (format!("{t:?}"), m))
            .collect()
    }

    fn program() -> dbtoaster_compiler::TriggerProgram {
        compile(
            &queries(),
            &catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap()
    }

    #[test]
    fn sharded_server_matches_single_engine() {
        let catalog = catalog();
        let evs = events();
        let mut reference = Engine::new(program(), &catalog);
        for e in &evs {
            reference.process(e).unwrap();
        }

        let sharded = ShardedEngine::new(program(), &catalog, 3);
        let server = ShardedViewServer::spawn(sharded, ServerConfig::default()).unwrap();
        assert!(server.has_executor());
        server.send_batch(evs.clone()).unwrap();
        let snap = server.barrier_snapshot().unwrap();
        assert_eq!(snap.events_applied(), evs.len() as u64);
        for q in ["JOINB", "CROSS"] {
            let want = canon(&reference.result(q).unwrap());
            let got = canon(&server.result(q).unwrap());
            assert_eq!(got, want, "{q}");
        }
        let ex = server.exchange_stats();
        assert!(ex.batches > 0 && ex.entries > 0 && ex.bytes > 0);
        server.shutdown().unwrap();
    }

    #[test]
    fn health_and_metrics_carry_per_shard_fields() {
        let catalog = catalog();
        let sharded = ShardedEngine::new(program(), &catalog, 2);
        let server = ShardedViewServer::spawn(sharded, ServerConfig::default()).unwrap();
        server.send_batch(events()).unwrap();
        server.flush().unwrap();

        let status = server.shard_status();
        assert_eq!(status.len(), 3, "2 shards + executor");
        assert_eq!(status[0].role, "shard-0");
        assert_eq!(status[2].role, "executor");
        assert!(status.iter().all(|s| s.queue_depth == 0), "{status:?}");
        assert!(status.iter().all(|s| s.epoch > 0), "{status:?}");
        let applied: u64 = status[..2].iter().map(|s| s.events_applied).sum();
        assert_eq!(applied, 150);

        let (healthy, body) = server.health_json();
        assert!(healthy, "{body}");
        for needle in [
            "\"shard-0\":{",
            "\"shard-1\":{",
            "\"executor\":{",
            "\"exchange_backlog\":",
            "\"exchange_bytes\":",
            "\"ingest_queue_depth\":",
        ] {
            assert!(body.contains(needle), "missing {needle} in {body}");
        }

        let metrics = server.metrics_body();
        for needle in [
            "shard=\"0\"",
            "shard=\"1\"",
            "shard=\"executor\"",
            "dbtoaster_exchange_bytes_total",
        ] {
            assert!(metrics.contains(needle), "missing {needle}");
        }
        // Families must be declared exactly once despite three renders.
        assert_eq!(metrics.matches("# TYPE dbtoaster_events_total").count(), 1);
        server.shutdown().unwrap();
    }

    #[test]
    fn sharded_spawn_rejects_durability_and_http() {
        let catalog = catalog();
        let sharded = ShardedEngine::new(program(), &catalog, 2);
        let cfg = ServerConfig {
            durability: Some(dbtoaster_durability::DurabilityConfig::new("/tmp/nope")),
            ..ServerConfig::default()
        };
        assert!(matches!(
            ShardedViewServer::spawn(sharded, cfg),
            Err(ServeError::Unsupported(_))
        ));
    }
}
