//! # The observability front door: a std-only HTTP/1.1 exporter
//!
//! A dedicated listener thread serving the server's observability surface
//! over plain HTTP — no TLS, no dependencies, `std::net` only (the workspace
//! builds offline). Endpoints:
//!
//! | path | body | content type |
//! |---|---|---|
//! | `GET /metrics` | Prometheus text exposition | `text/plain; version=0.0.4` |
//! | `GET /healthz` | writer liveness, queue depth, WAL/checkpoint lag, errors | `application/json` |
//! | `GET /views` | per-view work counters and observed map sizes | `application/json` |
//! | `GET /explain` | EXPLAIN ANALYZE of the trigger program (`?format=json` for JSON) | text / JSON |
//! | `GET /traces` | drain of the slow-batch trace ring, one JSON object per line | `application/x-ndjson` |
//!
//! ## Why the writer can never block on a scraper
//!
//! Every endpoint reads *shared* state — relaxed-atomic counters, the epoch
//! cell, the telemetry registry — none of which the writer thread ever waits
//! on. Beyond that structural guarantee, the transport itself is bounded:
//!
//! * **Connection cap** ([`HttpConfig::max_connections`]): each connection is
//!   handled on its own short-lived thread; past the cap the listener answers
//!   `503` immediately instead of queueing work.
//! * **Read/write timeouts** ([`HttpConfig::read_timeout`],
//!   [`HttpConfig::write_timeout`]): a scraper that stops mid-request or
//!   mid-response has its connection dropped; it cannot pin a handler thread.
//! * **Bounded request size**: request heads over 8 KiB are rejected — the
//!   exporter only ever needs a method and a path.
//!
//! The listener itself runs non-blocking accepts with a small poll interval so
//! shutdown (server drop) is prompt without signal machinery.

use crate::server::{explain_program, health_body, metrics_body, traces_body, views_body, Shared};
use dbtoaster_telemetry::PROMETHEUS_CONTENT_TYPE;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Exporter knobs. The default binds an ephemeral loopback port — read the
/// bound address back through `ViewServer::http_addr`.
#[derive(Clone, Debug)]
pub struct HttpConfig {
    /// Listen address, e.g. `127.0.0.1:0` (ephemeral) or `0.0.0.0:9184`.
    pub addr: String,
    /// Connections served concurrently; excess connections get an immediate
    /// `503 Service Unavailable`.
    pub max_connections: usize,
    /// Per-connection cap on reading the request head.
    pub read_timeout: Duration,
    /// Per-connection cap on writing the response.
    pub write_timeout: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 8,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// The running exporter: the listener thread plus its stop flag. Dropping it
/// stops the listener and joins the thread; in-flight connection handlers
/// finish on their own (they hold no server state beyond an `Arc`).
pub struct HttpExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    listener: Option<JoinHandle<()>>,
}

impl HttpExporter {
    /// Bind the configured address and start the listener thread.
    pub(crate) fn spawn(shared: Arc<Shared>, config: HttpConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept + poll keeps shutdown prompt: the thread notices
        // the stop flag within one poll interval instead of hanging in accept.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = stop.clone();
            thread::Builder::new()
                .name("dbtoaster-http".into())
                .spawn(move || accept_loop(listener, shared, config, stop))?
        };
        Ok(HttpExporter {
            addr,
            stop,
            listener: Some(thread),
        })
    }

    /// The bound listen address (resolves `:0` configs to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for HttpExporter {
    fn drop(&mut self) {
        self.stop.store(true, Relaxed);
        if let Some(t) = self.listener.take() {
            let _ = t.join();
        }
    }
}

/// How long the listener sleeps between empty accept polls.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Largest request head the exporter reads before answering 400.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    config: HttpConfig,
    stop: Arc<AtomicBool>,
) {
    let active = Arc::new(AtomicUsize::new(0));
    while !stop.load(Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                if active.fetch_add(1, Relaxed) >= config.max_connections.max(1) {
                    active.fetch_sub(1, Relaxed);
                    let _ = reject_overloaded(stream, &config);
                    continue;
                }
                let shared = shared.clone();
                let config = config.clone();
                let active = active.clone();
                // One short-lived thread per connection, bounded by the cap
                // above. A handler failing to spawn just drops the connection.
                let _ = thread::Builder::new()
                    .name("dbtoaster-http-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &shared, &config);
                        active.fetch_sub(1, Relaxed);
                    });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn reject_overloaded(mut stream: TcpStream, config: &HttpConfig) -> io::Result<()> {
    stream.set_write_timeout(Some(config.write_timeout))?;
    write_response(
        &mut stream,
        503,
        "Service Unavailable",
        "text/plain; charset=utf-8",
        "connection limit reached\n",
    )
}

fn handle_connection(
    mut stream: TcpStream,
    shared: &Shared,
    config: &HttpConfig,
) -> io::Result<()> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let head = match read_request_head(&mut stream) {
        Ok(h) => h,
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
            return write_response(
                &mut stream,
                408,
                "Request Timeout",
                "text/plain; charset=utf-8",
                "timed out reading request\n",
            );
        }
        Err(e) => return Err(e),
    };
    let Some((method, target)) = parse_request_line(&head) else {
        return write_response(
            &mut stream,
            400,
            "Bad Request",
            "text/plain; charset=utf-8",
            "malformed request line\n",
        );
    };
    if method != "GET" {
        return write_response(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let (status, reason, content_type, body) = match path {
        "/metrics" => (200, "OK", PROMETHEUS_CONTENT_TYPE, metrics_body(shared)),
        "/healthz" => {
            let (healthy, body) = health_body(shared);
            if healthy {
                (200, "OK", "application/json", body)
            } else {
                (503, "Service Unavailable", "application/json", body)
            }
        }
        "/views" => (200, "OK", "application/json", views_body(shared)),
        "/explain" => {
            let ex = explain_program(shared);
            if query.split('&').any(|kv| kv == "format=json") {
                (200, "OK", "application/json", ex.render_json())
            } else {
                (200, "OK", "text/plain; charset=utf-8", ex.render_text())
            }
        }
        "/traces" => (200, "OK", "application/x-ndjson", traces_body(shared)),
        _ => (
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "unknown path; try /metrics /healthz /views /explain /traces\n".to_string(),
        ),
    };
    write_response(&mut stream, status, reason, content_type, &body)
}

/// Read until the blank line ending the request head (we never need a body),
/// bounded by [`MAX_REQUEST_BYTES`].
fn read_request_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                "request head too large",
            ));
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// `GET /path HTTP/1.1` → `("GET", "/path")`.
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    Some((method, target))
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
