//! Allocation guard for the observability front door: the compiled per-event
//! hot path must stay **zero-alloc in steady state while the HTTP exporter is
//! live** — a listener thread accepting connections, a scraper hammering
//! `/metrics`, and a feeder keeping the served engine busy.
//!
//! The counting allocator here is *thread-filtering*: only the thread that
//! opted in (the one running the hot path under measurement) counts its
//! allocations, so the exporter's own legitimate allocations — response
//! bodies, per-connection threads — never pollute the measurement and,
//! conversely, cannot mask a hot-path regression.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

static TRACKED_ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TRACK: Cell<bool> = const { Cell::new(false) };
}

struct FilteredCountingAllocator;

unsafe impl GlobalAlloc for FilteredCountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACK.try_with(|t| t.get()).unwrap_or(false) {
            TRACKED_ALLOCS.fetch_add(1, Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACK.try_with(|t| t.get()).unwrap_or(false) {
            TRACKED_ALLOCS.fetch_add(1, Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: FilteredCountingAllocator = FilteredCountingAllocator;

use dbtoaster_agca::{Expr, UpdateEvent};
use dbtoaster_compiler::{compile, Catalog, CompileOptions, QuerySpec, RelationMeta};
use dbtoaster_gmr::Value;
use dbtoaster_runtime::Engine;
use dbtoaster_server::{HttpConfig, ServerConfig, ViewServer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn build_engine() -> Engine {
    let catalog: Catalog = [
        RelationMeta::stream("O", ["OK", "XCH"]),
        RelationMeta::stream("LI", ["OK", "PRICE"]),
    ]
    .into_iter()
    .collect();
    let q = QuerySpec {
        name: "Q".into(),
        out_vars: vec![],
        expr: Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("O", ["ok", "xch"]),
                Expr::rel("LI", ["ok", "price"]),
                Expr::var("xch"),
                Expr::var("price"),
            ]),
        ),
    };
    let program = compile(&[q], &catalog, &CompileOptions::default()).unwrap();
    Engine::new(program, &catalog)
}

/// Steady-state churn: inserts plus matching deletes over a fixed key range.
fn churn_events(keys: i64) -> Vec<UpdateEvent> {
    (0..keys)
        .flat_map(|k| {
            [
                UpdateEvent::insert("O", vec![Value::long(k), Value::double(2.0)]),
                UpdateEvent::insert("LI", vec![Value::long(k), Value::double(10.0)]),
                UpdateEvent::delete("O", vec![Value::long(k), Value::double(2.0)]),
                UpdateEvent::delete("LI", vec![Value::long(k), Value::double(10.0)]),
            ]
        })
        .collect()
}

fn scrape(addr: SocketAddr) -> bool {
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_secs(2)) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    if stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .is_err()
    {
        return false;
    }
    let mut out = String::new();
    stream.read_to_string(&mut out).is_ok() && out.starts_with("HTTP/1.1 200")
}

#[test]
fn hot_path_stays_zero_alloc_while_the_exporter_is_scraped() {
    // Background serving stack: a second engine behind a ViewServer with the
    // exporter enabled, one feeder keeping it busy, one scraper polling
    // /metrics as fast as it can.
    let server = ViewServer::spawn(
        build_engine(),
        vec![],
        ServerConfig {
            http: Some(HttpConfig::default()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.http_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let feeder = {
        let ingest = server.handle();
        let stop = stop.clone();
        thread::spawn(move || {
            let mut k = 0i64;
            while !stop.load(Relaxed) {
                ingest
                    .send(UpdateEvent::insert(
                        "O",
                        vec![Value::long(k % 512), Value::double(1.0)],
                    ))
                    .unwrap();
                k += 1;
            }
        })
    };
    let scrapes = Arc::new(AtomicU64::new(0));
    let scraper = {
        let stop = stop.clone();
        let scrapes = scrapes.clone();
        thread::spawn(move || {
            while !stop.load(Relaxed) {
                if scrape(addr) {
                    scrapes.fetch_add(1, Relaxed);
                }
            }
        })
    };

    // Foreground: the compiled hot path, measured on this thread only.
    let mut engine = build_engine();
    let batch = churn_events(64);
    engine.process_all(&batch).unwrap(); // warm-up: size every buffer
    engine.process_all(&batch).unwrap();

    // Let the scraper land at least one successful scrape before measuring,
    // so the measurement window genuinely overlaps exporter traffic.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while scrapes.load(Relaxed) == 0 && std::time::Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    assert!(scrapes.load(Relaxed) > 0, "scraper never reached /metrics");

    TRACK.with(|t| t.set(true));
    let before = TRACKED_ALLOCS.load(Relaxed);
    engine.process_all(&batch).unwrap();
    let allocs = TRACKED_ALLOCS.load(Relaxed) - before;
    TRACK.with(|t| t.set(false));

    stop.store(true, Relaxed);
    feeder.join().unwrap();
    scraper.join().unwrap();
    let total_scrapes = scrapes.load(Relaxed);
    drop(server);

    assert_eq!(
        allocs,
        0,
        "compiled hot path allocated {allocs} times over {} steady-state events \
         while the exporter served {total_scrapes} scrapes",
        batch.len()
    );
}
