//! Concurrency stress tests for the serving layer.
//!
//! * `concurrent_readers_never_observe_torn_snapshots` — four reader threads
//!   continuously assert a conservation invariant (a SUM view, a COUNT view and
//!   the snapshot's own event counter must all agree) while the writer applies
//!   50k updates. A torn snapshot — one view ahead of another, or a view ahead
//!   of the epoch metadata — fails the assertion immediately.
//! * `subscription_replay_reconstructs_final_view` — replays the output-delta
//!   stream of a group-by query (inserts *and* deletes) on top of the
//!   subscription's baseline and requires bit-exact agreement with the final
//!   view, including the old-multiplicity of every delta record.

use dbtoaster_agca::{Expr, UpdateEvent};
use dbtoaster_compiler::{compile, Catalog, CompileOptions, QuerySpec, RelationMeta, ResultAccess};
use dbtoaster_gmr::{FastMap, Tuple, Value};
use dbtoaster_runtime::Engine;
use dbtoaster_server::{ServerConfig, ViewServer};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::thread;

fn catalog() -> Catalog {
    [RelationMeta::stream("R", ["A", "V"])]
        .into_iter()
        .collect()
}

/// Compile `TOTAL = Sum[](R(a,v) * v)` and `CNT = Sum[](R(a,v))` into one program.
fn conservation_engine() -> (Engine, String, String) {
    let total = QuerySpec {
        name: "TOTAL".into(),
        out_vars: vec![],
        expr: Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([Expr::rel("R", ["a", "v"]), Expr::var("v")]),
        ),
    };
    let cnt = QuerySpec {
        name: "CNT".into(),
        out_vars: vec![],
        expr: Expr::agg_sum(Vec::<String>::new(), Expr::rel("R", ["a", "v"])),
    };
    let program = compile(&[total, cnt], &catalog(), &CompileOptions::default()).unwrap();
    let map_of = |name: &str| -> String {
        match &program
            .results
            .iter()
            .find(|r| r.name == name)
            .expect("result present")
            .access
        {
            ResultAccess::Map(m) => m.clone(),
            ResultAccess::Computed { .. } => panic!("expected map-backed result for {name}"),
        }
    };
    let (total_map, cnt_map) = (map_of("TOTAL"), map_of("CNT"));
    (Engine::new(program, &catalog()), total_map, cnt_map)
}

#[test]
fn concurrent_readers_never_observe_torn_snapshots() {
    const EVENTS: i64 = 50_000;
    let (engine, total_map, cnt_map) = conservation_engine();
    let server = ViewServer::spawn(
        engine,
        vec![],
        ServerConfig {
            queue_capacity: 4096,
            max_batch: 64,
            ..ServerConfig::default()
        },
    )
    .expect("spawn without durability is infallible");

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let reader = server.reader();
            let done = done.clone();
            let (total_map, cnt_map) = (total_map.clone(), cnt_map.clone());
            thread::spawn(move || {
                let mut snapshots_checked = 0u64;
                let mut last_epoch = 0u64;
                loop {
                    let finished = done.load(SeqCst);
                    let snap = reader.snapshot();
                    let total = snap.view(&total_map).map_or(0.0, |g| g.scalar_value());
                    let cnt = snap.view(&cnt_map).map_or(0.0, |g| g.scalar_value());
                    // Conservation: every event inserts exactly (key, 1), so the
                    // SUM view, the COUNT view and the snapshot's own event
                    // counter must agree on every published epoch.
                    assert_eq!(
                        total,
                        cnt,
                        "torn snapshot at epoch {}: SUM {} != COUNT {}",
                        snap.epoch(),
                        total,
                        cnt
                    );
                    assert_eq!(
                        total,
                        snap.events_applied() as f64,
                        "snapshot at epoch {} out of step with its event counter",
                        snap.epoch()
                    );
                    assert!(
                        snap.epoch() >= last_epoch,
                        "snapshot epoch went backwards: {} < {last_epoch}",
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    snapshots_checked += 1;
                    if finished {
                        break;
                    }
                }
                snapshots_checked
            })
        })
        .collect();

    let ingest = server.handle();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..EVENTS {
        // Random keys (with repeats) so multiplicities pile up; weight always 1.
        let key = rng.random_range(0..(EVENTS / 4).max(1));
        ingest
            .send(UpdateEvent::insert(
                "R",
                vec![Value::long(key), Value::long(1)],
            ))
            .unwrap();
    }
    let epoch = server.flush().unwrap();
    assert!(epoch > 0);
    done.store(true, SeqCst);

    let mut total_checked = 0;
    for r in readers {
        total_checked += r.join().expect("reader thread panicked");
    }
    assert!(total_checked >= 4, "readers made no progress");

    let stats = server.stats();
    assert_eq!(stats.events, EVENTS as u64);
    assert!(stats.batches > 0);
    assert!(stats.snapshots_published > 0);
    assert!(
        stats.snapshots_published <= stats.batches,
        "publishes are coalesced across batches"
    );
    assert!(stats.events_per_batch() > 0.0);
    assert!(server.last_error().is_none());

    // The final snapshot holds the exact stream total.
    let reader = server.reader();
    let snap = reader.snapshot();
    assert_eq!(snap.view(&total_map).unwrap().scalar_value(), EVENTS as f64);
    let engine = server.shutdown().expect("clean shutdown");
    assert_eq!(engine.stats().events, EVENTS as u64);
}

#[test]
fn subscription_replay_reconstructs_final_view() {
    const EVENTS: usize = 20_000;
    let per_key = QuerySpec {
        name: "PER_KEY".into(),
        out_vars: vec!["a".into()],
        expr: Expr::agg_sum(
            ["a".to_string()],
            Expr::product_of([Expr::rel("R", ["a", "v"]), Expr::var("v")]),
        ),
    };
    let program = compile(&[per_key], &catalog(), &CompileOptions::default()).unwrap();
    let view_name = match &program.results[0].access {
        ResultAccess::Map(m) => m.clone(),
        ResultAccess::Computed { .. } => panic!("expected map-backed result"),
    };
    let engine = Engine::new(program, &catalog());
    let server = ViewServer::spawn(
        engine,
        vec![],
        ServerConfig {
            queue_capacity: 1024,
            max_batch: 37, // deliberately odd so batch boundaries wander
            ..ServerConfig::default()
        },
    )
    .expect("spawn without durability is infallible");

    let sub = server.subscribe("PER_KEY").unwrap();
    assert!(sub.baseline().view(&view_name).unwrap().is_empty());

    // Random inserts and deletes; deletes replay earlier inserts so entries
    // cancel to zero now and then (exercising key removal in the deltas).
    let ingest = server.handle();
    let mut rng = StdRng::seed_from_u64(99);
    let mut live: Vec<(i64, i64)> = Vec::new();
    for _ in 0..EVENTS {
        let delete = !live.is_empty() && rng.random_bool(0.35);
        if delete {
            let idx = rng.random_range(0..live.len());
            let (a, v) = live.swap_remove(idx);
            ingest
                .send(UpdateEvent::delete(
                    "R",
                    vec![Value::long(a), Value::long(v)],
                ))
                .unwrap();
        } else {
            let a = rng.random_range(0..64i64);
            let v = rng.random_range(1..100i64);
            live.push((a, v));
            ingest
                .send(UpdateEvent::insert(
                    "R",
                    vec![Value::long(a), Value::long(v)],
                ))
                .unwrap();
        }
    }
    server.flush().unwrap();
    let engine = server.shutdown().expect("clean shutdown");
    let final_view = engine.view(&view_name).expect("view exists");

    // Replay: apply each received batch on top of the baseline. `old_mult`
    // must match the replayed state exactly, batch epochs must be increasing,
    // and the end state must equal the final view bit-for-bit.
    let mut state: FastMap<Tuple, f64> = FastMap::default();
    let mut last_epoch = 0u64;
    let mut batches = 0u64;
    while let Some(batch) = sub.try_recv() {
        assert!(
            batch.epoch > last_epoch,
            "batch epochs must be strictly increasing"
        );
        last_epoch = batch.epoch;
        batches += 1;
        for d in &batch.deltas {
            let current = state.get(&d.key).copied().unwrap_or(0.0);
            assert_eq!(
                current, d.old_mult,
                "delta for {:?} disagrees with replayed state",
                d.key
            );
            if d.new_mult == 0.0 {
                state.remove(&d.key);
            } else {
                state.insert(d.key.clone(), d.new_mult);
            }
        }
    }
    assert!(batches > 1, "expected multiple delta batches");
    assert_eq!(state.len(), final_view.len(), "key sets differ");
    for (key, mult) in final_view.iter() {
        assert_eq!(
            state.get(key).copied(),
            Some(mult),
            "replayed multiplicity differs for {key:?}"
        );
    }
}
