//! End-to-end tests for the std-only HTTP exporter: every endpoint answers
//! with the right status, content type and a conformant body, and the
//! transport rejects what it must (unknown paths, non-GET methods, malformed
//! request lines).

use dbtoaster_agca::{Expr, UpdateEvent};
use dbtoaster_compiler::{
    compile, Catalog, CompileOptions, ProgramExplain, QuerySpec, RelationMeta,
};
use dbtoaster_gmr::Value;
use dbtoaster_runtime::Engine;
use dbtoaster_server::{HttpConfig, ServerConfig, ViewServer};
use dbtoaster_telemetry::PROMETHEUS_CONTENT_TYPE;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn engine() -> Engine {
    let catalog: Catalog = [RelationMeta::stream("R", ["A", "V"])]
        .into_iter()
        .collect();
    let q = QuerySpec {
        name: "TOTAL".into(),
        out_vars: vec![],
        expr: Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([Expr::rel("R", ["a", "v"]), Expr::var("v")]),
        ),
    };
    let program = compile(&[q], &catalog, &CompileOptions::default()).unwrap();
    Engine::new(program, &catalog)
}

fn server_with_http() -> ViewServer {
    let server = ViewServer::spawn(
        engine(),
        vec![],
        ServerConfig {
            http: Some(HttpConfig::default()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let ingest = server.handle();
    for k in 0..50i64 {
        ingest
            .send(UpdateEvent::insert(
                "R",
                vec![Value::long(k), Value::long(k % 7)],
            ))
            .unwrap();
    }
    server.flush().unwrap();
    server
}

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Send a raw request and parse the response (status, headers, body).
fn raw_request(addr: SocketAddr, request: &str) -> Response {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {raw:?}"));
    let mut lines = head.lines();
    let status_line = lines.next().unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    Response {
        status,
        headers,
        body: body.to_string(),
    }
}

fn get(addr: SocketAddr, path: &str) -> Response {
    raw_request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

#[test]
fn metrics_endpoint_serves_prometheus_exposition() {
    let server = server_with_http();
    let addr = server.http_addr().expect("exporter configured");
    let resp = get(addr, "/metrics");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("Content-Type"), Some(PROMETHEUS_CONTENT_TYPE));
    assert_eq!(
        resp.header("Content-Length"),
        Some(resp.body.len().to_string().as_str())
    );
    assert!(
        resp.body.contains("# HELP dbtoaster_events_total"),
        "{}",
        resp.body
    );
    assert!(resp.body.contains("# TYPE dbtoaster_events_total counter"));
    assert!(resp.body.contains("dbtoaster_events_total 50"));
    assert!(resp.body.contains("dbtoaster_view_rows_written_total"));
}

#[test]
fn healthz_reports_a_healthy_writer() {
    let server = server_with_http();
    let addr = server.http_addr().unwrap();
    let resp = get(addr, "/healthz");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.header("Content-Type"), Some("application/json"));
    for needle in [
        "\"status\":\"ok\"",
        "\"writer_alive\":true",
        "\"killed\":false",
        "\"events_applied\":50",
        "\"durable\":false",
        "\"checkpoint_lag_events\":0",
        "\"last_error\":null",
        "\"last_durability_error\":null",
    ] {
        assert!(
            resp.body.contains(needle),
            "missing {needle} in {}",
            resp.body
        );
    }
}

#[test]
fn views_and_traces_endpoints_serve_json() {
    let server = server_with_http();
    let addr = server.http_addr().unwrap();
    let views = get(addr, "/views");
    assert_eq!(views.status, 200);
    assert_eq!(views.header("Content-Type"), Some("application/json"));
    assert!(views.body.contains("\"events\":50"), "{}", views.body);
    assert!(views.body.contains("\"views\":["));
    assert!(views.body.contains("\"rows_written\":"));

    let traces = get(addr, "/traces");
    assert_eq!(traces.status, 200);
    assert_eq!(traces.header("Content-Type"), Some("application/x-ndjson"));
    // No batch crossed the slow threshold: an empty drain is an empty body.
    assert!(traces.body.is_empty() || traces.body.ends_with('\n'));
}

#[test]
fn explain_endpoint_serves_text_and_round_trippable_json() {
    let server = server_with_http();
    let addr = server.http_addr().unwrap();

    let text = get(addr, "/explain");
    assert_eq!(text.status, 200);
    assert_eq!(
        text.header("Content-Type"),
        Some("text/plain; charset=utf-8")
    );
    assert!(text.body.contains("== relation R =="), "{}", text.body);
    assert!(text.body.contains("strategy:"));
    assert!(
        text.body.contains("analyze:"),
        "live counters missing: {}",
        text.body
    );

    let json = get(addr, "/explain?format=json");
    assert_eq!(json.status, 200);
    assert_eq!(json.header("Content-Type"), Some("application/json"));
    let parsed = ProgramExplain::parse_json(&json.body)
        .unwrap_or_else(|| panic!("unparseable /explain JSON: {}", json.body));
    assert_eq!(parsed.relations.len(), 1);
    assert_eq!(parsed.relations[0].relation, "R");
    // The JSON strategies agree with what the in-process API explains.
    let local = server.explain();
    for (a, b) in parsed.relations.iter().zip(&local.relations) {
        assert_eq!(a.relation, b.relation);
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(a.reason, b.reason);
    }
}

#[test]
fn transport_rejects_what_it_must() {
    let server = server_with_http();
    let addr = server.http_addr().unwrap();

    let not_found = get(addr, "/nope");
    assert_eq!(not_found.status, 404);
    assert!(not_found.body.contains("/metrics"));

    let post = raw_request(
        addr,
        "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(post.status, 405);

    let garbage = raw_request(addr, "NOT-HTTP\r\n\r\n");
    assert_eq!(garbage.status, 400);
}

#[test]
fn exporter_can_start_after_spawn_but_only_once() {
    let mut server = ViewServer::spawn(engine(), vec![], ServerConfig::default()).unwrap();
    assert!(server.http_addr().is_none());
    let addr = server.serve_http(HttpConfig::default()).unwrap();
    assert_eq!(server.http_addr(), Some(addr));
    assert_eq!(get(addr, "/healthz").status, 200);
    assert!(server.serve_http(HttpConfig::default()).is_err());
}

/// A durable server over a scripted fault injector: quiet until the test
/// flips `fail_writes_with`, so spawn's initial checkpoint + segment land.
fn durable_server_with_fault() -> (
    ViewServer,
    std::sync::Arc<dbtoaster_durability::FaultVfs>,
    std::path::PathBuf,
) {
    use dbtoaster_durability::{DurabilityConfig, FaultConfig, FaultVfs, FsyncPolicy, RetryPolicy};
    let dir = std::env::temp_dir().join(format!(
        "dbt-healthz-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let fault = std::sync::Arc::new(FaultVfs::new(FaultConfig {
        seed: 5,
        fail_prob_ppm: 0,
        enospc_prob_ppm: 0,
        short_write_prob_ppm: 0,
        cut_at_op: None,
    }));
    let mut d = DurabilityConfig::new(&dir);
    d.fsync = FsyncPolicy::EveryBatch;
    d.vfs = std::sync::Arc::new(fault.clone());
    d.retry = RetryPolicy {
        max_inline_retries: 1,
        initial_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
    };
    let server = ViewServer::spawn(
        engine(),
        vec![],
        ServerConfig {
            http: Some(HttpConfig::default()),
            durability: Some(d),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (server, fault, dir)
}

fn feed(server: &ViewServer, base: i64, n: i64) {
    let ingest = server.handle();
    for k in base..base + n {
        ingest
            .send(UpdateEvent::insert(
                "R",
                vec![Value::long(k), Value::long(k % 7)],
            ))
            .unwrap();
    }
    server.flush().unwrap();
}

#[test]
fn healthz_reports_degraded_and_recovers_to_ok() {
    use dbtoaster_durability::vfs::EIO;
    let (server, fault, dir) = durable_server_with_fault();
    let addr = server.http_addr().unwrap();

    // Healthy and durable first.
    feed(&server, 0, 10);
    let resp = get(addr, "/healthz");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"status\":\"ok\""), "{}", resp.body);
    assert!(resp.body.contains("\"degraded\":false"), "{}", resp.body);

    // Transient EIO: the writer exhausts its retries and degrades, but the
    // server keeps serving — 200, with the distinct degraded status and the
    // triage fields (current error, retry count, transition stamp).
    fault.fail_writes_with(EIO);
    feed(&server, 10, 10);
    let resp = get(addr, "/healthz");
    assert_eq!(
        resp.status, 200,
        "degraded must stay serveable: {}",
        resp.body
    );
    assert!(
        resp.body.contains("\"status\":\"degraded\""),
        "{}",
        resp.body
    );
    assert!(resp.body.contains("\"degraded\":true"), "{}", resp.body);
    assert!(
        resp.body.contains("\"degraded_error\":\""),
        "current error missing: {}",
        resp.body
    );
    assert!(
        !resp.body.contains("\"durability_retries\":0,"),
        "retry count missing: {}",
        resp.body
    );
    assert!(
        !resp.body.contains("\"last_transition_epoch\":0,"),
        "transition stamp missing: {}",
        resp.body
    );
    assert!(
        resp.body.contains("\"last_durability_error\":null"),
        "a transient fault must not latch the fatal error: {}",
        resp.body
    );

    // Heal: the next batches tick the re-arm path and status returns to ok.
    fault.heal();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut base = 20;
    loop {
        feed(&server, base, 5);
        base += 5;
        let resp = get(addr, "/healthz");
        if resp.body.contains("\"status\":\"ok\"") {
            assert!(resp.body.contains("\"degraded\":false"), "{}", resp.body);
            assert!(
                resp.body.contains("\"degraded_error\":null"),
                "{}",
                resp.body
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "never re-armed: {}",
            resp.body
        );
    }
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn healthz_reports_unhealthy_on_a_permanent_durability_error() {
    use dbtoaster_durability::vfs::EROFS;
    let (server, fault, dir) = durable_server_with_fault();
    let addr = server.http_addr().unwrap();
    feed(&server, 0, 10);

    // A read-only filesystem is not retryable: the error latches, and the
    // health probe flips to 503 so orchestrators stop routing writes here.
    fault.fail_writes_with(EROFS);
    feed(&server, 10, 10);
    let resp = get(addr, "/healthz");
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(
        resp.body.contains("\"status\":\"unhealthy\""),
        "{}",
        resp.body
    );
    assert!(
        resp.body.contains("\"last_durability_error\":\""),
        "latched error missing: {}",
        resp.body
    );
    // Permanent failure is not the retry loop: healing the disk does NOT
    // un-latch it (the log may have lost writes; a human must intervene).
    fault.heal();
    feed(&server, 20, 5);
    assert_eq!(get(addr, "/healthz").status, 503);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
