//! The high-level DBToaster API: SQL in, continuously fresh views out.
//!
//! [`QueryEngineBuilder`] mirrors how the released DBToaster toolchain is used: you
//! declare a schema, add SQL view queries, pick a compilation strategy (Figure 12's
//! flags are exposed through [`CompileOptions`]) and obtain a [`QueryEngine`] — the
//! equivalent of the generated C++/Scala binary — which consumes single-tuple updates
//! and keeps every query result fresh.

use dbtoaster_agca::{AtomKind, UpdateEvent};
use dbtoaster_compiler::{
    compile, Catalog, CompileError, CompileMode, CompileOptions, QuerySpec, RelationMeta,
    TriggerProgram,
};
use dbtoaster_durability::DurabilityConfig;
use dbtoaster_gmr::{Gmr, Value};
use dbtoaster_runtime::{Engine, EngineStats, RuntimeError, TraceSample};
use dbtoaster_server::{ServeError, ServedQuery, ServerConfig, ViewServer};
use dbtoaster_sql::{
    parse_query, translate, ParseError, SqlCatalog, TranslateError, TranslatedQuery,
};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;

pub use dbtoaster_server::{ResultRow, ResultTable};

/// Errors surfaced by the high-level API.
#[derive(Clone, Debug, PartialEq)]
pub enum DbToasterError {
    /// SQL parse error.
    Parse(String, ParseError),
    /// SQL-to-AGCA translation error.
    Translate(String, TranslateError),
    /// Compilation error.
    Compile(CompileError),
    /// Runtime error.
    Runtime(RuntimeError),
    /// The named query does not exist.
    UnknownQuery(String),
    /// Serving-layer error.
    Serve(ServeError),
}

impl fmt::Display for DbToasterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbToasterError::Parse(q, e) => write!(f, "query {q}: {e}"),
            DbToasterError::Translate(q, e) => write!(f, "query {q}: {e}"),
            DbToasterError::Compile(e) => write!(f, "compilation failed: {e}"),
            DbToasterError::Runtime(e) => write!(f, "runtime error: {e}"),
            DbToasterError::UnknownQuery(q) => write!(f, "unknown query {q}"),
            DbToasterError::Serve(e) => write!(f, "serving error: {e}"),
        }
    }
}

impl std::error::Error for DbToasterError {}

impl From<CompileError> for DbToasterError {
    fn from(e: CompileError) -> Self {
        DbToasterError::Compile(e)
    }
}

impl From<RuntimeError> for DbToasterError {
    fn from(e: RuntimeError) -> Self {
        DbToasterError::Runtime(e)
    }
}

impl From<ServeError> for DbToasterError {
    fn from(e: ServeError) -> Self {
        DbToasterError::Serve(e)
    }
}

/// Convert a SQL catalog into the compiler's relation catalog.
pub fn to_compiler_catalog(catalog: &SqlCatalog) -> Catalog {
    catalog
        .tables()
        .iter()
        .map(|t| RelationMeta {
            name: t.name.clone(),
            columns: t.columns.clone(),
            kind: if t.is_stream {
                AtomKind::Stream
            } else {
                AtomKind::Table
            },
        })
        .collect()
}

/// Builder for a [`QueryEngine`].
#[derive(Clone, Debug)]
pub struct QueryEngineBuilder {
    catalog: SqlCatalog,
    queries: Vec<(String, String)>,
    options: CompileOptions,
}

impl QueryEngineBuilder {
    /// Start a builder over the given schema.
    pub fn new(catalog: SqlCatalog) -> Self {
        QueryEngineBuilder {
            catalog,
            queries: Vec::new(),
            options: CompileOptions::default(),
        }
    }

    /// Add a SQL view query to maintain.
    pub fn add_query(mut self, name: impl Into<String>, sql: impl Into<String>) -> Self {
        self.queries.push((name.into(), sql.into()));
        self
    }

    /// Select a compilation strategy (DBToaster, IVM, Naive, REP).
    pub fn mode(mut self, mode: CompileMode) -> Self {
        self.options = CompileOptions::for_mode(mode);
        self
    }

    /// Use fully custom compilation options.
    pub fn options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Build the engine and start serving it concurrently: one writer thread
    /// ingesting updates, any number of lock-free snapshot readers and
    /// output-delta subscribers. Shorthand for `build()?.serve()`.
    pub fn serve(self) -> Result<ViewServer, DbToasterError> {
        self.build()?.serve()
    }

    /// Open a **durable** serving instance anchored in `dir`, creating it on
    /// first use. When the directory already holds state for this exact
    /// program (checkpoints + write-ahead log, matched by fingerprint), the
    /// engine is recovered from it — newest usable checkpoint plus WAL replay,
    /// bit-for-bit — before serving resumes; otherwise a fresh engine is
    /// initialized. Either way the returned server logs every micro-batch
    /// ahead of applying it and checkpoints periodically, so a crash (or
    /// [`ViewServer::kill`]) loses nothing that was applied.
    ///
    /// State belonging to a *different* program (changed queries or schema) is
    /// refused with a fingerprint-mismatch error rather than silently
    /// discarded. Workloads that pre-load static tables should use
    /// [`QueryEngineBuilder::build`] + [`QueryEngine::load_table`] +
    /// [`QueryEngine::open_or_create_with`] so the tables are in place before
    /// the initial checkpoint captures them.
    pub fn open_or_create(self, dir: impl Into<PathBuf>) -> Result<ViewServer, DbToasterError> {
        let config = ServerConfig {
            durability: Some(DurabilityConfig::new(dir.into())),
            ..ServerConfig::default()
        };
        self.open_or_create_with(config)
    }

    /// [`QueryEngineBuilder::open_or_create`] with explicit serving and
    /// durability knobs; `config.durability` must be set.
    pub fn open_or_create_with(self, config: ServerConfig) -> Result<ViewServer, DbToasterError> {
        self.build()?.open_or_create_with(config)
    }

    /// Parse, translate and compile the queries, returning a ready-to-run engine.
    pub fn build(self) -> Result<QueryEngine, DbToasterError> {
        let mut specs: Vec<QuerySpec> = Vec::new();
        let mut plans: Vec<TranslatedQuery> = Vec::new();
        for (name, sql) in &self.queries {
            let parsed = parse_query(sql).map_err(|e| DbToasterError::Parse(name.clone(), e))?;
            let plan = translate(name, &parsed, &self.catalog)
                .map_err(|e| DbToasterError::Translate(name.clone(), e))?;
            for v in &plan.views {
                specs.push(QuerySpec {
                    name: v.name.clone(),
                    out_vars: v.out_vars.clone(),
                    expr: v.expr.clone(),
                });
            }
            plans.push(plan);
        }
        let catalog = to_compiler_catalog(&self.catalog);
        let program = compile(&specs, &catalog, &self.options)?;
        let engine = Engine::new(program, &catalog);
        Ok(QueryEngine {
            engine,
            plans: plans.into_iter().map(|p| (p.name.clone(), p)).collect(),
            mode: self.options.mode,
            catalog,
        })
    }
}

/// A compiled, running DBToaster query engine.
pub struct QueryEngine {
    engine: Engine,
    plans: HashMap<String, TranslatedQuery>,
    mode: CompileMode,
    /// Compiler catalog, kept for durable recovery (rebuilding an engine from
    /// a checkpoint needs the stored relations' column names).
    catalog: Catalog,
}

impl QueryEngine {
    /// The compilation mode this engine was built with.
    pub fn mode(&self) -> CompileMode {
        self.mode
    }

    /// Force (or un-force) the AST-interpreter path, bypassing compiled
    /// trigger kernels. The compiled path is the default; the interpreter
    /// remains available as the differential-testing oracle and as an escape
    /// hatch (also via the `DBTOASTER_FORCE_INTERPRETER` environment
    /// variable). `EngineStats::compiled_triggers` reports how many
    /// statements currently run compiled.
    pub fn set_force_interpreter(&mut self, force: bool) {
        self.engine.set_force_interpreter(force);
    }

    /// The compiled trigger program.
    pub fn program(&self) -> &TriggerProgram {
        self.engine.program()
    }

    /// Load a static table and (re)initialize the views that depend only on tables.
    pub fn load_table(
        &mut self,
        name: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<(), DbToasterError> {
        self.engine.load_table(name, rows);
        Ok(())
    }

    /// Initialize static views after all tables have been loaded.
    pub fn init(&mut self) -> Result<(), DbToasterError> {
        self.engine
            .init_static_views()
            .map_err(DbToasterError::from)
    }

    /// Process one update event.
    pub fn process(&mut self, event: &UpdateEvent) -> Result<(), DbToasterError> {
        self.engine.process(event).map_err(DbToasterError::from)
    }

    /// Process a sequence of update events one at a time (strict: stops at
    /// the first error).
    pub fn process_all<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a UpdateEvent>,
    ) -> Result<(), DbToasterError> {
        for e in events {
            self.engine.process(e)?;
        }
        Ok(())
    }

    /// Record per-relation run execution into
    /// [`BatchReport::runs`](dbtoaster_runtime::BatchReport::runs) (which
    /// strategy actually executed, after any runtime fallback). Off by
    /// default: recording costs one small allocation per run.
    pub fn set_run_recording(&mut self, on: bool) {
        self.engine.set_run_recording(on);
    }

    /// Process a [`DeltaBatch`](dbtoaster_agca::DeltaBatch) of per-relation
    /// GMR deltas — the engine's native unit since the batch-first refactor.
    /// Processing never stops at a failed event (it keeps its stream slot);
    /// the returned [`BatchReport`](dbtoaster_runtime::BatchReport) carries
    /// the failure count and first error.
    pub fn process_batch(
        &mut self,
        batch: &dbtoaster_agca::DeltaBatch,
    ) -> dbtoaster_runtime::BatchReport {
        self.engine.process_batch(batch)
    }

    /// Snapshot a maintained view as a GMR (mainly for tests and debugging).
    pub fn view(&self, name: &str) -> Option<Gmr> {
        self.engine.view(name)
    }

    /// Snapshot the full result table of a query, assembling group-by columns and
    /// aggregates (including `AVG` columns computed as SUM / COUNT).
    pub fn result(&self, query: &str) -> Result<ResultTable, DbToasterError> {
        let plan = self
            .plans
            .get(query)
            .ok_or_else(|| DbToasterError::UnknownQuery(query.to_string()))?;
        dbtoaster_server::assemble_result(&plan.outputs, &plan.group_by, &mut |name| {
            self.engine.view(name)
        })
        .map_err(DbToasterError::UnknownQuery)
    }

    /// Start serving this engine concurrently with default sizing: one writer
    /// thread owning the engine, lock-free snapshot readers
    /// ([`ViewServer::reader`]) and output-delta subscribers
    /// ([`ViewServer::subscribe`]). Consumes the engine; get it back with
    /// [`ViewServer::shutdown`].
    pub fn serve(self) -> Result<ViewServer, DbToasterError> {
        self.serve_with(ServerConfig::default())
    }

    /// Durable serving with explicit sizing: like
    /// [`QueryEngineBuilder::open_or_create`], but starting from an engine
    /// whose tables are already loaded. `config.durability` must be set; if
    /// its directory holds recoverable state for this program, this engine's
    /// current (pre-serve) state is **replaced** by the recovered one.
    pub fn open_or_create_with(
        mut self,
        config: ServerConfig,
    ) -> Result<ViewServer, DbToasterError> {
        let Some(dcfg) = config.durability.clone() else {
            return Err(DbToasterError::Serve(ServeError::Durability(
                dbtoaster_durability::DurabilityError::Config(
                    "open_or_create_with requires ServerConfig::durability".into(),
                ),
            )));
        };
        // Hold the directory's writer lock across recovery so a live server's
        // checkpointer cannot prune files out from under the scan (and a
        // doomed opener is refused here, before a possibly huge replay,
        // instead of after it).
        let lock = dbtoaster_durability::acquire_dir_lock(&dcfg.dir)
            .map_err(|e| DbToasterError::Serve(ServeError::Durability(e)))?;
        // The recovery replay (checkpoint load + WAL re-application) is timed
        // into the telemetry handle the server will adopt, so startup cost
        // shows up next to the serving-stage timings in `metrics()`.
        let tel = match self.engine.telemetry() {
            Some(t) if t.is_enabled() => t.clone(),
            _ => dbtoaster_telemetry::Telemetry::with_config(config.telemetry.clone()),
        };
        let recovered = {
            let _t = tel.stage_guard(dbtoaster_telemetry::Stage::RecoveryReplay);
            dbtoaster_durability::recover_with_vfs(
                &dcfg.dir,
                self.engine.program().clone(),
                &self.catalog,
                dcfg.vfs.clone(),
            )
            .map_err(|e| DbToasterError::Serve(ServeError::Durability(e)))?
        };
        // Released before serving: the writer thread re-acquires it in spawn.
        // The gap can only produce a clean `Locked` refusal there, never a
        // mutation race — every directory mutation happens under the lock.
        drop(lock);
        // Keep recovery provenance: a degraded recovery (older checkpoint
        // used, or poison events re-skipped during replay) must stay
        // distinguishable from a clean one after the server is up.
        let mut degraded: Option<String> = None;
        match recovered {
            Some(rec) => {
                if !rec.skipped_checkpoints.is_empty() || rec.failed_events > 0 {
                    let mut parts = Vec::new();
                    if !rec.skipped_checkpoints.is_empty() {
                        parts.push(format!(
                            "skipped damaged checkpoints: {}",
                            rec.skipped_checkpoints.join("; ")
                        ));
                    }
                    if rec.failed_events > 0 {
                        parts.push(format!(
                            "{} replayed events failed (first: {})",
                            rec.failed_events,
                            rec.first_failure.as_deref().unwrap_or("unknown")
                        ));
                    }
                    degraded = Some(parts.join("; "));
                }
                self.engine = rec.engine;
            }
            None => self.init()?, // fresh start: initialize static views
        }
        // Hand the (possibly recovery-stamped) telemetry handle to the engine;
        // `ViewServer::spawn` reuses an already-enabled handle.
        self.engine.set_telemetry(tel);
        let server = self.serve_with(config)?;
        if let Some(detail) = degraded {
            server.record_durability_warning(
                dbtoaster_durability::DurabilityError::RecoveryDegraded(detail),
            );
        }
        Ok(server)
    }

    /// Start serving with explicit queue / micro-batch sizing.
    pub fn serve_with(self, config: ServerConfig) -> Result<ViewServer, DbToasterError> {
        let served = self
            .plans
            .values()
            .map(|p| ServedQuery {
                name: p.name.clone(),
                group_by: p.group_by.clone(),
                outputs: p.outputs.clone(),
            })
            .collect();
        ViewServer::spawn(self.engine, served, config).map_err(DbToasterError::from)
    }

    /// Runtime statistics (events processed, refresh rate).
    pub fn stats(&self) -> &EngineStats {
        self.engine.stats()
    }

    /// EXPLAIN / EXPLAIN ANALYZE of the compiled trigger program: one operator
    /// tree per statement (probes vs scans, product order, fused preludes,
    /// band specs), the batch-dispatch decision per relation with the reason
    /// it was taken, and — when telemetry is attached — live per-operator
    /// counters joined in, so the same tree doubles as EXPLAIN ANALYZE.
    /// Render with [`ProgramExplain::render_text`] or
    /// [`ProgramExplain::render_json`].
    ///
    /// [`ProgramExplain::render_text`]: dbtoaster_compiler::ProgramExplain::render_text
    /// [`ProgramExplain::render_json`]: dbtoaster_compiler::ProgramExplain::render_json
    pub fn explain(&mut self) -> dbtoaster_compiler::ProgramExplain {
        self.engine.explain()
    }

    /// [`QueryEngine::explain`] rendered as indented text.
    pub fn explain_text(&mut self) -> String {
        self.engine.explain().render_text()
    }

    /// [`QueryEngine::explain`] rendered as a JSON document.
    pub fn explain_json(&mut self) -> String {
        self.engine.explain().render_json()
    }

    /// Attach a [`Telemetry`](dbtoaster_telemetry::Telemetry) handle: batch
    /// latency histograms, per-stage timings, per-view counters and slow-batch
    /// traces. An enabled handle costs a few nanoseconds per batch; the
    /// default disabled handle keeps the hot path untouched.
    pub fn set_telemetry(&mut self, tel: dbtoaster_telemetry::Telemetry) {
        self.engine.set_telemetry(tel);
    }

    /// The attached telemetry handle, if any.
    pub fn telemetry(&self) -> Option<&dbtoaster_telemetry::Telemetry> {
        self.engine.telemetry()
    }

    /// Fold the engine's thread-local telemetry buffers into the shared
    /// registry so a subsequent `Telemetry::snapshot` covers every processed
    /// event (the engine otherwise flushes every few dozen batches).
    pub fn flush_telemetry(&mut self) {
        self.engine.flush_telemetry();
    }

    /// Approximate memory footprint of all maintained state, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.engine.memory_bytes()
    }

    /// A point-in-time sample for the trace experiments.
    pub fn sample(&self, fraction: f64) -> TraceSample {
        self.engine.sample(fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_sql::TableDef;

    fn catalog() -> SqlCatalog {
        [
            TableDef::stream("Orders", ["ordk", "ck", "xch"]),
            TableDef::stream("Lineitem", ["ordk", "price"]),
        ]
        .into_iter()
        .collect()
    }

    fn insert(rel: &str, vals: Vec<Value>) -> UpdateEvent {
        UpdateEvent::insert(rel, vals)
    }

    #[test]
    fn end_to_end_example2() {
        let mut engine = QueryEngineBuilder::new(catalog())
            .add_query(
                "total",
                "SELECT SUM(li.price * o.xch) FROM Orders o, Lineitem li WHERE o.ordk = li.ordk",
            )
            .mode(CompileMode::HigherOrder)
            .build()
            .unwrap();
        engine.init().unwrap();
        engine
            .process_all(&[
                insert(
                    "Orders",
                    vec![Value::long(1), Value::long(10), Value::double(2.0)],
                ),
                insert("Lineitem", vec![Value::long(1), Value::double(100.0)]),
                insert("Lineitem", vec![Value::long(1), Value::double(50.0)]),
                insert(
                    "Orders",
                    vec![Value::long(2), Value::long(11), Value::double(3.0)],
                ),
                insert("Lineitem", vec![Value::long(2), Value::double(10.0)]),
            ])
            .unwrap();
        let result = engine.result("total").unwrap();
        assert_eq!(result.scalar(), 2.0 * 150.0 + 3.0 * 10.0);
        assert_eq!(engine.stats().events, 5);
        assert!(engine.memory_bytes() > 0);
    }

    #[test]
    fn group_by_and_average_results() {
        let mut engine = QueryEngineBuilder::new(catalog())
            .add_query(
                "per_order",
                "SELECT li.ordk, SUM(li.price) AS total, AVG(li.price) AS avg_price, COUNT(*) AS n \
                 FROM Lineitem li GROUP BY li.ordk",
            )
            .build()
            .unwrap();
        engine
            .process_all(&[
                insert("Lineitem", vec![Value::long(1), Value::double(10.0)]),
                insert("Lineitem", vec![Value::long(1), Value::double(30.0)]),
                insert("Lineitem", vec![Value::long(2), Value::double(5.0)]),
            ])
            .unwrap();
        let result = engine.result("per_order").unwrap();
        assert_eq!(result.len(), 2);
        let row1 = result
            .rows
            .iter()
            .find(|r| r.key == vec![Value::long(1)])
            .unwrap();
        assert_eq!(row1.values, vec![40.0, 20.0, 2.0]);
    }

    #[test]
    fn parse_and_translate_errors_are_reported() {
        match QueryEngineBuilder::new(catalog())
            .add_query("bad", "SELECT FROM nowhere")
            .build()
        {
            Err(DbToasterError::Parse(..)) => {}
            Err(other) => panic!("expected parse error, got {other}"),
            Ok(_) => panic!("expected parse error"),
        }
        match QueryEngineBuilder::new(catalog())
            .add_query("bad", "SELECT SUM(x.a) FROM Missing x")
            .build()
        {
            Err(DbToasterError::Translate(..)) => {}
            Err(other) => panic!("expected translate error, got {other}"),
            Ok(_) => panic!("expected translate error"),
        }
    }

    #[test]
    fn unknown_query_result_errors() {
        let engine = QueryEngineBuilder::new(catalog())
            .add_query("q", "SELECT SUM(li.price) FROM Lineitem li")
            .build()
            .unwrap();
        assert!(matches!(
            engine.result("nope"),
            Err(DbToasterError::UnknownQuery(_))
        ));
    }

    #[test]
    fn all_modes_agree_on_a_simple_join() {
        let events = vec![
            insert(
                "Orders",
                vec![Value::long(1), Value::long(5), Value::double(2.0)],
            ),
            insert("Lineitem", vec![Value::long(1), Value::double(7.0)]),
            UpdateEvent::delete("Lineitem", vec![Value::long(1), Value::double(7.0)]),
            insert("Lineitem", vec![Value::long(1), Value::double(9.0)]),
        ];
        let mut answers = Vec::new();
        for mode in [
            CompileMode::HigherOrder,
            CompileMode::FirstOrder,
            CompileMode::NaiveViewlet,
            CompileMode::Reevaluate,
        ] {
            let mut engine = QueryEngineBuilder::new(catalog())
                .add_query(
                    "total",
                    "SELECT SUM(li.price * o.xch) FROM Orders o, Lineitem li WHERE o.ordk = li.ordk",
                )
                .mode(mode)
                .build()
                .unwrap();
            engine.process_all(&events).unwrap();
            answers.push(engine.result("total").unwrap().scalar());
        }
        assert!(
            answers.iter().all(|a| (*a - 18.0).abs() < 1e-9),
            "{answers:?}"
        );
    }
}
