//! # DBToaster in Rust
//!
//! A from-scratch reproduction of *"DBToaster: Higher-order Delta Processing for
//! Dynamic, Frequently Fresh Views"* (Koch et al., VLDB Journal). DBToaster keeps
//! materialized views of standard SQL queries continuously fresh under very high
//! single-tuple update rates by compiling each query into a *trigger program* that
//! maintains the query result together with a hierarchy of higher-order delta views.
//!
//! This crate is the public facade; the heavy lifting lives in the workspace crates:
//!
//! | crate | contents |
//! |---|---|
//! | `dbtoaster-gmr` | generalized multiset relations (values, tuples, the GMR ring) |
//! | `dbtoaster-agca` | the AGCA calculus: evaluation, delta transform, optimizer |
//! | `dbtoaster-sql` | SQL parser and SQL→AGCA translation |
//! | `dbtoaster-compiler` | viewlet transform & Higher-Order IVM compiler |
//! | `dbtoaster-runtime` | view store with secondary indexes and the trigger executor |
//! | `dbtoaster-server` | concurrent view serving: snapshots, readers, output-delta subscriptions |
//! | `dbtoaster-workloads` | TPC-H-like / order-book / MDDB generators and the query set |
//!
//! ## Quickstart
//!
//! ```
//! use dbtoaster::prelude::*;
//!
//! let catalog: SqlCatalog = [
//!     TableDef::stream("Orders", ["ordk", "ck", "xch"]),
//!     TableDef::stream("Lineitem", ["ordk", "price"]),
//! ].into_iter().collect();
//!
//! let mut engine = QueryEngineBuilder::new(catalog)
//!     .add_query("total_sales",
//!         "SELECT SUM(li.price * o.xch) FROM Orders o, Lineitem li WHERE o.ordk = li.ordk")
//!     .mode(CompileMode::HigherOrder)
//!     .build()
//!     .unwrap();
//!
//! engine.process(&UpdateEvent::insert("Orders",
//!     vec![Value::long(1), Value::long(7), Value::double(2.0)])).unwrap();
//! engine.process(&UpdateEvent::insert("Lineitem",
//!     vec![Value::long(1), Value::double(100.0)])).unwrap();
//!
//! assert_eq!(engine.result("total_sales").unwrap().scalar(), 200.0);
//! ```

pub mod api;

pub use api::{
    to_compiler_catalog, DbToasterError, QueryEngine, QueryEngineBuilder, ResultRow, ResultTable,
};

// Re-export the workspace crates under stable names.
pub use dbtoaster_agca as agca;
pub use dbtoaster_compiler as compiler;
pub use dbtoaster_durability as durability;
pub use dbtoaster_gmr as gmr;
pub use dbtoaster_runtime as runtime;
pub use dbtoaster_server as server;
pub use dbtoaster_sql as sql;
pub use dbtoaster_telemetry as telemetry;
pub use dbtoaster_workloads as workloads;

/// Everything needed for typical use.
pub mod prelude {
    pub use crate::api::{DbToasterError, QueryEngine, QueryEngineBuilder, ResultRow, ResultTable};
    pub use dbtoaster_agca::{DeltaBatch, DeltaEntry, RelationDelta, UpdateEvent, UpdateSign};
    pub use dbtoaster_compiler::{BatchStrategy, CompileMode, CompileOptions, ProgramExplain};
    pub use dbtoaster_durability::{DurabilityConfig, DurabilityError, FsyncPolicy};
    pub use dbtoaster_gmr::{Gmr, Schema, Value};
    pub use dbtoaster_runtime::BatchReport;
    pub use dbtoaster_server::{
        HttpConfig, IngestHandle, OutputDelta, OutputDeltaBatch, ReaderHandle, SendBatchError,
        ServeError, ServerConfig, Snapshot, Subscription, ViewServer,
    };
    pub use dbtoaster_sql::{SqlCatalog, TableDef};
    pub use dbtoaster_telemetry::{
        HistogramSummary, MetricsSnapshot, SlowBatchTrace, Stage, Telemetry, TelemetryConfig,
    };
}
