//! # Shard-parallel execution: partition the delta ring across engines
//!
//! A [`ShardedEngine`] runs the same compiled [`TriggerProgram`] on `N`
//! independent [`Engine`] instances, each owning a hash-partition of every
//! base relation. The partitioning rule comes from the compiler's
//! shardability analysis ([`analyze_sharding`]): each stream relation gets a
//! partition column, and every trigger statement is classified *shard-local*
//! (all probes are provably on the partition key, so the statement over a
//! shard's slice of the stream reads only shard-owned state) or *global*
//! (some probe crosses partitions).
//!
//! [`slice_program`] splits the program accordingly:
//!
//! * the **local slice** runs on every shard, over that shard's partition of
//!   the event stream;
//! * the **global slice** (if any statement needs it) runs on the *exchange
//!   executor* — one extra engine that receives every shard's
//!   [`RelationDelta`]s (the [`RelationDelta::to_gmr`] interchange form,
//!   re-batched in stream order) and maintains exactly the maps no partition
//!   key can localize.
//!
//! ## Why the merge is exact
//!
//! Every map the local slice maintains falls into a [`MapClass`]:
//!
//! * [`MapClass::Partitioned`] — the map's key contains the partition
//!   column, so shard slices have **disjoint** key sets and the merged map
//!   is their union (GMR addition over disjoint keys — no float
//!   reassociation at all).
//! * [`MapClass::Summed`] — shard slices are partial aggregates over
//!   disjoint input partitions; GMR addition merges them. Exact under exact
//!   arithmetic (the integer-valued streams of the equivalence suite stay
//!   bit-exact; float streams reassociate one addition per shard).
//! * [`MapClass::Replicated`] — static-table derived, identical everywhere;
//!   take any shard's copy.
//! * [`MapClass::Global`] — lives only on the exchange executor, which sees
//!   the full stream; take its copy.
//!
//! Because every statement is an `Increment` computing a pure state
//! difference (the analysis sends `:=` programs to the executor wholesale),
//! processing a shard's sub-stream is order-insensitive with respect to the
//! other shards' events — the same final-state invariant that justifies
//! batch run-merging justifies the scatter here.
//!
//! [`analyze_sharding`]: dbtoaster_compiler::analyze_sharding
//! [`slice_program`]: dbtoaster_compiler::slice_program
//! [`MapClass`]: dbtoaster_compiler::MapClass
//! [`RelationDelta`]: dbtoaster_agca::RelationDelta
//! [`RelationDelta::to_gmr`]: dbtoaster_agca::RelationDelta::to_gmr

use crate::engine::{BatchReport, Engine, EngineStats, RuntimeError};
use dbtoaster_agca::batch::DeltaBatch;
use dbtoaster_agca::eval::{eval_with, Bindings};
use dbtoaster_agca::UpdateEvent;
use dbtoaster_compiler::program::{Catalog, ResultAccess, TriggerProgram};
use dbtoaster_compiler::shard::{analyze_sharding, slice_program, MapClass, ShardPlan};
use dbtoaster_gmr::hash::{FastMap, FxBuildHasher};
use dbtoaster_gmr::{Gmr, Value};
use std::hash::BuildHasher;

/// The shard that owns `event` under `plan`, out of `n` shards: hash of the
/// partition-column value when the relation has one, hash of the whole tuple
/// otherwise (any deterministic spread keeps correctness — unpartitioned
/// relations only feed `Summed`/`Global` maps). The hasher is the
/// workspace's seedless [`FxBuildHasher`], so placement is reproducible
/// across runs and across the runtime/serving layers.
pub fn shard_for(plan: &ShardPlan, event: &UpdateEvent, n: usize) -> usize {
    let h = match plan.partition_index(&event.relation) {
        Some(i) if i < event.tuple.len() => FxBuildHasher::default().hash_one(&event.tuple[i]),
        _ => FxBuildHasher::default().hash_one(&event.tuple),
    };
    (h % n.max(1) as u64) as usize
}

/// Exchange-traffic counters: what the shards ship to the exchange executor.
///
/// Bytes are the interchange-form estimate — each shipped delta entry is its
/// tuple (8 bytes per value) plus an 8-byte multiplicity, per
/// [`RelationDelta::to_gmr`]'s positional GMR encoding.
///
/// [`RelationDelta::to_gmr`]: dbtoaster_agca::RelationDelta::to_gmr
#[derive(Clone, Copy, Debug, Default)]
pub struct ExchangeStats {
    /// Delta batches shipped to the executor.
    pub batches: u64,
    /// Coalesced delta entries shipped.
    pub entries: u64,
    /// Interchange-form bytes shipped.
    pub bytes: u64,
}

/// `N` engines over hash-partitioned slices of the stream, plus an optional
/// exchange executor for the statements no partition key can localize. See
/// the module docs for the partitioning rule and the merge argument.
pub struct ShardedEngine {
    /// The full (unsliced) program: result access, map classes and relation
    /// metadata for merged reads.
    program: TriggerProgram,
    plan: ShardPlan,
    shards: Vec<Engine>,
    executor: Option<Engine>,
    exchange: ExchangeStats,
    /// Scatter buffers, pooled across batches (index = shard).
    scatter: Vec<DeltaBatch>,
}

impl ShardedEngine {
    /// Build a sharded deployment of `program` with `n` shards (`n >= 1`).
    ///
    /// Runs the shardability analysis, slices the program, and constructs
    /// `n` engines on the local slice plus (when any statement or map is
    /// global) one executor on the global slice.
    pub fn new(program: TriggerProgram, catalog: &Catalog, n: usize) -> Self {
        let n = n.max(1);
        let plan = analyze_sharding(&program);
        let slices = slice_program(&program, &plan, catalog);
        let shards: Vec<Engine> = (0..n)
            .map(|_| Engine::new(slices.local.clone(), catalog))
            .collect();
        let executor = slices.global.map(|g| Engine::new(g, catalog));
        ShardedEngine {
            program,
            plan,
            shards,
            executor,
            exchange: ExchangeStats::default(),
            scatter: Vec::new(),
        }
    }

    /// Number of shards (excluding the executor).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shardability analysis this deployment runs under.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The full (unsliced) program.
    pub fn program(&self) -> &TriggerProgram {
        &self.program
    }

    /// Does this deployment run an exchange executor?
    pub fn has_executor(&self) -> bool {
        self.executor.is_some()
    }

    /// Exchange-traffic counters (zero when fully shard-local).
    pub fn exchange_stats(&self) -> ExchangeStats {
        self.exchange
    }

    /// The shard engines (for per-shard telemetry attachment and stats).
    pub fn shards_mut(&mut self) -> &mut [Engine] {
        &mut self.shards
    }

    /// The exchange executor, if the program needs one.
    pub fn executor_mut(&mut self) -> Option<&mut Engine> {
        self.executor.as_mut()
    }

    /// Per-shard runtime statistics, shard order (executor not included —
    /// see [`ShardedEngine::executor_stats`]).
    pub fn shard_stats(&self) -> Vec<&EngineStats> {
        self.shards.iter().map(|e| e.stats()).collect()
    }

    /// The exchange executor's runtime statistics.
    pub fn executor_stats(&self) -> Option<&EngineStats> {
        self.executor.as_ref().map(|e| e.stats())
    }

    /// The shard that owns `event`: hash of the partition-column value when
    /// the relation has one, hash of the whole tuple otherwise (any
    /// deterministic spread keeps correctness — unpartitioned relations only
    /// feed `Summed`/`Global` maps). The hasher is the workspace's seedless
    /// [`FxBuildHasher`], so placement is reproducible across runs.
    pub fn shard_of(&self, event: &UpdateEvent) -> usize {
        shard_for(&self.plan, event, self.shards.len())
    }

    /// Decompose into the pieces a serving layer wraps in per-shard writer
    /// threads: `(shard engines, executor engine, plan, full program)`.
    pub fn into_parts(self) -> (Vec<Engine>, Option<Engine>, ShardPlan, TriggerProgram) {
        (self.shards, self.executor, self.plan, self.program)
    }

    /// Broadcast a static-table load to every engine (tables are replicated).
    pub fn load_table(&mut self, name: &str, rows: &[Vec<Value>]) {
        for e in self.shards.iter_mut().chain(self.executor.as_mut()) {
            e.load_table(name, rows.iter().cloned());
        }
    }

    /// Initialize table-derived views on every engine.
    pub fn init_static_views(&mut self) -> Result<(), RuntimeError> {
        for e in self.shards.iter_mut().chain(self.executor.as_mut()) {
            e.init_static_views()?;
        }
        Ok(())
    }

    /// Broadcast a batch-strategy override to every engine.
    pub fn set_force_batch_strategy(&mut self, force: Option<dbtoaster_compiler::BatchStrategy>) {
        for e in self.shards.iter_mut().chain(self.executor.as_mut()) {
            e.set_force_batch_strategy(force);
        }
    }

    /// Broadcast an interpreter-path override to every engine.
    pub fn set_force_interpreter(&mut self, force: bool) {
        for e in self.shards.iter_mut().chain(self.executor.as_mut()) {
            e.set_force_interpreter(force);
        }
    }

    /// Process one event: scatter-of-one to its owning shard (plus the
    /// executor when the program has a global slice).
    pub fn process(&mut self, event: &UpdateEvent) -> Result<(), RuntimeError> {
        let report = self.process_events(std::slice::from_ref(event));
        match report.first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Process a batch of events: scatter by partition key into per-shard
    /// delta batches (relative order preserved within each shard), run every
    /// shard's batch, then ship the full batch to the exchange executor.
    ///
    /// The executor's copy *is* the delta exchange: each shard's contribution
    /// rides in as the coalesced [`RelationDelta`] entries of its sub-stream,
    /// and [`ExchangeStats`] accounts the interchange-form traffic.
    ///
    /// [`RelationDelta`]: dbtoaster_agca::RelationDelta
    pub fn process_events(&mut self, events: &[UpdateEvent]) -> BatchReport {
        while self.scatter.len() < self.shards.len() {
            self.scatter.push(DeltaBatch::new());
        }
        for b in &mut self.scatter {
            b.clear();
        }
        for ev in events {
            let s = self.shard_of(ev);
            self.scatter[s].push(ev);
        }
        let mut report = BatchReport {
            events: events.len() as u64,
            ..BatchReport::default()
        };
        let fold = |report: &mut BatchReport, r: BatchReport| {
            report.failed_events += r.failed_events;
            if report.first_error.is_none() {
                report.first_error = r.first_error;
            }
            report.runs.extend(r.runs);
        };
        for (i, engine) in self.shards.iter_mut().enumerate() {
            let batch = &self.scatter[i];
            if batch.is_empty() {
                continue;
            }
            let r = engine.process_batch(batch);
            fold(&mut report, r);
        }
        if let Some(executor) = self.executor.as_mut() {
            let batch = DeltaBatch::from_events(events);
            self.exchange.batches += 1;
            for run in batch.runs() {
                let entries = run.entries().len() as u64;
                self.exchange.entries += entries;
                self.exchange.bytes += entries * 8 * (run.arity() as u64 + 1);
            }
            let r = executor.process_batch(&batch);
            // Executor failures don't double-count the events the shards
            // already counted; surface the first error either way.
            if report.first_error.is_none() {
                report.first_error = r.first_error;
            }
        }
        report
    }

    /// The merged value of one view (map, stored relation or static table),
    /// per its [`MapClass`] (see the module docs for the merge argument).
    ///
    /// [`MapClass`]: dbtoaster_compiler::MapClass
    pub fn merged_view(&self, name: &str) -> Option<Gmr> {
        let local = self.shards[0].program();
        if self.program.static_tables.contains(name) {
            return self.shards[0].view(name);
        }
        if self.program.stored_relations.contains(name) {
            // Stored slices are disjoint by the scatter, so addition is a
            // disjoint union; the executor stores the full relation.
            if local.stored_relations.contains(name) {
                return self.sum_over_shards(name);
            }
            return self.executor.as_ref().and_then(|e| e.view(name));
        }
        match self.plan.class(name) {
            MapClass::Replicated => {
                let src = if local.maps.iter().any(|m| m.name == name) {
                    &self.shards[0]
                } else {
                    self.executor.as_ref()?
                };
                src.view(name)
            }
            MapClass::Global => self.executor.as_ref().and_then(|e| e.view(name)),
            MapClass::Partitioned(_) | MapClass::Summed => self.sum_over_shards(name),
        }
    }

    fn sum_over_shards(&self, name: &str) -> Option<Gmr> {
        let first = self.shards[0].view(name)?;
        let mut out = Gmr::new(first.schema().clone());
        for shard in &self.shards {
            for (t, mult) in shard.view(name)?.iter() {
                out.add_tuple(t.clone(), mult);
            }
        }
        Some(out)
    }

    /// A merged point-in-time snapshot of every view the full program
    /// declares: shard-count-invariant by construction (see module docs).
    pub fn merged_snapshot(&self) -> FastMap<String, Gmr> {
        let mut names: Vec<&str> = self.program.maps.iter().map(|m| m.name.as_str()).collect();
        names.extend(self.program.stored_relations.iter().map(String::as_str));
        names.extend(self.program.static_tables.iter().map(String::as_str));
        names.sort_unstable();
        names.dedup();
        names
            .into_iter()
            .filter_map(|n| self.merged_view(n).map(|g| (n.to_string(), g)))
            .collect()
    }

    /// Snapshot a query result as a GMR over its output columns, merged
    /// across shards. Mirrors [`Engine::result`] on the merged state.
    pub fn result(&self, query: &str) -> Result<Gmr, RuntimeError> {
        let qr = self
            .program
            .results
            .iter()
            .find(|r| r.name == query)
            .ok_or_else(|| RuntimeError::UnknownQuery(query.to_string()))?;
        match &qr.access {
            ResultAccess::Map(name) => self
                .merged_view(name)
                .ok_or_else(|| RuntimeError::UnknownView(name.clone())),
            ResultAccess::Computed { expr, .. } => {
                // Rebuild a database of exactly the views the expression
                // reads, from merged state, and evaluate over it.
                let mut db = crate::store::Database::new();
                for atom in expr.atoms() {
                    if db.contains(&atom.name) {
                        continue;
                    }
                    let g = self
                        .merged_view(&atom.name)
                        .ok_or_else(|| RuntimeError::UnknownView(atom.name.clone()))?;
                    db.declare(atom.name.clone(), g.schema().columns().iter().cloned());
                    if let Some(v) = db.view_mut(&atom.name) {
                        v.load_gmr(&g);
                    }
                }
                eval_with(expr, &db, &mut Bindings::new()).map_err(RuntimeError::from)
            }
        }
    }

    /// Total events processed (sum of per-shard counts; the executor's copy
    /// of the stream is not double-counted).
    pub fn events(&self) -> u64 {
        self.shards.iter().map(|e| e.stats().events).sum()
    }

    /// Approximate memory footprint across all engines, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .chain(self.executor.as_ref())
            .map(|e| e.memory_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_agca::Expr;
    use dbtoaster_compiler::prelude::*;
    use dbtoaster_compiler::program::{QuerySpec, RelationMeta};
    use std::collections::BTreeMap;

    fn catalog() -> Catalog {
        [
            RelationMeta::stream("R", ["A", "B"]),
            RelationMeta::stream("S", ["B", "C"]),
        ]
        .into_iter()
        .collect()
    }

    /// R ⋈ S on B grouped by B (fully shard-local) plus a scalar cross
    /// product of R with itself (forces the exchange executor).
    fn queries() -> Vec<QuerySpec> {
        vec![
            QuerySpec {
                name: "JOINB".into(),
                out_vars: vec!["b".into()],
                expr: Expr::agg_sum(
                    ["b"],
                    Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::rel("S", ["b", "c"])]),
                ),
            },
            QuerySpec {
                name: "CROSS".into(),
                out_vars: vec![],
                expr: Expr::agg_sum(
                    Vec::<String>::new(),
                    Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::rel("R", ["a2", "b2"])]),
                ),
            },
        ]
    }

    fn events() -> Vec<UpdateEvent> {
        // Deterministic little LCG over integer keys: inserts with periodic
        // deletes of previously inserted tuples, spread over both relations.
        let mut out = Vec::new();
        let mut x: i64 = 7;
        for i in 0..200 {
            x = (x * 1103515245 + 12345) % 1000;
            let a = Value::long(x.abs() % 17);
            let b = Value::long((x.abs() / 17) % 13);
            if i % 2 == 0 {
                out.push(UpdateEvent::insert("R", vec![a, b]));
            } else {
                out.push(UpdateEvent::insert("S", vec![b, a]));
            }
            if i % 7 == 3 && i >= 14 {
                // Re-delete an event from 14 steps ago (same generator state).
                let prior = &out[i - 14];
                out.push(UpdateEvent {
                    relation: prior.relation.clone(),
                    sign: dbtoaster_agca::UpdateSign::Delete,
                    tuple: prior.tuple.clone(),
                });
            }
        }
        out
    }

    fn canon(g: &Gmr) -> BTreeMap<String, f64> {
        g.iter()
            .filter(|(_, m)| *m != 0.0)
            .map(|(t, m)| (format!("{t:?}"), m))
            .collect()
    }

    fn canon_all(s: &FastMap<String, Gmr>) -> BTreeMap<String, BTreeMap<String, f64>> {
        s.iter()
            .map(|(n, g)| (n.clone(), canon(g)))
            .filter(|(_, m)| !m.is_empty())
            .collect()
    }

    #[test]
    fn merged_snapshot_is_shard_count_invariant() {
        let catalog = catalog();
        let program = compile(
            &queries(),
            &catalog,
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        let evs = events();

        // Reference: one plain engine over the whole stream.
        let mut reference = Engine::new(program.clone(), &catalog);
        for e in &evs {
            reference.process(e).unwrap();
        }
        let want = canon_all(&reference.snapshot());

        for n in [1usize, 2, 4, 8] {
            let mut sharded = ShardedEngine::new(program.clone(), &catalog, n);
            assert!(sharded.has_executor(), "CROSS forces the exchange path");
            let report = sharded.process_events(&evs);
            assert!(report.first_error.is_none(), "{report:?}");
            assert_eq!(report.events, evs.len() as u64);
            let got = canon_all(&sharded.merged_snapshot());
            assert_eq!(got, want, "merged snapshot must be {n}-shard invariant");
            if n > 1 {
                let ex = sharded.exchange_stats();
                assert!(ex.batches > 0 && ex.entries > 0 && ex.bytes > 0);
            }
        }
    }

    #[test]
    fn merged_result_matches_reference_per_query() {
        let catalog = catalog();
        let program = compile(
            &queries(),
            &catalog,
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        let evs = events();
        let mut reference = Engine::new(program.clone(), &catalog);
        for e in &evs {
            reference.process(e).unwrap();
        }
        let mut sharded = ShardedEngine::new(program.clone(), &catalog, 3);
        sharded.process_events(&evs);
        for q in ["JOINB", "CROSS"] {
            let want = canon(&reference.result(q).unwrap());
            let got = canon(&sharded.result(q).unwrap());
            assert_eq!(got, want, "{q}");
        }
        // Events are counted once despite the executor's full copy.
        assert_eq!(sharded.events(), evs.len() as u64);
    }

    #[test]
    fn scatter_routes_by_partition_column() {
        let catalog = catalog();
        let program = compile(
            &queries()[..1], // JOINB only: fully local, R partitions on B
            &catalog,
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        let sharded = ShardedEngine::new(program, &catalog, 4);
        assert!(!sharded.has_executor());
        // Same partition-key value ⇒ same shard, for both relations (R.B is
        // column 1, S.B is column 0 — co-partitioned on the join key).
        let b = Value::long(42);
        let r1 = UpdateEvent::insert("R", vec![Value::long(1), b.clone()]);
        let r2 = UpdateEvent::insert("R", vec![Value::long(2), b.clone()]);
        let s1 = UpdateEvent::insert("S", vec![b.clone(), Value::long(9)]);
        assert_eq!(sharded.shard_of(&r1), sharded.shard_of(&r2));
        assert_eq!(sharded.shard_of(&r1), sharded.shard_of(&s1));
    }
}
