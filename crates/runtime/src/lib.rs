//! # DBToaster runtime
//!
//! A single-core, main-memory runtime that executes the trigger programs produced by
//! `dbtoaster-compiler` (Section 7 of the paper):
//!
//! * [`store`] — the [`ViewMap`] keyed multiplicity map with secondary
//!   indexes per binding pattern, and the [`Database`] namespace of
//!   views, stored base relations and static tables;
//! * [`engine`] — the [`Engine`] that binds trigger variables, executes
//!   update statements in read-old / write / read-new order and exposes query results,
//!   refresh-rate statistics and memory estimates.
//!
//! ```
//! use dbtoaster_runtime::prelude::*;
//! use dbtoaster_compiler::prelude::*;
//! use dbtoaster_agca::{Expr, UpdateEvent};
//! use dbtoaster_gmr::Value;
//!
//! let catalog: Catalog = [
//!     RelationMeta::stream("O", ["ORDK", "XCH"]),
//!     RelationMeta::stream("LI", ["ORDK", "PRICE"]),
//! ].into_iter().collect();
//! let q = QuerySpec {
//!     name: "Q".into(),
//!     out_vars: vec![],
//!     expr: Expr::agg_sum(Vec::<String>::new(), Expr::product_of([
//!         Expr::rel("O", ["ORDK", "XCH"]),
//!         Expr::rel("LI", ["ORDK", "PRICE"]),
//!         Expr::var("XCH"),
//!         Expr::var("PRICE"),
//!     ])),
//! };
//! let program = compile(&[q], &catalog, &CompileOptions::default()).unwrap();
//! let mut engine = Engine::new(program, &catalog);
//! engine.process(&UpdateEvent::insert("O", vec![Value::long(1), Value::double(2.0)])).unwrap();
//! engine.process(&UpdateEvent::insert("LI", vec![Value::long(1), Value::double(10.0)])).unwrap();
//! assert_eq!(engine.result("Q").unwrap().scalar_value(), 20.0);
//! ```

pub mod engine;
pub mod shard;
pub mod store;

pub use engine::{
    parse_batch_strategy, BatchReport, ChangeSet, Engine, EngineStats, RunRecord, RuntimeError,
    TraceSample, ViewChange, FORCE_BATCH_STRATEGY_ENV, FORCE_INTERPRETER_ENV,
};
pub use shard::{shard_for, ExchangeStats, ShardedEngine};
pub use store::{CachedSource, Database, ViewMap};

pub use dbtoaster_telemetry::{
    HistogramSummary, MetricsSnapshot, SlowBatchTrace, Stage, Telemetry, TelemetryConfig,
};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::engine::{
        parse_batch_strategy, BatchReport, ChangeSet, Engine, EngineStats, RunRecord, RuntimeError,
        TraceSample, ViewChange, FORCE_BATCH_STRATEGY_ENV, FORCE_INTERPRETER_ENV,
    };
    pub use crate::shard::{shard_for, ExchangeStats, ShardedEngine};
    pub use crate::store::{CachedSource, Database, ViewMap};
    pub use dbtoaster_telemetry::{
        HistogramSummary, MetricsSnapshot, SlowBatchTrace, Stage, Telemetry, TelemetryConfig,
    };
}
