//! View storage: keyed multiplicity maps with secondary indexes.
//!
//! The runtime stores every materialized view (and, in the baseline modes, the base
//! relations) as a [`ViewMap`]: a hash map from key tuples to multiplicities, plus
//! lazily-built secondary indexes for the partial-key binding patterns that trigger
//! statements actually use. This mirrors Section 7.1 of the paper, where the generated
//! C++ uses Boost Multi-Index containers with one secondary index per binding pattern.
//!
//! ## Hot-path design
//!
//! * **Keys are [`Tuple`]s** — inline up to arity `INLINE_CAP` (3), cheap to clone (at most a few
//!   `Value` copies or one `Arc` bump), hashed with the fast deterministic
//!   [`FastMap`] hasher. A single-tuple view update is one hash probe with no key
//!   allocation.
//! * **Cursor reads** — [`ViewMap::for_each`] streams *borrowed* `(&[Value], f64)`
//!   entries to a visitor; nothing on the read path clones a key. The collecting
//!   [`ViewMap::lookup`] remains for tests and cold callers.
//! * **Index maintenance pays only when indexes exist** — [`ViewMap::add`] takes the
//!   fast path (a single map probe, zero clones) until the first partial-pattern
//!   lookup creates a secondary index; afterwards every write mirrors the new
//!   multiplicity into each index bucket (one probe per index; the key is cloned
//!   only when the entry is new). Buckets store `(key, multiplicity)`, so a
//!   partial-pattern scan is pure bucket iteration with no per-entry probe back
//!   into the primary map — the cost profile compiled trigger kernels rely on.
//! * **Cost model** — [`ViewMap::approx_bytes`] charges each entry its map-slot
//!   footprint; spilled (arity > 4) tuples add their shared value slab. `Value`
//!   itself is 24 bytes inline; string values are interned `Arc<str>`s whose bodies
//!   are shared, and dates are plain `yyyymmdd` longs, so the slab estimate does not
//!   double-count string storage.
//!
//! Secondary indexes live behind an [`RwLock`] so that read-only evaluation (through
//! the [`RelationSource`] trait) can build an index on first use; afterwards every
//! partial lookup is a hash probe, which is what gives compiled trigger statements
//! their constant-time behaviour.

use dbtoaster_agca::eval::{EvalError, RelationSource};
use dbtoaster_gmr::hash::fast_map_with_capacity;
use dbtoaster_gmr::{FastMap, Gmr, Schema, Tuple, Value};
use parking_lot::RwLock;
use std::sync::Arc;

/// A secondary index: projected key → (full key → multiplicity). Multiplicities
/// are mirrored into the buckets so a partial-pattern scan is pure iteration —
/// no per-entry probe back into the primary map. Maintenance is O(1) per write
/// per index (one bucket probe), paid only by views that both receive writes
/// and serve partial-pattern lookups.
type Index = FastMap<Tuple, FastMap<Tuple, f64>>;
/// Indexes are held behind `Arc`s so a scan can clone the handle and release
/// the registry lock *before* iterating. Compiled trigger kernels re-enter
/// scans from inside scan callbacks (nested sub-aggregates over the same
/// view); holding the read guard across the visit would self-deadlock against
/// a nested `ensure_index` write. Mutation goes through `Arc::make_mut`,
/// which never actually copies on the engine's single-threaded write path
/// (no scan handle is alive while `&mut self` methods run).
type IndexRegistry = FastMap<u64, Arc<Index>>;
/// A cached snapshot: the shared map and the view version it reflects.
type SnapshotCache = Option<(u64, Arc<FastMap<Tuple, f64>>)>;

/// A materialized view: tuples over a fixed-arity key mapped to `f64` multiplicities,
/// with secondary hash indexes per binding pattern.
///
/// [`ViewMap::to_gmr`] hands out an immutable *shared* snapshot of the map
/// ([`Gmr::from_shared`]) through a version-stamped cache: repeated snapshots
/// of an unmutated view are O(1) Arc clones, and the O(n) copy is paid at most
/// once per snapshot-after-mutation — at snapshot time, never on the write
/// path. Writes stay plain hash-map operations with zero synchronization
/// overhead (a version bump is one integer increment); this is what lets the
/// serving layer publish consistent snapshots per micro-batch without slowing
/// the single-threaded trigger hot path.
#[derive(Debug)]
pub struct ViewMap {
    schema: Schema,
    data: FastMap<Tuple, f64>,
    /// Bumped on every mutation; stamps the snapshot cache.
    version: u64,
    /// Last snapshot handed out, valid while its version matches.
    snapshot_cache: RwLock<SnapshotCache>,
    /// Secondary indexes: bitmask of bound key positions → shared index.
    indexes: RwLock<IndexRegistry>,
}

impl Clone for ViewMap {
    fn clone(&self) -> Self {
        ViewMap {
            schema: self.schema.clone(),
            data: self.data.clone(),
            version: self.version,
            snapshot_cache: RwLock::new(self.snapshot_cache.read().clone()),
            indexes: RwLock::new(self.indexes.read().clone()),
        }
    }
}

impl ViewMap {
    /// An empty view with the given key schema.
    pub fn new(schema: Schema) -> Self {
        ViewMap {
            schema,
            data: FastMap::default(),
            version: 0,
            snapshot_cache: RwLock::new(None),
            indexes: RwLock::new(IndexRegistry::default()),
        }
    }

    /// The key schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Multiplicity of a key (0.0 when absent).
    pub fn get(&self, key: &[Value]) -> f64 {
        self.data.get(key).copied().unwrap_or(0.0)
    }

    /// Iterate `(key, multiplicity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, f64)> {
        self.data.iter().map(|(k, &m)| (k, m))
    }

    /// Add `mult` to the entry for `key`, removing it if the result is zero.
    ///
    /// With no secondary indexes this is a single map probe and never clones
    /// the key; once indexes exist, the key is cloned only when the entry set
    /// changes (insert of a new key or removal of a cancelled one).
    pub fn add(&mut self, key: impl Into<Tuple>, mult: f64) {
        if mult == 0.0 {
            return;
        }
        self.version = self.version.wrapping_add(1);
        self.add_unversioned(key.into(), mult);
    }

    /// Apply a pre-buffered row batch: every surviving (non-zero) row is added
    /// in iteration order, with **one** version bump — i.e. one snapshot-cache
    /// invalidation — for the whole batch instead of one per write, and
    /// `on_write` invoked per applied row (the engine's change-log hook).
    pub fn add_rows<'a>(
        &mut self,
        rows: impl IntoIterator<Item = (&'a Tuple, f64)>,
        on_write: &mut dyn FnMut(&Tuple),
    ) {
        let mut bumped = false;
        for (key, mult) in rows {
            if mult == 0.0 {
                continue;
            }
            if !bumped {
                self.version = self.version.wrapping_add(1);
                bumped = true;
            }
            on_write(key);
            self.add_unversioned(key.clone(), mult);
        }
    }

    /// The shared write path behind [`ViewMap::add`] / [`ViewMap::add_rows`]:
    /// everything except the version bump. `mult` must be non-zero.
    fn add_unversioned(&mut self, key: Tuple, mult: f64) {
        debug_assert_eq!(key.len(), self.schema.arity(), "key arity mismatch");
        use std::collections::hash_map::Entry;

        let indexes = self.indexes.get_mut();
        if indexes.is_empty() {
            // Fast path: no index maintenance, no key clone.
            match self.data.entry(key) {
                Entry::Occupied(mut o) => {
                    let v = o.get_mut();
                    *v += mult;
                    if *v == 0.0 {
                        o.remove();
                    }
                }
                Entry::Vacant(v) => {
                    v.insert(mult);
                }
            }
            return;
        }

        let (removed, new_mult) = match self.data.entry(key.clone()) {
            Entry::Occupied(mut o) => {
                let v = o.get_mut();
                *v += mult;
                if *v == 0.0 {
                    o.remove();
                    (true, 0.0)
                } else {
                    (false, *v)
                }
            }
            Entry::Vacant(v) => {
                v.insert(mult);
                (false, mult)
            }
        };
        for (mask, index) in indexes.iter_mut() {
            let index = Arc::make_mut(index);
            let proj = project_mask(&key, *mask);
            if removed {
                if let Some(bucket) = index.get_mut(&proj) {
                    bucket.remove(key.as_slice());
                    if bucket.is_empty() {
                        index.remove(&proj);
                    }
                }
            } else {
                // Mirror the new multiplicity into the bucket (overwriting in
                // place when the entry already exists, so multiplicity-only
                // updates cost one probe and no key clone).
                let bucket = index.entry(proj).or_default();
                match bucket.get_mut(key.as_slice()) {
                    Some(slot) => *slot = new_mult,
                    None => {
                        bucket.insert(key.clone(), new_mult);
                    }
                }
            }
        }
    }

    /// Remove all entries (used by `:=` statements).
    pub fn clear(&mut self) {
        self.version = self.version.wrapping_add(1);
        self.data.clear();
        self.indexes.get_mut().clear();
    }

    /// Stream the entries matching a partial binding pattern into `visit`,
    /// borrowing keys straight out of the store. Builds a secondary index for
    /// the pattern's mask on first use; subsequent lookups are hash probes.
    pub fn for_each(&self, pattern: &[Option<Value>], visit: &mut dyn FnMut(&[Value], f64)) {
        debug_assert_eq!(pattern.len(), self.schema.arity());
        let mask = pattern_mask(pattern);
        if mask == 0 {
            for (k, &m) in self.data.iter() {
                visit(k, m);
            }
            return;
        }
        let arity = self.schema.arity();
        if arity <= 63 && mask == (1u64 << arity) - 1 {
            // Fully bound: a single primary probe.
            let key: Tuple = pattern.iter().map(|p| p.clone().unwrap()).collect();
            if let Some(&m) = self.data.get(key.as_slice()) {
                visit(&key, m);
            }
            return;
        }
        self.ensure_index(mask);
        let probe: Tuple = pattern.iter().flatten().cloned().collect();
        // Clone the index handle and drop the registry guard before visiting:
        // visitors may re-enter `for_each` (compiled kernels nest scans), and
        // a nested `ensure_index` must be able to take the write lock.
        let index = self.indexes.read().get(&mask).cloned();
        if let Some(bucket) = index.as_ref().and_then(|idx| idx.get(&probe)) {
            for (k, &m) in bucket.iter() {
                visit(k, m);
            }
        }
    }

    /// Entries matching a partial binding pattern, collected into a vector.
    /// Prefer [`ViewMap::for_each`] on hot paths.
    pub fn lookup(&self, pattern: &[Option<Value>]) -> Vec<(Tuple, f64)> {
        let mut out = Vec::new();
        self.for_each(pattern, &mut |k, m| out.push((Tuple::from(k), m)));
        out
    }

    /// Build (if needed) the secondary index for a binding-pattern mask.
    pub fn ensure_index(&self, mask: u64) {
        if mask == 0 || self.indexes.read().contains_key(&mask) {
            return;
        }
        let mut index: Index = fast_map_with_capacity(self.data.len());
        for (k, &m) in self.data.iter() {
            index
                .entry(project_mask(k, mask))
                .or_default()
                .insert(k.clone(), m);
        }
        self.indexes.write().insert(mask, Arc::new(index));
    }

    /// Snapshot the view contents as an immutable shared GMR. O(1) while the
    /// view is unmutated since the last snapshot (the cached Arc is reused);
    /// otherwise one O(n) copy, paid here rather than on the write path.
    pub fn to_gmr(&self) -> Gmr {
        {
            let cache = self.snapshot_cache.read();
            if let Some((version, arc)) = cache.as_ref() {
                if *version == self.version {
                    return Gmr::from_shared(self.schema.clone(), arc.clone());
                }
            }
        }
        let arc = Arc::new(self.data.clone());
        *self.snapshot_cache.write() = Some((self.version, arc.clone()));
        Gmr::from_shared(self.schema.clone(), arc)
    }

    /// Replace the contents of the view from a GMR (columns matched by name when the
    /// schemas share the same column set, positionally otherwise).
    pub fn load_gmr(&mut self, gmr: &Gmr) {
        self.clear();
        if gmr.schema() == &self.schema {
            // Identical schemas: copy the map wholesale; a shared source also
            // primes the snapshot cache (the contents are identical).
            match gmr.shared_data() {
                Some(arc) => {
                    self.data = (**arc).clone();
                    *self.snapshot_cache.get_mut() = Some((self.version, arc.clone()));
                }
                None => {
                    self.data = gmr.iter().map(|(t, m)| (t.clone(), m)).collect();
                }
            }
            return;
        }
        let positions: Option<Vec<usize>> = if gmr.schema().same_columns(&self.schema) {
            self.schema
                .columns()
                .iter()
                .map(|c| gmr.schema().index_of(c))
                .collect()
        } else {
            None
        };
        for (t, m) in gmr.iter() {
            let key: Tuple = match &positions {
                Some(pos) => pos.iter().map(|&i| t[i].clone()).collect(),
                None => t.clone(),
            };
            self.add(key, m);
        }
    }

    /// Approximate heap footprint in bytes (entries plus secondary indexes).
    /// See the module docs for the cost model.
    pub fn approx_bytes(&self) -> usize {
        let per_value = std::mem::size_of::<Value>();
        let entry = |t: &Tuple| {
            std::mem::size_of::<Tuple>()
                + 16
                + if t.is_inline() {
                    0
                } else {
                    t.len() * per_value + 16
                }
        };
        let base: usize = self.data.keys().map(entry).sum();
        let idx: usize = self
            .indexes
            .read()
            .values()
            .map(|i| {
                i.iter()
                    .map(|(k, v)| {
                        entry(k)
                            + v.keys().map(entry).sum::<usize>()
                            + v.len() * std::mem::size_of::<f64>()
                            + 8
                    })
                    .sum::<usize>()
            })
            .sum();
        base + idx
    }
}

fn pattern_mask(pattern: &[Option<Value>]) -> u64 {
    pattern.iter().enumerate().fold(0u64, |m, (i, p)| {
        if p.is_some() && i < 63 {
            m | (1 << i)
        } else {
            m
        }
    })
}

fn project_mask(key: &[Value], mask: u64) -> Tuple {
    key.iter()
        .enumerate()
        .filter(|(i, _)| *i < 63 && mask & (1 << i) != 0)
        .map(|(_, v)| v.clone())
        .collect()
}

/// The runtime database: a namespace of [`ViewMap`]s holding materialized views, stored
/// base relations and static tables.
#[derive(Clone, Debug, Default)]
pub struct Database {
    maps: FastMap<String, ViewMap>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Create (or replace) a view with the given key columns.
    pub fn declare(&mut self, name: impl Into<String>, columns: impl IntoIterator<Item = String>) {
        self.maps
            .insert(name.into(), ViewMap::new(Schema::new(columns)));
    }

    /// Does a view with this name exist?
    pub fn contains(&self, name: &str) -> bool {
        self.maps.contains_key(name)
    }

    /// Immutable access to a view.
    pub fn view(&self, name: &str) -> Option<&ViewMap> {
        self.maps.get(name)
    }

    /// Mutable access to a view.
    pub fn view_mut(&mut self, name: &str) -> Option<&mut ViewMap> {
        self.maps.get_mut(name)
    }

    /// Names of all views, sorted, borrowed from the store (no `String` clones).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        let mut v: Vec<&str> = self.maps.keys().map(String::as_str).collect();
        v.sort_unstable();
        v.into_iter()
    }

    /// Total approximate memory footprint of all views, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.maps.values().map(|m| m.approx_bytes()).sum()
    }

    /// A consistent point-in-time snapshot of every view: name → GMR sharing the
    /// view's copy-on-write map. O(number of views), independent of their sizes.
    pub fn snapshot(&self) -> FastMap<String, Gmr> {
        self.maps
            .iter()
            .map(|(n, v)| (n.clone(), v.to_gmr()))
            .collect()
    }
}

impl RelationSource for Database {
    fn relation_arity(&self, name: &str) -> Option<usize> {
        self.maps.get(name).map(|m| m.schema().arity())
    }

    fn for_each_matching(
        &self,
        name: &str,
        pattern: &[Option<Value>],
        visit: &mut dyn FnMut(&[Value], f64),
    ) -> Result<(), EvalError> {
        let m = self
            .maps
            .get(name)
            .ok_or_else(|| EvalError::UnknownRelation(name.to_string()))?;
        m.for_each(pattern, visit);
        Ok(())
    }
}

/// A read-only [`Database`] view that memoizes name→view resolution.
///
/// Compiled kernels address every probe and scan by relation name; driven
/// over a multi-entry delta batch, the *same* op asks for the *same* name
/// once per entry, and the per-call string hash becomes the dominant
/// removable cost of small kernels. Ops own their name strings, so the cache
/// is keyed by the `&str`'s address — a pointer identity hit needs no
/// hashing and no character comparison. Sound only while the database is not
/// mutated (the batch executor buffers all rows before applying, so a whole
/// statement-over-entries pass is read-only); the wrapper borrows the
/// database immutably, letting the compiler enforce exactly that.
pub struct CachedSource<'a> {
    db: &'a Database,
    /// `(name address, name length, resolved view)` — a fixed handful of
    /// inline slots scanned linearly (zero heap allocation; a statement
    /// referencing more distinct relations simply falls back to uncached
    /// lookups for the overflow).
    cache: std::cell::Cell<usize>,
    slots: [std::cell::Cell<(*const u8, usize, Option<&'a ViewMap>)>; 8],
}

impl<'a> CachedSource<'a> {
    /// Wrap a database for one read-only batch pass.
    pub fn new(db: &'a Database) -> Self {
        CachedSource {
            db,
            cache: std::cell::Cell::new(0),
            slots: std::array::from_fn(|_| std::cell::Cell::new((std::ptr::null(), 0, None))),
        }
    }

    fn resolve(&self, name: &str) -> Option<&'a ViewMap> {
        let key = (name.as_ptr(), name.len());
        let len = self.cache.get();
        for slot in &self.slots[..len] {
            let (p, l, v) = slot.get();
            if p == key.0 && l == key.1 {
                return v;
            }
        }
        let view = self.db.view(name)?;
        if len < self.slots.len() {
            self.slots[len].set((key.0, key.1, Some(view)));
            self.cache.set(len + 1);
        }
        Some(view)
    }
}

impl RelationSource for CachedSource<'_> {
    fn relation_arity(&self, name: &str) -> Option<usize> {
        self.resolve(name).map(|m| m.schema().arity())
    }

    fn for_each_matching(
        &self,
        name: &str,
        pattern: &[Option<Value>],
        visit: &mut dyn FnMut(&[Value], f64),
    ) -> Result<(), EvalError> {
        let m = self
            .resolve(name)
            .ok_or_else(|| EvalError::UnknownRelation(name.to_string()))?;
        m.for_each(pattern, visit);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::long(v)).collect()
    }

    #[test]
    fn add_and_cancel() {
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        v.add(key(&[1, 2]), 2.5);
        v.add(key(&[1, 2]), -2.5);
        assert!(v.is_empty());
        v.add(key(&[1, 2]), 1.0);
        assert_eq!(v.get(&key(&[1, 2])), 1.0);
        assert_eq!(v.get(&key(&[9, 9])), 0.0);
    }

    #[test]
    fn lookup_with_full_and_partial_patterns() {
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        v.add(key(&[1, 10]), 1.0);
        v.add(key(&[1, 20]), 2.0);
        v.add(key(&[2, 30]), 3.0);
        // Full key lookup.
        let full = v.lookup(&[Some(Value::long(1)), Some(Value::long(20))]);
        assert_eq!(full, vec![(key(&[1, 20]), 2.0)]);
        // Partial: first column bound.
        let part = v.lookup(&[Some(Value::long(1)), None]);
        assert_eq!(part.len(), 2);
        // Unbound: full scan.
        assert_eq!(v.lookup(&[None, None]).len(), 3);
        // Missing key.
        assert!(v.lookup(&[Some(Value::long(7)), None]).is_empty());
    }

    #[test]
    fn secondary_index_stays_consistent_under_updates() {
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        v.add(key(&[1, 10]), 1.0);
        // Build the index, then mutate.
        assert_eq!(v.lookup(&[Some(Value::long(1)), None]).len(), 1);
        v.add(key(&[1, 20]), 1.0);
        v.add(key(&[1, 10]), -1.0); // removes the first entry
        let res = v.lookup(&[Some(Value::long(1)), None]);
        assert_eq!(res, vec![(key(&[1, 20]), 1.0)]);
    }

    #[test]
    fn multiplicity_change_without_entry_change_keeps_indexes() {
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        v.add(key(&[1, 10]), 1.0);
        v.lookup(&[Some(Value::long(1)), None]); // build the index
        v.add(key(&[1, 10]), 2.5); // multiplicity update only
        assert_eq!(
            v.lookup(&[Some(Value::long(1)), None]),
            vec![(key(&[1, 10]), 3.5)]
        );
    }

    #[test]
    fn for_each_streams_borrowed_entries() {
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        v.add(key(&[1, 10]), 1.0);
        v.add(key(&[1, 20]), 2.0);
        let mut total = 0.0;
        let mut seen = 0;
        v.for_each(&[Some(Value::long(1)), None], &mut |k, m| {
            assert_eq!(k.len(), 2);
            total += m;
            seen += 1;
        });
        assert_eq!(seen, 2);
        assert_eq!(total, 3.0);
    }

    #[test]
    fn gmr_round_trip() {
        let mut v = ViewMap::new(Schema::new(["a"]));
        v.add(key(&[1]), 5.0);
        v.add(key(&[2]), -1.0);
        let g = v.to_gmr();
        assert_eq!(g.get(&key(&[1])), 5.0);
        let mut v2 = ViewMap::new(Schema::new(["a"]));
        v2.load_gmr(&g);
        assert_eq!(v2.get(&key(&[2])), -1.0);
        assert_eq!(v2.len(), 2);
    }

    #[test]
    fn load_gmr_matches_columns_by_name() {
        let mut g = Gmr::new(Schema::new(["b", "a"]));
        g.add_tuple(key(&[10, 1]), 3.0);
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        v.load_gmr(&g);
        assert_eq!(v.get(&key(&[1, 10])), 3.0);
    }

    #[test]
    fn database_implements_relation_source() {
        let mut db = Database::new();
        db.declare("R", vec!["a".to_string(), "b".to_string()]);
        db.view_mut("R").unwrap().add(key(&[1, 2]), 1.0);
        assert_eq!(db.relation_arity("R"), Some(2));
        let mut rows = 0;
        db.for_each_matching("R", &[Some(Value::long(1)), None], &mut |_, _| rows += 1)
            .unwrap();
        assert_eq!(rows, 1);
        assert!(db.for_each_matching("Nope", &[], &mut |_, _| {}).is_err());
        assert!(db.approx_bytes() > 0);
        assert_eq!(db.names().collect::<Vec<_>>(), vec!["R"]);
    }

    #[test]
    fn to_gmr_snapshot_is_isolated_from_later_writes() {
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        v.add(key(&[1, 10]), 1.0);
        let snap = v.to_gmr();
        v.add(key(&[1, 10]), 2.0);
        v.add(key(&[2, 20]), 4.0);
        assert_eq!(snap.get(&key(&[1, 10])), 1.0);
        assert_eq!(snap.len(), 1);
        assert_eq!(v.get(&key(&[1, 10])), 3.0);
        // A snapshot also survives a clear (`:=` statements).
        let snap2 = v.to_gmr();
        v.clear();
        assert_eq!(snap2.len(), 2);
        assert!(v.is_empty());
    }

    #[test]
    fn clear_resets_indexes() {
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        v.add(key(&[1, 10]), 1.0);
        v.lookup(&[Some(Value::long(1)), None]);
        v.clear();
        assert!(v.is_empty());
        assert!(v.lookup(&[Some(Value::long(1)), None]).is_empty());
    }

    #[test]
    fn clone_preserves_contents_and_indexes() {
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        v.add(key(&[1, 10]), 1.0);
        v.lookup(&[Some(Value::long(1)), None]);
        let c = v.clone();
        assert_eq!(c.get(&key(&[1, 10])), 1.0);
        assert_eq!(c.lookup(&[Some(Value::long(1)), None]).len(), 1);
    }
}
