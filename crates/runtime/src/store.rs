//! View storage: keyed multiplicity maps with secondary indexes.
//!
//! The runtime stores every materialized view (and, in the baseline modes, the base
//! relations) as a [`ViewMap`]: a hash map from key tuples to multiplicities, plus
//! lazily-built secondary indexes for the partial-key binding patterns that trigger
//! statements actually use. This mirrors Section 7.1 of the paper, where the generated
//! C++ uses Boost Multi-Index containers with one secondary index per binding pattern.
//!
//! Secondary indexes live behind an [`RwLock`] so that read-only evaluation (through the
//! [`RelationSource`] trait) can build an index on first use; afterwards every partial
//! lookup is a hash probe, which is what gives compiled trigger statements their
//! constant-time behaviour.

use dbtoaster_agca::eval::{EvalError, RelationSource};
use dbtoaster_gmr::{Gmr, Schema, Value};
use parking_lot::RwLock;
use std::collections::HashMap;

type Index = HashMap<Vec<Value>, Vec<Vec<Value>>>;

/// A materialized view: tuples over a fixed-arity key mapped to `f64` multiplicities,
/// with secondary hash indexes per binding pattern.
#[derive(Debug)]
pub struct ViewMap {
    schema: Schema,
    data: HashMap<Vec<Value>, f64>,
    /// Secondary indexes: bitmask of bound key positions → (projected key → full keys).
    indexes: RwLock<HashMap<u64, Index>>,
}

impl Clone for ViewMap {
    fn clone(&self) -> Self {
        ViewMap {
            schema: self.schema.clone(),
            data: self.data.clone(),
            indexes: RwLock::new(self.indexes.read().clone()),
        }
    }
}

impl ViewMap {
    /// An empty view with the given key schema.
    pub fn new(schema: Schema) -> Self {
        ViewMap {
            schema,
            data: HashMap::new(),
            indexes: RwLock::new(HashMap::new()),
        }
    }

    /// The key schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Multiplicity of a key (0.0 when absent).
    pub fn get(&self, key: &[Value]) -> f64 {
        self.data.get(key).copied().unwrap_or(0.0)
    }

    /// Iterate `(key, multiplicity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, f64)> {
        self.data.iter().map(|(k, &m)| (k, m))
    }

    /// Add `mult` to the entry for `key`, removing it if the result is zero.
    pub fn add(&mut self, key: Vec<Value>, mult: f64) {
        if mult == 0.0 {
            return;
        }
        debug_assert_eq!(key.len(), self.schema.arity(), "key arity mismatch");
        let existed = self.data.contains_key(&key);
        let entry = self.data.entry(key.clone()).or_insert(0.0);
        *entry += mult;
        let removed = *entry == 0.0;
        if removed {
            self.data.remove(&key);
        }
        let mut indexes = self.indexes.write();
        for (mask, index) in indexes.iter_mut() {
            let proj = project_mask(&key, *mask);
            if removed {
                if let Some(bucket) = index.get_mut(&proj) {
                    bucket.retain(|k| k != &key);
                    if bucket.is_empty() {
                        index.remove(&proj);
                    }
                }
            } else if !existed {
                index.entry(proj).or_default().push(key.clone());
            }
        }
    }

    /// Remove all entries (used by `:=` statements).
    pub fn clear(&mut self) {
        self.data.clear();
        self.indexes.write().clear();
    }

    /// Entries matching a partial binding pattern. Builds a secondary index for the
    /// pattern's mask on first use; subsequent lookups are hash probes.
    pub fn lookup(&self, pattern: &[Option<Value>]) -> Vec<(Vec<Value>, f64)> {
        debug_assert_eq!(pattern.len(), self.schema.arity());
        let mask = pattern_mask(pattern);
        if mask == 0 {
            return self.data.iter().map(|(k, &m)| (k.clone(), m)).collect();
        }
        let arity = self.schema.arity();
        if arity <= 63 && mask == (1u64 << arity) - 1 {
            let key: Vec<Value> = pattern.iter().map(|p| p.clone().unwrap()).collect();
            let m = self.get(&key);
            return if m != 0.0 { vec![(key, m)] } else { vec![] };
        }
        self.ensure_index(mask);
        let probe: Vec<Value> = pattern.iter().flatten().cloned().collect();
        let indexes = self.indexes.read();
        match indexes.get(&mask).and_then(|idx| idx.get(&probe)) {
            Some(keys) => keys
                .iter()
                .filter_map(|k| self.data.get(k).map(|&m| (k.clone(), m)))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Build (if needed) the secondary index for a binding-pattern mask.
    pub fn ensure_index(&self, mask: u64) {
        if mask == 0 || self.indexes.read().contains_key(&mask) {
            return;
        }
        let mut index: Index = HashMap::new();
        for k in self.data.keys() {
            index.entry(project_mask(k, mask)).or_default().push(k.clone());
        }
        self.indexes.write().insert(mask, index);
    }

    /// Snapshot the view contents as a GMR over its key schema.
    pub fn to_gmr(&self) -> Gmr {
        let mut g = Gmr::with_capacity(self.schema.clone(), self.len());
        for (k, m) in self.iter() {
            g.add_tuple(k.clone(), m);
        }
        g
    }

    /// Replace the contents of the view from a GMR (columns matched by name when the
    /// schemas share the same column set, positionally otherwise).
    pub fn load_gmr(&mut self, gmr: &Gmr) {
        self.clear();
        let positions: Option<Vec<usize>> = if gmr.schema().same_columns(&self.schema) {
            self.schema
                .columns()
                .iter()
                .map(|c| gmr.schema().index_of(c))
                .collect()
        } else {
            None
        };
        for (t, m) in gmr.iter() {
            let key = match &positions {
                Some(pos) => pos.iter().map(|&i| t[i].clone()).collect(),
                None => t.clone(),
            };
            self.add(key, m);
        }
    }

    /// Approximate heap footprint in bytes (entries plus secondary indexes).
    pub fn approx_bytes(&self) -> usize {
        let per_value = std::mem::size_of::<Value>();
        let entry = |arity: usize| 24 + arity * per_value + 8;
        let base: usize = self.data.keys().map(|k| entry(k.len())).sum();
        let idx: usize = self
            .indexes
            .read()
            .values()
            .map(|i| i.iter().map(|(k, v)| entry(k.len()) + v.len() * 8).sum::<usize>())
            .sum();
        base + idx
    }
}

fn pattern_mask(pattern: &[Option<Value>]) -> u64 {
    pattern
        .iter()
        .enumerate()
        .fold(0u64, |m, (i, p)| if p.is_some() && i < 63 { m | (1 << i) } else { m })
}

fn project_mask(key: &[Value], mask: u64) -> Vec<Value> {
    key.iter()
        .enumerate()
        .filter(|(i, _)| *i < 63 && mask & (1 << i) != 0)
        .map(|(_, v)| v.clone())
        .collect()
}

/// The runtime database: a namespace of [`ViewMap`]s holding materialized views, stored
/// base relations and static tables.
#[derive(Clone, Debug, Default)]
pub struct Database {
    maps: HashMap<String, ViewMap>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Create (or replace) a view with the given key columns.
    pub fn declare(&mut self, name: impl Into<String>, columns: impl IntoIterator<Item = String>) {
        self.maps
            .insert(name.into(), ViewMap::new(Schema::new(columns)));
    }

    /// Does a view with this name exist?
    pub fn contains(&self, name: &str) -> bool {
        self.maps.contains_key(name)
    }

    /// Immutable access to a view.
    pub fn view(&self, name: &str) -> Option<&ViewMap> {
        self.maps.get(name)
    }

    /// Mutable access to a view.
    pub fn view_mut(&mut self, name: &str) -> Option<&mut ViewMap> {
        self.maps.get_mut(name)
    }

    /// Names of all views (sorted).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.maps.keys().cloned().collect();
        v.sort();
        v
    }

    /// Total approximate memory footprint of all views, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.maps.values().map(|m| m.approx_bytes()).sum()
    }
}

impl RelationSource for Database {
    fn relation_arity(&self, name: &str) -> Option<usize> {
        self.maps.get(name).map(|m| m.schema().arity())
    }

    fn iter_matching(
        &self,
        name: &str,
        pattern: &[Option<Value>],
    ) -> Result<Vec<(Vec<Value>, f64)>, EvalError> {
        let m = self
            .maps
            .get(name)
            .ok_or_else(|| EvalError::UnknownRelation(name.to_string()))?;
        Ok(m.lookup(pattern))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::long(v)).collect()
    }

    #[test]
    fn add_and_cancel() {
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        v.add(key(&[1, 2]), 2.5);
        v.add(key(&[1, 2]), -2.5);
        assert!(v.is_empty());
        v.add(key(&[1, 2]), 1.0);
        assert_eq!(v.get(&key(&[1, 2])), 1.0);
        assert_eq!(v.get(&key(&[9, 9])), 0.0);
    }

    #[test]
    fn lookup_with_full_and_partial_patterns() {
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        v.add(key(&[1, 10]), 1.0);
        v.add(key(&[1, 20]), 2.0);
        v.add(key(&[2, 30]), 3.0);
        // Full key lookup.
        let full = v.lookup(&[Some(Value::long(1)), Some(Value::long(20))]);
        assert_eq!(full, vec![(key(&[1, 20]), 2.0)]);
        // Partial: first column bound.
        let part = v.lookup(&[Some(Value::long(1)), None]);
        assert_eq!(part.len(), 2);
        // Unbound: full scan.
        assert_eq!(v.lookup(&[None, None]).len(), 3);
        // Missing key.
        assert!(v.lookup(&[Some(Value::long(7)), None]).is_empty());
    }

    #[test]
    fn secondary_index_stays_consistent_under_updates() {
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        v.add(key(&[1, 10]), 1.0);
        // Build the index, then mutate.
        assert_eq!(v.lookup(&[Some(Value::long(1)), None]).len(), 1);
        v.add(key(&[1, 20]), 1.0);
        v.add(key(&[1, 10]), -1.0); // removes the first entry
        let res = v.lookup(&[Some(Value::long(1)), None]);
        assert_eq!(res, vec![(key(&[1, 20]), 1.0)]);
    }

    #[test]
    fn gmr_round_trip() {
        let mut v = ViewMap::new(Schema::new(["a"]));
        v.add(key(&[1]), 5.0);
        v.add(key(&[2]), -1.0);
        let g = v.to_gmr();
        assert_eq!(g.get(&key(&[1])), 5.0);
        let mut v2 = ViewMap::new(Schema::new(["a"]));
        v2.load_gmr(&g);
        assert_eq!(v2.get(&key(&[2])), -1.0);
        assert_eq!(v2.len(), 2);
    }

    #[test]
    fn load_gmr_matches_columns_by_name() {
        let mut g = Gmr::new(Schema::new(["b", "a"]));
        g.add_tuple(key(&[10, 1]), 3.0);
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        v.load_gmr(&g);
        assert_eq!(v.get(&key(&[1, 10])), 3.0);
    }

    #[test]
    fn database_implements_relation_source() {
        let mut db = Database::new();
        db.declare("R", vec!["a".to_string(), "b".to_string()]);
        db.view_mut("R").unwrap().add(key(&[1, 2]), 1.0);
        assert_eq!(db.relation_arity("R"), Some(2));
        let rows = db.iter_matching("R", &[Some(Value::long(1)), None]).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(db.iter_matching("Nope", &[]).is_err());
        assert!(db.approx_bytes() > 0);
        assert_eq!(db.names(), vec!["R".to_string()]);
    }

    #[test]
    fn clear_resets_indexes() {
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        v.add(key(&[1, 10]), 1.0);
        v.lookup(&[Some(Value::long(1)), None]);
        v.clear();
        assert!(v.is_empty());
        assert!(v.lookup(&[Some(Value::long(1)), None]).is_empty());
    }

    #[test]
    fn clone_preserves_contents_and_indexes() {
        let mut v = ViewMap::new(Schema::new(["a", "b"]));
        v.add(key(&[1, 10]), 1.0);
        v.lookup(&[Some(Value::long(1)), None]);
        let c = v.clone();
        assert_eq!(c.get(&key(&[1, 10])), 1.0);
        assert_eq!(c.lookup(&[Some(Value::long(1)), None]).len(), 1);
    }
}
